//! Partial-skyline exchange: length-prefixed frames and a metered
//! in-process channel between shard workers and the coordinator.
//!
//! The distributed SFS pipeline (Ciaccia & Martinenghi's *Optimization
//! Strategies for Parallel Computation of Skylines*) moves only two
//! kinds of payload across the wire: each shard's **local skyline**
//! (narrow entries — oriented keys plus a global row id) flowing up to
//! the coordinator, and a small set of **representatives** broadcast
//! down to every shard for pre-pruning. Both travel as self-describing
//! frames:
//!
//! ```text
//! magic  u32 | version u8 | kind u8 | shard u16 |
//! dims   u32 | payload_len u32 | checksum u64 | payload…
//! ```
//!
//! All integers are little-endian; `payload` is `payload_len` bytes of
//! back-to-back narrow entries (`8·(dims+1)` bytes each, the
//! `NarrowLayout` encoding from `skyline-exec`). `checksum` is FNV-1a
//! over the payload, so a flipped byte surfaces as a typed
//! [`FrameError`] instead of a corrupt skyline. Decoding never panics:
//! truncated, misaligned, or corrupt input yields an error value.
//!
//! The [`Exchange`] is the in-process stand-in for the network: one
//! inbox per shard, every frame metered (`bytes_exchanged`,
//! `exchange_frames`) so benchmarks can gate on bytes moved exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use skyline_exec::NarrowLayout;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Frame magic: `"SKXF"` as a little-endian `u32`.
pub const FRAME_MAGIC: u32 = 0x4658_4b53;

/// Current frame-format version.
pub const FRAME_VERSION: u8 = 1;

/// Fixed frame-header size in bytes (before the payload).
pub const FRAME_HEADER_BYTES: usize = 24;

/// Maximum narrow entries per frame. Local skylines larger than this
/// are split across frames, so `exchange_frames` scales with volume.
pub const FRAME_ROWS: usize = 512;

/// Sanity cap on the dimension count a frame may declare — matches the
/// widest relation the engine builds, so a corrupt dims field can't
/// drive a huge allocation.
pub const MAX_FRAME_DIMS: u32 = 64;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A slice of one shard's local skyline, flowing to the coordinator.
    Skyline,
    /// Representative records broadcast from the coordinator to shards.
    Representatives,
}

impl FrameKind {
    fn as_u8(self) -> u8 {
        match self {
            FrameKind::Skyline => 0,
            FrameKind::Representatives => 1,
        }
    }

    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Skyline),
            1 => Some(FrameKind::Representatives),
            _ => None,
        }
    }
}

/// Typed decode failures. Every malformed input maps to one of these —
/// the decoder has no panicking paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header or declared payload requires.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually available.
        actual: usize,
    },
    /// The magic word did not match [`FRAME_MAGIC`].
    Magic {
        /// The word found where the magic should be.
        found: u32,
    },
    /// Unknown format version.
    Version {
        /// The version byte found.
        found: u8,
    },
    /// Unknown frame kind byte.
    Kind {
        /// The kind byte found.
        found: u8,
    },
    /// Dimension count of zero or above [`MAX_FRAME_DIMS`].
    Dims {
        /// The dims field found.
        found: u32,
    },
    /// Payload length not a multiple of the narrow entry size.
    Stride {
        /// Declared payload length in bytes.
        payload: usize,
        /// Entry size implied by the dims field.
        entry: usize,
    },
    /// Payload bytes do not hash to the header checksum.
    Checksum {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the payload as received.
        actual: u64,
    },
    /// A shard index at or above the exchange's shard count.
    Shard {
        /// The offending shard index.
        shard: usize,
        /// Shards the exchange was built with.
        shards: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { expected, actual } => {
                write!(f, "truncated frame: need {expected} bytes, have {actual}")
            }
            FrameError::Magic { found } => write!(f, "bad frame magic {found:#010x}"),
            FrameError::Version { found } => write!(f, "unsupported frame version {found}"),
            FrameError::Kind { found } => write!(f, "unknown frame kind {found}"),
            FrameError::Dims { found } => write!(f, "implausible frame dims {found}"),
            FrameError::Stride { payload, entry } => {
                write!(
                    f,
                    "payload of {payload} bytes is not a multiple of entry size {entry}"
                )
            }
            FrameError::Checksum { expected, actual } => {
                write!(
                    f,
                    "payload checksum {actual:#018x} != declared {expected:#018x}"
                )
            }
            FrameError::Shard { shard, shards } => {
                write!(f, "shard {shard} out of range for {shards}-shard exchange")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over `bytes` — the frame payload checksum.
#[must_use]
pub fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the payload carries.
    pub kind: FrameKind,
    /// Originating shard (sender for skyline frames, receiver-agnostic
    /// zero for broadcasts).
    pub shard: u16,
    /// Key dimensions per narrow entry.
    pub dims: u32,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// A decoded frame borrowing its payload from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The validated header.
    pub header: FrameHeader,
    /// The checksum-verified payload: back-to-back narrow entries.
    pub payload: &'a [u8],
}

impl<'a> Frame<'a> {
    /// Narrow entry size implied by the header's dims.
    #[must_use]
    pub fn entry_size(&self) -> usize {
        8 * (self.header.dims as usize + 1)
    }

    /// Number of narrow entries in the payload.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.payload.len() / self.entry_size()
    }

    /// Iterate the payload's narrow entries in order.
    pub fn iter_entries(&self) -> impl Iterator<Item = &'a [u8]> {
        self.payload.chunks_exact(self.entry_size())
    }
}

/// Encode one frame: header plus `payload`, which must already be
/// back-to-back narrow entries of `narrow`'s layout. The entry stride
/// is taken from `narrow`, so an encode/decode round trip preserves
/// entries bit-for-bit.
#[must_use]
pub fn encode_frame(kind: FrameKind, shard: u16, narrow: &NarrowLayout, payload: &[u8]) -> Vec<u8> {
    debug_assert_eq!(payload.len() % narrow.entry_size(), 0);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.push(FRAME_VERSION);
    out.push(kind.as_u8());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&(narrow.dims() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn le_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

fn le_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Decode one frame from the front of `buf`.
///
/// Returns the frame and the total bytes it consumed, so concatenated
/// frames can be walked front to back (see [`decode_stream`]).
///
/// # Errors
///
/// [`FrameError`] when `buf` is shorter than a header, the magic /
/// version / kind / dims fields are invalid, the declared payload
/// overruns `buf`, the payload is not a whole number of entries, or
/// the payload fails its checksum.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame<'_>, usize), FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Truncated {
            expected: FRAME_HEADER_BYTES,
            actual: buf.len(),
        });
    }
    let magic = le_u32(buf, 0);
    if magic != FRAME_MAGIC {
        return Err(FrameError::Magic { found: magic });
    }
    if buf[4] != FRAME_VERSION {
        return Err(FrameError::Version { found: buf[4] });
    }
    let kind = FrameKind::from_u8(buf[5]).ok_or(FrameError::Kind { found: buf[5] })?;
    let shard = u16::from_le_bytes([buf[6], buf[7]]);
    let dims = le_u32(buf, 8);
    if dims == 0 || dims > MAX_FRAME_DIMS {
        return Err(FrameError::Dims { found: dims });
    }
    let payload_len = le_u32(buf, 12) as usize;
    let entry = 8 * (dims as usize + 1);
    if !payload_len.is_multiple_of(entry) {
        return Err(FrameError::Stride {
            payload: payload_len,
            entry,
        });
    }
    let total = FRAME_HEADER_BYTES + payload_len;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            expected: total,
            actual: buf.len(),
        });
    }
    let checksum = le_u64(buf, 16);
    let payload = &buf[FRAME_HEADER_BYTES..total];
    let actual = payload_checksum(payload);
    if actual != checksum {
        return Err(FrameError::Checksum {
            expected: checksum,
            actual,
        });
    }
    Ok((
        Frame {
            header: FrameHeader {
                kind,
                shard,
                dims,
                payload_len,
                checksum,
            },
            payload,
        },
        total,
    ))
}

/// Decode a buffer of concatenated frames front to back.
///
/// # Errors
///
/// Any [`FrameError`] from [`decode_frame`]; trailing garbage after the
/// last whole frame surfaces as the error for that position.
pub fn decode_stream(buf: &[u8]) -> Result<Vec<Frame<'_>>, FrameError> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < buf.len() {
        let (frame, used) = decode_frame(&buf[at..])?;
        out.push(frame);
        at += used;
    }
    Ok(out)
}

/// Point-in-time copy of an [`Exchange`]'s movement counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeSnapshot {
    /// Total bytes that crossed the exchange (headers plus payloads,
    /// uploads plus broadcasts; broadcasts count once per receiver).
    pub bytes_exchanged: u64,
    /// Frames that crossed the exchange (broadcast frames count once
    /// per receiver).
    pub exchange_frames: u64,
}

/// The in-process exchange: one ordered inbox per shard for frames
/// bound to the coordinator, and a meter that sees every byte in
/// either direction.
///
/// Delivery is deterministic — the coordinator drains inbox 0, then 1,
/// … — so counters downstream of the exchange are reproducible for a
/// given shard count.
#[derive(Debug)]
pub struct Exchange {
    inboxes: Vec<Mutex<Vec<Vec<u8>>>>,
    bytes: AtomicU64,
    frames: AtomicU64,
}

impl Exchange {
    /// An exchange with `shards` empty inboxes.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Exchange {
            inboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            bytes: AtomicU64::new(0),
            frames: AtomicU64::new(0),
        }
    }

    /// Shards this exchange was built with.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.inboxes.len()
    }

    /// Send one encoded frame from `shard` to the coordinator. Meters
    /// the full wire size (`frame.len()`).
    ///
    /// # Errors
    ///
    /// [`FrameError::Shard`] when `shard` is out of range.
    pub fn send(&self, shard: usize, frame: Vec<u8>) -> Result<(), FrameError> {
        let inbox = self.inboxes.get(shard).ok_or(FrameError::Shard {
            shard,
            shards: self.inboxes.len(),
        })?;
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.frames.fetch_add(1, Ordering::Relaxed);
        let mut q = inbox.lock().unwrap_or_else(|p| p.into_inner());
        q.push(frame);
        Ok(())
    }

    /// Drain the frames `shard` has sent, in send order.
    ///
    /// # Errors
    ///
    /// [`FrameError::Shard`] when `shard` is out of range.
    pub fn drain(&self, shard: usize) -> Result<Vec<Vec<u8>>, FrameError> {
        let inbox = self.inboxes.get(shard).ok_or(FrameError::Shard {
            shard,
            shards: self.inboxes.len(),
        })?;
        let mut q = inbox.lock().unwrap_or_else(|p| p.into_inner());
        Ok(std::mem::take(&mut *q))
    }

    /// Meter a coordinator→shards broadcast of one encoded frame:
    /// `frame_len` bytes and one frame per receiving shard. The caller
    /// hands each shard the shared bytes; the meter charges the copies
    /// a real network would.
    pub fn record_broadcast(&self, frame_len: usize, receivers: usize) {
        self.bytes
            .fetch_add(frame_len as u64 * receivers as u64, Ordering::Relaxed);
        self.frames.fetch_add(receivers as u64, Ordering::Relaxed);
    }

    /// Current counter values.
    #[must_use]
    pub fn snapshot(&self) -> ExchangeSnapshot {
        ExchangeSnapshot {
            bytes_exchanged: self.bytes.load(Ordering::Relaxed),
            exchange_frames: self.frames.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(narrow: &NarrowLayout, keys: &[(Vec<f64>, u64)]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut one = Vec::new();
        for (k, id) in keys {
            narrow.encode_into(k, *id, &mut one);
            out.extend_from_slice(&one);
        }
        out
    }

    #[test]
    fn round_trip_preserves_entries() {
        let narrow = NarrowLayout::new(3);
        let payload = entries(
            &narrow,
            &[
                (vec![1.0, 2.0, 3.0], 7),
                (vec![-0.5, 0.0, 9.25], 8),
                (vec![f64::MIN, f64::MAX, 0.0], u64::MAX),
            ],
        );
        let buf = encode_frame(FrameKind::Skyline, 2, &narrow, &payload);
        let (frame, used) = decode_frame(&buf).expect("decode");
        assert_eq!(used, buf.len());
        assert_eq!(frame.header.kind, FrameKind::Skyline);
        assert_eq!(frame.header.shard, 2);
        assert_eq!(frame.header.dims, 3);
        assert_eq!(frame.entries(), 3);
        assert_eq!(frame.payload, &payload[..]);
        let ids: Vec<u64> = frame.iter_entries().map(|e| narrow.row_id(e)).collect();
        assert_eq!(ids, vec![7, 8, u64::MAX]);
    }

    #[test]
    fn empty_payload_round_trips() {
        let narrow = NarrowLayout::new(2);
        let buf = encode_frame(FrameKind::Representatives, 0, &narrow, &[]);
        let (frame, used) = decode_frame(&buf).expect("decode");
        assert_eq!(used, FRAME_HEADER_BYTES);
        assert_eq!(frame.entries(), 0);
        assert_eq!(frame.header.kind, FrameKind::Representatives);
    }

    #[test]
    fn stream_walks_concatenated_frames() {
        let narrow = NarrowLayout::new(2);
        let a = encode_frame(
            FrameKind::Skyline,
            0,
            &narrow,
            &entries(&narrow, &[(vec![1.0, 2.0], 1)]),
        );
        let b = encode_frame(
            FrameKind::Skyline,
            1,
            &narrow,
            &entries(&narrow, &[(vec![3.0, 4.0], 2), (vec![5.0, 6.0], 3)]),
        );
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let frames = decode_stream(&buf).expect("stream");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].entries(), 1);
        assert_eq!(frames[1].entries(), 2);
        assert_eq!(frames[1].header.shard, 1);
    }

    #[test]
    fn truncation_every_prefix_is_typed_error() {
        let narrow = NarrowLayout::new(4);
        let buf = encode_frame(
            FrameKind::Skyline,
            3,
            &narrow,
            &entries(&narrow, &[(vec![1.0, 2.0, 3.0, 4.0], 9)]),
        );
        for cut in 0..buf.len() {
            let err = decode_frame(&buf[..cut]).expect_err("prefix must fail");
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let narrow = NarrowLayout::new(2);
        let payload = entries(&narrow, &[(vec![1.0, 2.0], 5), (vec![3.0, 4.0], 6)]);
        let good = encode_frame(FrameKind::Skyline, 1, &narrow, &payload);

        // Flip every single byte in turn: decode must return an error
        // or a frame unequal to the original — never panic, never pass
        // off corrupt payload as valid.
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0xff;
            match decode_frame(&bad) {
                Err(_) => {}
                Ok((frame, _)) => {
                    // Only header-padding-free fields can survive a
                    // flip: shard byte flips decode fine but change the
                    // header — payload must still be intact.
                    assert_eq!(frame.payload, &payload[..], "byte {at}");
                }
            }
        }

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 1;
        assert!(matches!(
            decode_frame(&bad_magic),
            Err(FrameError::Magic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(
            decode_frame(&bad_version),
            Err(FrameError::Version { found: 99 })
        ));

        let mut bad_kind = good.clone();
        bad_kind[5] = 7;
        assert!(matches!(
            decode_frame(&bad_kind),
            Err(FrameError::Kind { found: 7 })
        ));

        let mut bad_dims = good.clone();
        bad_dims[8] = 0;
        bad_dims[9] = 0;
        assert!(matches!(
            decode_frame(&bad_dims),
            Err(FrameError::Dims { found: 0 })
        ));

        let mut bad_payload = good.clone();
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 0x10;
        assert!(matches!(
            decode_frame(&bad_payload),
            Err(FrameError::Checksum { .. })
        ));
    }

    #[test]
    fn stride_mismatch_is_detected() {
        let narrow = NarrowLayout::new(2);
        let payload = entries(&narrow, &[(vec![1.0, 2.0], 5)]);
        let mut buf = encode_frame(FrameKind::Skyline, 0, &narrow, &payload);
        // Rewrite dims to 3: 24 payload bytes are not a multiple of 32.
        buf[8] = 3;
        assert!(matches!(
            decode_frame(&buf),
            Err(FrameError::Stride {
                payload: 24,
                entry: 32
            })
        ));
    }

    #[test]
    fn exchange_meters_and_preserves_order() {
        let narrow = NarrowLayout::new(2);
        let ex = Exchange::new(2);
        let f1 = encode_frame(
            FrameKind::Skyline,
            0,
            &narrow,
            &entries(&narrow, &[(vec![1.0, 2.0], 1)]),
        );
        let f2 = encode_frame(
            FrameKind::Skyline,
            0,
            &narrow,
            &entries(&narrow, &[(vec![3.0, 4.0], 2)]),
        );
        let wire = (f1.len() + f2.len()) as u64;
        ex.send(0, f1.clone()).expect("send");
        ex.send(0, f2.clone()).expect("send");
        assert_eq!(
            ex.snapshot(),
            ExchangeSnapshot {
                bytes_exchanged: wire,
                exchange_frames: 2
            }
        );
        assert_eq!(ex.drain(0).expect("drain"), vec![f1, f2]);
        assert!(ex.drain(0).expect("drain").is_empty());
        assert!(ex.drain(1).expect("drain").is_empty());

        ex.record_broadcast(100, 2);
        let s = ex.snapshot();
        assert_eq!(s.bytes_exchanged, wire + 200);
        assert_eq!(s.exchange_frames, 4);
    }

    #[test]
    fn shard_out_of_range_is_typed() {
        let ex = Exchange::new(2);
        assert_eq!(
            ex.send(2, Vec::new()),
            Err(FrameError::Shard {
                shard: 2,
                shards: 2
            })
        );
        assert_eq!(
            ex.drain(9).expect_err("range"),
            FrameError::Shard {
                shard: 9,
                shards: 2
            }
        );
    }

    #[test]
    fn error_display_is_informative() {
        let cases: Vec<(FrameError, &str)> = vec![
            (
                FrameError::Truncated {
                    expected: 24,
                    actual: 3,
                },
                "truncated",
            ),
            (FrameError::Magic { found: 5 }, "magic"),
            (FrameError::Version { found: 9 }, "version"),
            (FrameError::Kind { found: 8 }, "kind"),
            (FrameError::Dims { found: 0 }, "dims"),
            (
                FrameError::Stride {
                    payload: 7,
                    entry: 24,
                },
                "multiple",
            ),
            (
                FrameError::Checksum {
                    expected: 1,
                    actual: 2,
                },
                "checksum",
            ),
            (
                FrameError::Shard {
                    shard: 4,
                    shards: 2,
                },
                "out of range",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
