//! SQL tokenizer.

use crate::error::QueryError;

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the token's first character.
    pub pos: usize,
    /// The token kind/payload.
    pub kind: TokenKind,
}

/// Token kinds. Keywords are recognized case-insensitively and carried
/// uppercased in `Keyword`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (SELECT, FROM, SKYLINE, …), uppercased.
    Keyword(String),
    /// Identifier (table/column name), original case preserved.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single-quoted; `''` escapes a quote).
    Str(String),
    /// Punctuation / operator.
    Sym(Sym),
    /// End of input.
    Eof,
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "SKYLINE", "OF", "MIN", "MAX", "DIFF", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "AND", "OR", "NOT", "AS", "EXCEPT", "GROUP", "HAVING", "NULL", "TRUE", "FALSE",
];

/// Tokenize `input` into a vector ending with [`TokenKind::Eof`].
///
/// # Errors
/// [`QueryError::Lex`] on a character no token starts with, an
/// unterminated string literal, or a malformed number.
pub fn tokenize(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let pos = i;
        match c {
            ',' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::Sym(Sym::Comma),
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::Sym(Sym::LParen),
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::Sym(Sym::RParen),
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::Sym(Sym::Star),
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    pos,
                    kind: TokenKind::Sym(Sym::Eq),
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        pos,
                        kind: TokenKind::Sym(Sym::Ne),
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        pos,
                        msg: "expected != ".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token {
                        pos,
                        kind: TokenKind::Sym(Sym::Le),
                    });
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token {
                        pos,
                        kind: TokenKind::Sym(Sym::Ne),
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        pos,
                        kind: TokenKind::Sym(Sym::Lt),
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        pos,
                        kind: TokenKind::Sym(Sym::Ge),
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        pos,
                        kind: TokenKind::Sym(Sym::Gt),
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(QueryError::Lex {
                                pos,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    pos,
                    kind: TokenKind::Str(s),
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let start = i;
                i += 1; // consume digit or '-'
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &input[start..i];
                if text.contains('.') {
                    let f: f64 = text.parse().map_err(|_| QueryError::Lex {
                        pos,
                        msg: format!("bad float literal {text}"),
                    })?;
                    out.push(Token {
                        pos,
                        kind: TokenKind::Float(f),
                    });
                } else {
                    let n: i64 = text.parse().map_err(|_| QueryError::Lex {
                        pos,
                        msg: format!("bad integer literal {text}"),
                    })?;
                    out.push(Token {
                        pos,
                        kind: TokenKind::Int(n),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'&')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token {
                        pos,
                        kind: TokenKind::Keyword(upper),
                    });
                } else {
                    out.push(Token {
                        pos,
                        kind: TokenKind::Ident(word.to_owned()),
                    });
                }
            }
            other => {
                return Err(QueryError::Lex {
                    pos,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    out.push(Token {
        pos: input.len(),
        kind: TokenKind::Eof,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(q: &str) -> Vec<TokenKind> {
        tokenize(q).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let k = kinds("select foo FROM Bar");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Ident("foo".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("Bar".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 -7 3.5 -0.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Float(3.5),
                TokenKind::Float(-0.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <> !="),
            vec![
                TokenKind::Sym(Sym::Lt),
                TokenKind::Sym(Sym::Le),
                TokenKind::Sym(Sym::Gt),
                TokenKind::Sym(Sym::Ge),
                TokenKind::Sym(Sym::Eq),
                TokenKind::Sym(Sym::Ne),
                TokenKind::Sym(Sym::Ne),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_recorded() {
        let toks = tokenize("a  bb").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
    }

    #[test]
    fn bad_char_rejected() {
        assert!(matches!(
            tokenize("a ; b"),
            Err(QueryError::Lex { pos: 2, .. })
        ));
    }
}
