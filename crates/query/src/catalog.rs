//! Named-table catalog.

use skyline_relation::Table;
use std::collections::HashMap;

/// A registry of in-memory tables, keyed case-insensitively.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table under `name`.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into().to_ascii_lowercase(), table);
    }

    /// Look a table up.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Registered table names (lowercased), sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_relation::samples::good_eats;

    #[test]
    fn case_insensitive_lookup() {
        let mut c = Catalog::new();
        c.register("GoodEats", good_eats());
        assert!(c.get("goodeats").is_some());
        assert!(c.get("GOODEATS").is_some());
        assert!(c.get("other").is_none());
        assert_eq!(c.names(), vec!["goodeats"]);
    }

    #[test]
    fn replace_on_reregister() {
        let mut c = Catalog::new();
        c.register("t", good_eats());
        let small = skyline_relation::Table::empty(good_eats().schema().clone());
        c.register("T", small);
        assert_eq!(c.get("t").unwrap().len(), 0);
    }
}
