//! Pushing `SKYLINE OF` down into the paged external engine.
//!
//! The in-memory executor in [`crate::plan`] is right for small and
//! medium tables; past a threshold the planner hands the skyline to the
//! external SFS operator instead: rows are encoded into fixed-width
//! records (criteria + diff attributes as i32, the originating row index
//! in the payload), loaded into a heap file, entropy-presorted with the
//! external sort, and filtered through a window sized by the §6
//! cardinality estimator. This is the integration the paper argues for —
//! the skyline as *an operator inside the engine*, not an application
//! post-pass.
//!
//! Falls back to the in-memory path when a criterion value does not fit
//! an `i32` (the record codec's attribute width).

use crate::error::QueryError;
use skyline_core::cardinality::recommend_window_pages;
use skyline_core::planner::{entropy_stats_of_records, load_heap, presort, sfs_filter};
use skyline_core::{Criterion, Direction, SfsConfig, SkylineMetrics, SkylineSpec, SortOrder};
use skyline_exec::Operator;
use skyline_relation::{RecordLayout, Schema, Tuple};
use skyline_storage::{Disk, MemDisk};
use std::sync::Arc;

/// Row-count threshold above which [`crate::execute`] routes the skyline
/// through the external engine.
pub const EXTERNAL_THRESHOLD: usize = 50_000;

/// Attempt the external skyline. Returns `Ok(None)` when the rows cannot
/// be pushed down (criterion values outside i32), in which case the
/// caller should run the in-memory path.
///
/// `crit` is `(column index, is_min)` per MIN/MAX criterion; `diff` is
/// the DIFF column indices. Returned row indices are ascending.
///
/// # Errors
/// Propagates operator failures as semantic errors.
///
/// # Panics
/// If the operator returns a record whose payload lost its 8-byte row
/// tag — a layout invariant of this module's own encoding.
pub fn external_skyline_indices(
    schema: &Schema,
    rows: &[Tuple],
    crit: &[(usize, bool)],
    diff: &[usize],
) -> Result<Option<Vec<usize>>, QueryError> {
    let k = crit.len();
    let m = diff.len();
    let layout = RecordLayout::new(k + m, 8); // payload: row index as u64

    // encode: oriented values must fit i32 exactly
    let mut records = Vec::with_capacity(rows.len());
    let mut attrs = vec![0i32; k + m];
    for (rowno, row) in rows.iter().enumerate() {
        for (slot, &(idx, _)) in crit.iter().enumerate() {
            let v = row.get(idx).as_f64().ok_or_else(|| {
                QueryError::Semantic(format!(
                    "row {rowno}: skyline column {} is not numeric",
                    schema.column(idx).name
                ))
            })?;
            if v.fract() != 0.0 || v < f64::from(i32::MIN) || v > f64::from(i32::MAX) {
                return Ok(None); // not representable: fall back
            }
            attrs[slot] = v as i32;
        }
        for (slot, &idx) in diff.iter().enumerate() {
            let Some(v) = row.get(idx).as_i64() else {
                return Ok(None); // non-integer diff key: fall back
            };
            let Ok(v) = i32::try_from(v) else {
                return Ok(None);
            };
            attrs[k + slot] = v;
        }
        records.push(layout.encode(&attrs, &(rowno as u64).to_le_bytes()));
    }

    let spec = SkylineSpec::new(
        crit.iter()
            .enumerate()
            .map(|(slot, &(_, is_min))| Criterion {
                attr: slot,
                direction: if is_min {
                    Direction::Min
                } else {
                    Direction::Max
                },
            })
            .collect(),
    )
    .with_diff((k..k + m).collect());

    let disk: Arc<dyn Disk> = MemDisk::shared();
    let heap = Arc::new(
        load_heap(
            Arc::clone(&disk),
            layout.record_size(),
            records.iter().map(Vec::as_slice),
        )
        .map_err(|e| QueryError::Semantic(e.to_string()))?,
    );
    let stats = entropy_stats_of_records(&layout, &spec, records.iter().map(Vec::as_slice));
    drop(records);

    let mut sorted = presort(
        heap,
        layout,
        spec.clone(),
        SortOrder::Entropy,
        Some(stats),
        1000,
        Arc::clone(&disk),
    )
    .map_err(|e| QueryError::Semantic(e.to_string()))?;
    sorted.mark_temp();

    let window_pages = recommend_window_pages(rows.len(), k.max(1), 4 * k.max(1));
    let mut sfs = sfs_filter(
        Arc::new(sorted),
        layout,
        spec,
        SfsConfig::new(window_pages).with_projection(),
        disk,
        SkylineMetrics::shared(),
    )
    .map_err(|e| QueryError::Semantic(e.to_string()))?;

    let mut keep = Vec::new();
    sfs.open()
        .map_err(|e| QueryError::Semantic(e.to_string()))?;
    while let Some(r) = sfs
        .next()
        .map_err(|e| QueryError::Semantic(e.to_string()))?
    {
        let payload = layout.payload_of(r);
        keep.push(u64::from_le_bytes(payload[..8].try_into().expect("8-byte tag")) as usize);
    }
    sfs.close();
    keep.sort_unstable();
    Ok(Some(keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_relation::{tuple, ColumnType, Value};

    fn random_table(n: usize) -> (Schema, Vec<Tuple>) {
        let schema = Schema::of(&[
            ("x", ColumnType::Int),
            ("y", ColumnType::Int),
            ("g", ColumnType::Int),
        ]);
        let rows = (0..n as i64)
            .map(|i| tuple![(i * 37) % 101, (i * 53) % 97, i % 3])
            .collect();
        (schema, rows)
    }

    fn in_memory(rows: &[Tuple], crit: &[(usize, bool)], diff: &[usize]) -> Vec<usize> {
        use skyline_core::KeyMatrix;
        let d = crit.len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for r in rows {
            for &(idx, is_min) in crit {
                let v = r.get(idx).as_f64().unwrap();
                data.push(if is_min { -v } else { v });
            }
        }
        let km = KeyMatrix::new(d, data);
        if diff.is_empty() {
            let mut out = skyline_core::algo::naive(&km).indices;
            out.sort_unstable();
            out
        } else {
            use std::collections::HashMap;
            let mut groups: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
            for (i, r) in rows.iter().enumerate() {
                let gk: Vec<i64> = diff.iter().map(|&d| r.get(d).as_i64().unwrap()).collect();
                groups.entry(gk).or_default().push(i);
            }
            let mut out = Vec::new();
            for members in groups.values() {
                let sub = km.select(members);
                out.extend(
                    skyline_core::algo::naive(&sub)
                        .indices
                        .iter()
                        .map(|&l| members[l]),
                );
            }
            out.sort_unstable();
            out
        }
    }

    #[test]
    fn external_matches_in_memory() {
        let (schema, rows) = random_table(3_000);
        for (crit, diff) in [
            (vec![(0usize, false), (1usize, false)], vec![]),
            (vec![(0, true), (1, false)], vec![]),
            (vec![(0, false), (1, true)], vec![2usize]),
        ] {
            let ext = external_skyline_indices(&schema, &rows, &crit, &diff)
                .unwrap()
                .expect("pushdown applies");
            assert_eq!(ext, in_memory(&rows, &crit, &diff), "{crit:?} {diff:?}");
        }
    }

    #[test]
    fn falls_back_on_non_integer_values() {
        let schema = Schema::of(&[("x", ColumnType::Float)]);
        let rows = vec![tuple![1.5], tuple![2.5]];
        let out = external_skyline_indices(&schema, &rows, &[(0, false)], &[]).unwrap();
        assert!(out.is_none(), "fractional values cannot push down");
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let rows = vec![
            Tuple::new(vec![Value::Int(i64::from(i32::MAX) + 1)]),
            Tuple::new(vec![Value::Int(0)]),
        ];
        let out = external_skyline_indices(&schema, &rows, &[(0, false)], &[]).unwrap();
        assert!(out.is_none(), "out-of-range values cannot push down");
    }

    #[test]
    fn empty_rows_ok() {
        let (schema, _) = random_table(0);
        let out = external_skyline_indices(&schema, &[], &[(0, false)], &[])
            .unwrap()
            .unwrap();
        assert!(out.is_empty());
    }
}
