//! Pushing `SKYLINE OF` down into the paged external engine.
//!
//! The in-memory executor in [`crate::plan`] is right for small and
//! medium tables; past a threshold the planner hands the skyline to the
//! external SFS operator instead: rows are encoded into fixed-width
//! records (criteria + diff attributes as i32, the originating row index
//! in the payload), loaded into a heap file, entropy-presorted with the
//! external sort, and filtered through a window sized by the §6
//! cardinality estimator. This is the integration the paper argues for —
//! the skyline as *an operator inside the engine*, not an application
//! post-pass.
//!
//! [`external_skyline_with`] is the contract-aware entry: it honours the
//! [`ExecOptions`] algorithm choice (SFS, BNL, the parallel pipeline,
//! strata), charges each pass's arena against the optional quota pool
//! (sort arena while sorting, filter window while filtering — the same
//! lease discipline as `planner::budgeted_skyline_plan`), threads the
//! cancel token through encoding and the operators, and spills to the
//! caller's disk when one is given. Every heap file it creates is
//! temp-marked, so pages are reclaimed on *every* path — success, typed
//! quota error, cancellation, or storage fault.
//!
//! Falls back to the in-memory path when a criterion value does not fit
//! an `i32` (the record codec's attribute width), or when the chosen
//! algorithm has no external form for the query shape (divide-and-
//! conquer always; BNL/parallel/strata under a `DIFF` clause).

use crate::error::QueryError;
use crate::options::{ExecOptions, SkylineAlgo};
use skyline_core::cardinality::recommend_window_pages;
use skyline_core::planner::{
    entropy_stats_of_records, load_heap, parallel_skyline_pipeline, presort, sfs_filter,
};
use skyline_core::strata::strata_external;
use skyline_core::{
    Criterion, Direction, EntropyScore, SfsConfig, SkylineMetrics, SkylineSpec, SortOrder,
};
use skyline_exec::cancel::poll;
use skyline_exec::{CancelToken, ExecError, Operator};
use skyline_relation::{RecordLayout, Schema, Tuple};
use skyline_storage::{BufferLease, Disk, HeapFile, MemDisk, StorageError};
use std::sync::Arc;

/// Row-count threshold above which [`crate::execute`] routes the skyline
/// through the external engine.
pub const EXTERNAL_THRESHOLD: usize = 50_000;

fn storage_err(e: StorageError) -> QueryError {
    QueryError::from_exec(ExecError::Storage(e))
}

fn check_cancel(cancel: Option<&CancelToken>, count: u64) -> Result<(), QueryError> {
    poll(cancel, count).map_err(QueryError::from_exec)
}

/// Charge `pages` against the quota pool, if one is set. The lease is
/// released when the returned guard drops — including on error unwind.
fn reserve(opts: &ExecOptions, pages: usize) -> Result<Option<BufferLease>, QueryError> {
    match &opts.pool {
        Some(pool) => pool
            .reserve(pages)
            .map(Some)
            .map_err(|e| QueryError::from_exec(ExecError::Buffer(e))),
        None => Ok(None),
    }
}

/// Attempt the external skyline with the historical defaults (SFS, no
/// quota, no deadline, private in-memory spill disk). Returns `Ok(None)`
/// when the rows cannot be pushed down (criterion values outside i32),
/// in which case the caller should run the in-memory path.
///
/// `crit` is `(column index, is_min)` per MIN/MAX criterion; `diff` is
/// the DIFF column indices. Returned row indices are ascending.
///
/// # Errors
/// Everything [`external_skyline_with`] reports.
pub fn external_skyline_indices(
    schema: &Schema,
    rows: &[Tuple],
    crit: &[(usize, bool)],
    diff: &[usize],
) -> Result<Option<Vec<usize>>, QueryError> {
    external_skyline_with(schema, rows, crit, diff, &ExecOptions::default())
}

/// [`external_skyline_indices`] under an execution contract: algorithm
/// choice, page quota, cancellation, and spill-disk placement all come
/// from `opts`. Returns `Ok(None)` when the query cannot (or should
/// not) run externally; the caller then uses the in-memory executor.
///
/// # Errors
/// [`QueryError::QuotaExceeded`] when a pass's arena does not fit the
/// quota pool, [`QueryError::Cancelled`] when the token trips, and
/// [`QueryError::Exec`] for storage or worker failures. No heap pages
/// remain allocated on any error path.
pub fn external_skyline_with(
    schema: &Schema,
    rows: &[Tuple],
    crit: &[(usize, bool)],
    diff: &[usize],
    opts: &ExecOptions,
) -> Result<Option<Vec<usize>>, QueryError> {
    match opts.algo {
        // No external divide-and-conquer; BNL, the parallel pipeline and
        // the strata machinery reject DIFF grouping.
        SkylineAlgo::DivideAndConquer => return Ok(None),
        SkylineAlgo::Bnl | SkylineAlgo::Parallel | SkylineAlgo::Strata if !diff.is_empty() => {
            return Ok(None)
        }
        _ => {}
    }
    let k = crit.len();
    let m = diff.len();
    let layout = RecordLayout::new(k + m, 8); // payload: row index as u64

    // encode: oriented values must fit i32 exactly
    let cancel = opts.cancel.as_ref();
    let mut records = Vec::with_capacity(rows.len());
    let mut attrs = vec![0i32; k + m];
    for (rowno, row) in rows.iter().enumerate() {
        check_cancel(cancel, rowno as u64)?;
        for (slot, &(idx, _)) in crit.iter().enumerate() {
            let v = row.get(idx).as_f64().ok_or_else(|| {
                QueryError::Semantic(format!(
                    "row {rowno}: skyline column {} is not numeric",
                    schema.column(idx).name
                ))
            })?;
            if v.fract() != 0.0 || v < f64::from(i32::MIN) || v > f64::from(i32::MAX) {
                return Ok(None); // not representable: fall back
            }
            attrs[slot] = v as i32;
        }
        for (slot, &idx) in diff.iter().enumerate() {
            let Some(v) = row.get(idx).as_i64() else {
                return Ok(None); // non-integer diff key: fall back
            };
            let Ok(v) = i32::try_from(v) else {
                return Ok(None);
            };
            attrs[k + slot] = v;
        }
        records.push(layout.encode(&attrs, &(rowno as u64).to_le_bytes()));
    }

    let spec = SkylineSpec::new(
        crit.iter()
            .enumerate()
            .map(|(slot, &(_, is_min))| Criterion {
                attr: slot,
                direction: if is_min {
                    Direction::Min
                } else {
                    Direction::Max
                },
            })
            .collect(),
    )
    .with_diff((k..k + m).collect());

    let disk: Arc<dyn Disk> = match &opts.disk {
        Some(d) => Arc::clone(d),
        None => MemDisk::shared(),
    };
    let mut heap = load_heap(
        Arc::clone(&disk),
        layout.record_size(),
        records.iter().map(Vec::as_slice),
    )
    .map_err(storage_err)?;
    // Temp-marked: the input's pages are reclaimed when the last handle
    // drops, whichever path (success or unwind) gets there.
    heap.mark_temp();
    let heap = Arc::new(heap);
    let stats = entropy_stats_of_records(&layout, &spec, records.iter().map(Vec::as_slice));
    drop(records);

    let window_pages = recommend_window_pages(rows.len(), k.max(1), 4 * k.max(1));
    let mut keep = match opts.algo {
        SkylineAlgo::Bnl => bnl_path(heap, layout, spec, window_pages, disk, opts)?,
        SkylineAlgo::Parallel => {
            parallel_path(heap, layout, spec, stats, window_pages, disk, opts)?
        }
        SkylineAlgo::Strata => strata_path(heap, layout, spec, stats, window_pages, disk, opts)?,
        // Auto and Sfs share the paper's presort+filter; DivideAndConquer
        // returned above.
        _ => sfs_path(heap, layout, spec, stats, window_pages, disk, opts)?,
    };
    keep.sort_unstable();
    Ok(Some(keep))
}

/// Entropy presort (sort arena charged while sorting) then the SFS
/// filter (window charged while filtering) — the lease discipline of
/// `planner::budgeted_skyline_plan`.
fn sfs_path(
    heap: Arc<HeapFile>,
    layout: RecordLayout,
    spec: SkylineSpec,
    stats: EntropyScore,
    window_pages: usize,
    disk: Arc<dyn Disk>,
    opts: &ExecOptions,
) -> Result<Vec<usize>, QueryError> {
    let sort_lease = reserve(opts, opts.sort_pages)?;
    check_cancel(opts.cancel.as_ref(), 0)?;
    let mut sorted = presort(
        heap,
        layout,
        spec.clone(),
        SortOrder::Entropy,
        Some(stats),
        opts.sort_pages,
        Arc::clone(&disk),
    )
    .map_err(QueryError::from_exec)?;
    drop(sort_lease);
    sorted.mark_temp();

    let _window_lease = reserve(opts, window_pages)?;
    let mut sfs = sfs_filter(
        Arc::new(sorted),
        layout,
        spec,
        SfsConfig::new(window_pages).with_projection(),
        disk,
        SkylineMetrics::shared(),
    )
    .map_err(QueryError::from_exec)?;
    if let Some(token) = &opts.cancel {
        sfs = sfs.with_cancel(token.clone());
    }
    drain_tags(&mut sfs, &layout)
}

/// Block-nested-loops straight over the unsorted heap; only the window
/// is charged.
fn bnl_path(
    heap: Arc<HeapFile>,
    layout: RecordLayout,
    spec: SkylineSpec,
    window_pages: usize,
    disk: Arc<dyn Disk>,
    opts: &ExecOptions,
) -> Result<Vec<usize>, QueryError> {
    let _window_lease = reserve(opts, window_pages)?;
    let mut bnl = skyline_core::planner::bnl_over(
        heap,
        layout,
        spec,
        window_pages,
        disk,
        SkylineMetrics::shared(),
    )
    .map_err(QueryError::from_exec)?;
    if let Some(token) = &opts.cancel {
        bnl = bnl.with_cancel(token.clone());
    }
    drain_tags(&mut bnl, &layout)
}

/// The threaded presort + partitioned filter; the pipeline charges the
/// pool itself, so only the pass-through wiring lives here. The
/// materialized skyline heap is temp-marked before scanning so its pages
/// are reclaimed even when a read faults mid-scan.
fn parallel_path(
    heap: Arc<HeapFile>,
    layout: RecordLayout,
    spec: SkylineSpec,
    stats: EntropyScore,
    window_pages: usize,
    disk: Arc<dyn Disk>,
    opts: &ExecOptions,
) -> Result<Vec<usize>, QueryError> {
    let outcome = parallel_skyline_pipeline(
        heap,
        layout,
        spec,
        SortOrder::Entropy,
        Some(stats),
        SfsConfig::new(window_pages).with_projection(),
        opts.sort_pages,
        opts.threads,
        disk,
        SkylineMetrics::shared(),
        opts.pool.as_ref(),
        opts.cancel.clone(),
    )
    .map_err(QueryError::from_exec)?;
    let mut sky = outcome.skyline;
    sky.mark_temp();
    scan_tags(&sky, &layout, opts.cancel.as_ref())
}

/// `strata_external` with `k = 1`: stratum s₀ is the skyline. The
/// machinery has no quota/cancel plumbing of its own, so the whole
/// footprint (sort arena + window) is charged up front and the token is
/// checked at the pass boundaries.
fn strata_path(
    heap: Arc<HeapFile>,
    layout: RecordLayout,
    spec: SkylineSpec,
    stats: EntropyScore,
    window_pages: usize,
    disk: Arc<dyn Disk>,
    opts: &ExecOptions,
) -> Result<Vec<usize>, QueryError> {
    let _lease = reserve(opts, opts.sort_pages + window_pages)?;
    check_cancel(opts.cancel.as_ref(), 0)?;
    let result = strata_external(
        heap,
        layout,
        &spec,
        1,
        window_pages,
        opts.sort_pages,
        SortOrder::Entropy,
        Some(stats),
        disk,
    )
    .map_err(QueryError::from_exec)?;
    // Caller owns the persisted strata; temp-mark them all so every exit
    // from here reclaims their pages.
    let mut strata = result.strata;
    for s in &mut strata {
        s.mark_temp();
    }
    check_cancel(
        opts.cancel.as_ref(),
        strata.first().map_or(0, HeapFile::len),
    )?;
    match strata.first() {
        Some(s0) => scan_tags(s0, &layout, opts.cancel.as_ref()),
        None => Ok(Vec::new()),
    }
}

/// Drain an operator's output, decoding the row tag from each payload.
fn drain_tags(op: &mut dyn Operator, layout: &RecordLayout) -> Result<Vec<usize>, QueryError> {
    let mut keep = Vec::new();
    op.open().map_err(QueryError::from_exec)?;
    while let Some(r) = op.next().map_err(QueryError::from_exec)? {
        keep.push(tag_of(layout, r)?);
    }
    op.close();
    Ok(keep)
}

/// Read the row tags out of a materialized heap file.
fn scan_tags(
    heap: &HeapFile,
    layout: &RecordLayout,
    cancel: Option<&CancelToken>,
) -> Result<Vec<usize>, QueryError> {
    let mut keep = Vec::new();
    let mut scan = heap.scan();
    while let Some(r) = scan.next_record().map_err(storage_err)? {
        let tag = tag_of(layout, r)?;
        check_cancel(cancel, keep.len() as u64)?;
        keep.push(tag);
    }
    Ok(keep)
}

/// The 8-byte row tag this module planted in the record payload.
fn tag_of(layout: &RecordLayout, record: &[u8]) -> Result<usize, QueryError> {
    let payload = layout.payload_of(record);
    let bytes: [u8; 8] = payload
        .get(..8)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .ok_or_else(|| QueryError::Exec("record payload lost its 8-byte row tag".into()))?;
    Ok(u64::from_le_bytes(bytes) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_relation::{tuple, ColumnType, Value};
    use skyline_storage::BufferPool;

    fn random_table(n: usize) -> (Schema, Vec<Tuple>) {
        let schema = Schema::of(&[
            ("x", ColumnType::Int),
            ("y", ColumnType::Int),
            ("g", ColumnType::Int),
        ]);
        let rows = (0..n as i64)
            .map(|i| tuple![(i * 37) % 101, (i * 53) % 97, i % 3])
            .collect();
        (schema, rows)
    }

    fn in_memory(rows: &[Tuple], crit: &[(usize, bool)], diff: &[usize]) -> Vec<usize> {
        use skyline_core::KeyMatrix;
        let d = crit.len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for r in rows {
            for &(idx, is_min) in crit {
                let v = r.get(idx).as_f64().unwrap();
                data.push(if is_min { -v } else { v });
            }
        }
        let km = KeyMatrix::new(d, data);
        if diff.is_empty() {
            let mut out = skyline_core::algo::naive(&km).indices;
            out.sort_unstable();
            out
        } else {
            use std::collections::HashMap;
            let mut groups: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
            for (i, r) in rows.iter().enumerate() {
                let gk: Vec<i64> = diff.iter().map(|&d| r.get(d).as_i64().unwrap()).collect();
                groups.entry(gk).or_default().push(i);
            }
            let mut out = Vec::new();
            for members in groups.values() {
                let sub = km.select(members);
                out.extend(
                    skyline_core::algo::naive(&sub)
                        .indices
                        .iter()
                        .map(|&l| members[l]),
                );
            }
            out.sort_unstable();
            out
        }
    }

    #[test]
    fn external_matches_in_memory() {
        let (schema, rows) = random_table(3_000);
        for (crit, diff) in [
            (vec![(0usize, false), (1usize, false)], vec![]),
            (vec![(0, true), (1, false)], vec![]),
            (vec![(0, false), (1, true)], vec![2usize]),
        ] {
            let ext = external_skyline_indices(&schema, &rows, &crit, &diff)
                .unwrap()
                .expect("pushdown applies");
            assert_eq!(ext, in_memory(&rows, &crit, &diff), "{crit:?} {diff:?}");
        }
    }

    #[test]
    fn every_external_algorithm_matches_the_oracle() {
        let (schema, rows) = random_table(3_000);
        let crit = vec![(0usize, false), (1usize, true)];
        let oracle = in_memory(&rows, &crit, &[]);
        for algo in [
            SkylineAlgo::Auto,
            SkylineAlgo::Sfs,
            SkylineAlgo::Bnl,
            SkylineAlgo::Parallel,
            SkylineAlgo::Strata,
        ] {
            let opts = ExecOptions::default().with_algo(algo).with_threads(2);
            let ext = external_skyline_with(&schema, &rows, &crit, &[], &opts)
                .unwrap()
                .expect("pushdown applies");
            assert_eq!(ext, oracle, "{algo:?}");
        }
    }

    #[test]
    fn dnc_and_diff_restricted_algorithms_fall_back() {
        let (schema, rows) = random_table(100);
        let crit = vec![(0usize, false), (1usize, true)];
        let opts = ExecOptions::default().with_algo(SkylineAlgo::DivideAndConquer);
        assert!(external_skyline_with(&schema, &rows, &crit, &[], &opts)
            .unwrap()
            .is_none());
        for algo in [SkylineAlgo::Bnl, SkylineAlgo::Parallel, SkylineAlgo::Strata] {
            let opts = ExecOptions::default().with_algo(algo);
            assert!(
                external_skyline_with(&schema, &rows, &crit, &[2], &opts)
                    .unwrap()
                    .is_none(),
                "{algo:?} has no external DIFF form"
            );
        }
    }

    #[test]
    fn external_quota_and_cancel_surface_typed_and_leak_free() {
        let (schema, rows) = random_table(2_000);
        let crit = vec![(0usize, false), (1usize, true)];
        let disk = MemDisk::shared();

        // a pool far below the sort arena: typed quota error, no pages left
        let pool = BufferPool::new(8);
        let opts = ExecOptions::default()
            .with_algo(SkylineAlgo::Sfs)
            .with_pool(pool.clone())
            .with_disk(disk.clone());
        let err = external_skyline_with(&schema, &rows, &crit, &[], &opts).unwrap_err();
        assert!(matches!(err, QueryError::QuotaExceeded { .. }), "{err}");
        assert_eq!(pool.used(), 0, "quota refusal must release every lease");
        assert_eq!(disk.allocated_pages(), 0, "no heap pages may leak");

        // a pre-tripped token: typed cancellation, no pages left
        let token = skyline_exec::CancelToken::new();
        token.cancel();
        let opts = ExecOptions::default()
            .with_algo(SkylineAlgo::Sfs)
            .with_cancel(token)
            .with_disk(disk.clone());
        let err = external_skyline_with(&schema, &rows, &crit, &[], &opts).unwrap_err();
        assert!(matches!(err, QueryError::Cancelled { .. }), "{err}");
        assert_eq!(disk.allocated_pages(), 0, "no heap pages may leak");
    }

    #[test]
    fn falls_back_on_non_integer_values() {
        let schema = Schema::of(&[("x", ColumnType::Float)]);
        let rows = vec![tuple![1.5], tuple![2.5]];
        let out = external_skyline_indices(&schema, &rows, &[(0, false)], &[]).unwrap();
        assert!(out.is_none(), "fractional values cannot push down");
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let rows = vec![
            Tuple::new(vec![Value::Int(i64::from(i32::MAX) + 1)]),
            Tuple::new(vec![Value::Int(0)]),
        ];
        let out = external_skyline_indices(&schema, &rows, &[(0, false)], &[]).unwrap();
        assert!(out.is_none(), "out-of-range values cannot push down");
    }

    #[test]
    fn empty_rows_ok() {
        let (schema, _) = random_table(0);
        let out = external_skyline_indices(&schema, &[], &[(0, false)], &[])
            .unwrap()
            .unwrap();
        assert!(out.is_empty());
    }
}
