#![warn(missing_docs)]

//! A small SQL dialect with the paper's `SKYLINE OF` clause (Figure 3):
//!
//! ```sql
//! SELECT * FROM GoodEats
//!   WHERE price < 60
//!   SKYLINE OF S MAX, F MAX, D MAX, price MIN
//!   ORDER BY price ASC
//!   LIMIT 3
//! ```
//!
//! The pipeline is tokenizer → parser → logical plan → execution against a
//! [`catalog::Catalog`] of in-memory tables, with the skyline computed by
//! `skyline-core`'s SFS. [`rewrite::to_except_sql`] emits the equivalent
//! plain-SQL `EXCEPT` query of the paper's Figure 5 — the thing a user
//! would have to write (and an engine would have to brute-force) without
//! the operator.
//!
//! ```
//! use skyline_query::{catalog::Catalog, execute};
//! let mut cat = Catalog::new();
//! cat.register("GoodEats", skyline_relation::samples::good_eats());
//! let out = execute(
//!     "SELECT restaurant FROM GoodEats SKYLINE OF S MAX, F MAX, D MAX, price MIN",
//!     &cat,
//! ).unwrap();
//! assert_eq!(out.len(), 4);
//! ```

pub mod ast;
pub mod catalog;
pub mod ddl;
pub mod error;
pub mod expr;
pub mod options;
pub mod parser;
pub mod plan;
pub mod pushdown;
pub mod rewrite;
pub mod token;

pub use error::QueryError;
pub use options::{ExecOptions, SkylineAlgo};
pub use parser::parse;
pub use plan::{execute, execute_query, execute_query_with, execute_with, explain};
