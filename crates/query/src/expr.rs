//! Predicate evaluation over tuples (three-valued SQL logic collapsed to
//! two: comparisons involving NULL or incomparable types are simply
//! false).

use crate::ast::{CmpOp, Expr};
use crate::error::QueryError;
use skyline_relation::{Schema, Tuple, Value};
use std::cmp::Ordering;

/// Resolve all column references in `expr` to indices; fails fast on
/// unknown columns so execution can't panic later.
///
/// # Errors
/// [`QueryError::NoSuchColumn`] for any reference not in `schema`.
pub fn validate(expr: &Expr, schema: &Schema) -> Result<(), QueryError> {
    match expr {
        Expr::Column(name) => schema
            .index_of(name)
            .map(|_| ())
            .ok_or_else(|| QueryError::NoSuchColumn(name.clone())),
        Expr::Literal(_) => Ok(()),
        Expr::Cmp { left, right, .. } => {
            validate(left, schema)?;
            validate(right, schema)
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            validate(a, schema)?;
            validate(b, schema)
        }
        Expr::Not(e) => validate(e, schema),
    }
}

fn operand_value<'a>(expr: &'a Expr, schema: &Schema, row: &'a Tuple) -> &'a Value {
    match expr {
        Expr::Column(name) => {
            let idx = schema.index_of(name).expect("validated before eval");
            row.get(idx)
        }
        Expr::Literal(v) => v,
        _ => unreachable!("operands are columns or literals"),
    }
}

/// Evaluate a (validated) predicate against one row.
///
/// # Panics
/// On an expression that [`validate`] would reject: an unresolved
/// column reference, or a bare operand used as a predicate.
pub fn eval(expr: &Expr, schema: &Schema, row: &Tuple) -> bool {
    match expr {
        Expr::Cmp { left, op, right } => {
            let l = operand_value(left, schema, row);
            let r = operand_value(right, schema, row);
            if l.is_null() || r.is_null() {
                return false; // SQL UNKNOWN → filtered out
            }
            match l.sql_cmp(r) {
                None => false,
                Some(ord) => match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                },
            }
        }
        Expr::And(a, b) => eval(a, schema, row) && eval(b, schema, row),
        Expr::Or(a, b) => eval(a, schema, row) || eval(b, schema, row),
        Expr::Not(e) => !eval(e, schema, row),
        Expr::Column(_) | Expr::Literal(_) => {
            unreachable!("bare operands are not predicates")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use skyline_relation::samples::good_eats;

    fn pred(text: &str) -> Expr {
        parse(&format!("SELECT * FROM t WHERE {text}"))
            .unwrap()
            .where_clause
            .unwrap()
    }

    #[test]
    fn numeric_comparisons() {
        let t = good_eats();
        let e = pred("price < 50");
        validate(&e, t.schema()).unwrap();
        let matches: Vec<&str> = t
            .rows()
            .iter()
            .filter(|r| eval(&e, t.schema(), r))
            .map(|r| r.get(0).as_str().unwrap())
            .collect();
        assert_eq!(
            matches,
            vec!["Summer Moon", "Fenton & Pickle", "Briar Patch BBQ"]
        );
    }

    #[test]
    fn string_equality_and_boolean_ops() {
        let t = good_eats();
        let e = pred("restaurant = 'Zakopane' OR (S >= 21 AND NOT price > 50)");
        validate(&e, t.schema()).unwrap();
        let matches: Vec<&str> = t
            .rows()
            .iter()
            .filter(|r| eval(&e, t.schema(), r))
            .map(|r| r.get(0).as_str().unwrap())
            .collect();
        // Zakopane by name; Summer Moon via S=21 & price 47.5
        assert_eq!(matches, vec!["Summer Moon", "Zakopane"]);
    }

    #[test]
    fn unknown_column_rejected() {
        let t = good_eats();
        let e = pred("bogus = 1");
        assert_eq!(
            validate(&e, t.schema()),
            Err(QueryError::NoSuchColumn("bogus".into()))
        );
    }

    #[test]
    fn null_comparisons_are_false() {
        use skyline_relation::{Column, ColumnType, Tuple, Value};
        let schema = Schema::new(vec![Column::new("a", ColumnType::Int)]).unwrap();
        let row = Tuple::new(vec![Value::Null]);
        for text in ["a = 1", "a <> 1", "a < 1", "a >= 1"] {
            assert!(!eval(&pred(text), &schema, &row), "{text}");
        }
        // NOT (a = 1) is true under our two-valued collapse
        assert!(eval(&pred("NOT a = 1"), &schema, &row));
    }

    #[test]
    fn cross_type_comparison_is_false() {
        let t = good_eats();
        let e = pred("restaurant < 5");
        validate(&e, t.schema()).unwrap();
        assert!(!t.rows().iter().any(|r| eval(&e, t.schema(), r)));
    }
}
