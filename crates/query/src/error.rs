//! Query-layer errors.

use skyline_exec::ExecError;
use skyline_storage::buffer::BufferError;
use std::fmt;

/// Errors across lexing, parsing, planning and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset into the query text.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Byte offset of the offending token.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// Semantic error (type mismatches, invalid skyline criteria, …).
    Semantic(String),
    /// The query's [`skyline_storage::BufferPool`] quota could not cover
    /// a pass's working set. Carries the shortfall so callers can size a
    /// retry; no pages are leaked when this is returned.
    QuotaExceeded {
        /// Pages the pass asked for.
        requested: usize,
        /// Pages that were still available under the quota.
        available: usize,
    },
    /// The query's [`skyline_exec::CancelToken`] tripped — an explicit
    /// cancel or an elapsed deadline — with partial progress recorded.
    Cancelled {
        /// Records fully processed before the token tripped.
        records_processed: u64,
    },
    /// The execution layer failed for a reason with no richer mapping
    /// (storage faults, worker panics, protocol violations).
    Exec(String),
}

impl QueryError {
    /// Map an execution-layer error onto the query-layer taxonomy:
    /// buffer exhaustion becomes [`QueryError::QuotaExceeded`],
    /// cooperative cancellation becomes [`QueryError::Cancelled`], and
    /// everything else is carried as [`QueryError::Exec`] text.
    #[must_use]
    pub fn from_exec(err: ExecError) -> Self {
        match err {
            ExecError::Buffer(BufferError::Exhausted {
                requested,
                available,
            }) => QueryError::QuotaExceeded {
                requested,
                available,
            },
            ExecError::Cancelled { records_processed } => {
                QueryError::Cancelled { records_processed }
            }
            other => QueryError::Exec(other.to_string()),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            QueryError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            QueryError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            QueryError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            QueryError::Semantic(m) => write!(f, "semantic error: {m}"),
            QueryError::QuotaExceeded {
                requested,
                available,
            } => write!(
                f,
                "page quota exceeded: requested {requested} pages, {available} available"
            ),
            QueryError::Cancelled { records_processed } => {
                write!(f, "query cancelled after {records_processed} records")
            }
            QueryError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::Parse {
            pos: 3,
            msg: "expected FROM".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        assert!(QueryError::NoSuchTable("t".into())
            .to_string()
            .contains("t"));
    }

    #[test]
    fn exec_mapping_preserves_typed_resource_errors() {
        let quota = QueryError::from_exec(ExecError::Buffer(BufferError::Exhausted {
            requested: 9,
            available: 4,
        }));
        assert_eq!(
            quota,
            QueryError::QuotaExceeded {
                requested: 9,
                available: 4
            }
        );
        assert!(quota.to_string().contains("9 pages"));

        let cancelled = QueryError::from_exec(ExecError::Cancelled {
            records_processed: 17,
        });
        assert_eq!(
            cancelled,
            QueryError::Cancelled {
                records_processed: 17
            }
        );
        assert!(cancelled.to_string().contains("17 records"));

        let other = QueryError::from_exec(ExecError::Protocol("late push"));
        assert!(matches!(&other, QueryError::Exec(m) if m.contains("late push")));
    }
}
