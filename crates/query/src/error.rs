//! Query-layer errors.

use std::fmt;

/// Errors across lexing, parsing, planning and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset into the query text.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Byte offset of the offending token.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// Semantic error (type mismatches, invalid skyline criteria, …).
    Semantic(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            QueryError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            QueryError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            QueryError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            QueryError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::Parse {
            pos: 3,
            msg: "expected FROM".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        assert!(QueryError::NoSuchTable("t".into())
            .to_string()
            .contains("t"));
    }
}
