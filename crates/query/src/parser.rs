//! Recursive-descent parser for the `SKYLINE OF` dialect.

use crate::ast::*;
use crate::error::QueryError;
use crate::token::{tokenize, Sym, Token, TokenKind};
use skyline_relation::Value;

/// Parse one query.
///
/// # Errors
/// Lex failures and syntax errors, each naming the offending token.
pub fn parse(input: &str) -> Result<Query, QueryError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, QueryError> {
        Err(QueryError::Parse {
            pos: self.peek_pos(),
            msg: msg.into(),
        })
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), TokenKind::Sym(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            // Skyline criteria columns often collide with directive-ish
            // names; only hard keywords are reserved. Allow MIN/MAX/etc.
            // to *not* be used as identifiers for simplicity.
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), QueryError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {:?}", self.peek()))
        }
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword("SELECT")?;
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let mut cols = vec![self.ident()?];
            while self.eat_sym(Sym::Comma) {
                cols.push(self.ident()?);
            }
            cols
        } else {
            Vec::new()
        };
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let skyline = if self.eat_keyword("SKYLINE") {
            self.expect_keyword("OF")?;
            Some(self.skyline_clause()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            self.order_list()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => return self.err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
            group_by,
            having,
            skyline,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, QueryError> {
        if self.eat_sym(Sym::Star) {
            return Ok(Vec::new());
        }
        let mut items = vec![self.select_item()?];
        while self.eat_sym(Sym::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn alias(&mut self) -> Result<Option<String>, QueryError> {
        if self.eat_keyword("AS") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, QueryError> {
        // aggregate forms: MAX(col) / MIN(col) are keywords; COUNT / SUM /
        // AVG arrive as identifiers followed by '('
        let agg = match self.peek() {
            TokenKind::Keyword(k) if k == "MAX" => Some(AggFunc::Max),
            TokenKind::Keyword(k) if k == "MIN" => Some(AggFunc::Min),
            TokenKind::Ident(name) => match name.to_ascii_uppercase().as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                _ => None,
            },
            _ => None,
        };
        if let Some(func) = agg {
            // only an aggregate if followed by '('
            let save = self.pos;
            self.bump();
            if self.eat_sym(Sym::LParen) {
                let column = self.ident()?;
                if !self.eat_sym(Sym::RParen) {
                    return self.err("expected ) after aggregate column");
                }
                let alias = self.alias()?;
                return Ok(SelectItem::Aggregate {
                    func,
                    column,
                    alias,
                });
            }
            self.pos = save;
        }
        let name = self.ident()?;
        let alias = self.alias()?;
        Ok(SelectItem::Column { name, alias })
    }

    fn skyline_clause(&mut self) -> Result<SkylineClause, QueryError> {
        let mut items = vec![self.skyline_item()?];
        while self.eat_sym(Sym::Comma) {
            items.push(self.skyline_item()?);
        }
        Ok(SkylineClause { items })
    }

    fn skyline_item(&mut self) -> Result<SkylineItem, QueryError> {
        let column = self.ident()?;
        let directive = if self.eat_keyword("MIN") {
            Directive::Min
        } else if self.eat_keyword("MAX") {
            Directive::Max
        } else if self.eat_keyword("DIFF") {
            Directive::Diff
        } else {
            Directive::Max // paper: "Let max be the default directive"
        };
        Ok(SkylineItem { column, directive })
    }

    fn order_list(&mut self) -> Result<Vec<OrderItem>, QueryError> {
        let mut items = Vec::new();
        loop {
            let column = self.ident()?;
            let desc = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            items.push(OrderItem { column, desc });
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(items)
    }

    // expr := and_expr (OR and_expr)*
    fn expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // and_expr := unary (AND unary)*
    fn and_expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.unary()?;
        while self.eat_keyword("AND") {
            let right = self.unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // unary := NOT unary | comparison | ( expr )
    fn unary(&mut self) -> Result<Expr, QueryError> {
        if self.eat_keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_sym(Sym::LParen) {
            let e = self.expr()?;
            if !self.eat_sym(Sym::RParen) {
                return self.err("expected )");
            }
            return Ok(e);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, QueryError> {
        let left = self.operand()?;
        let op = match self.peek() {
            TokenKind::Sym(Sym::Eq) => CmpOp::Eq,
            TokenKind::Sym(Sym::Ne) => CmpOp::Ne,
            TokenKind::Sym(Sym::Lt) => CmpOp::Lt,
            TokenKind::Sym(Sym::Le) => CmpOp::Le,
            TokenKind::Sym(Sym::Gt) => CmpOp::Gt,
            TokenKind::Sym(Sym::Ge) => CmpOp::Ge,
            other => return self.err(format!("expected comparison operator, found {other:?}")),
        };
        self.bump();
        let right = self.operand()?;
        Ok(Expr::Cmp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn operand(&mut self) -> Result<Expr, QueryError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Column(name))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(n)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Keyword(k) if k == "NULL" => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            other => self.err(format!("expected operand, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_query() {
        // the paper's restaurant query
        let q = parse("select * from GoodEats skyline of S max, F max, D max, price min").unwrap();
        assert!(q.select.is_empty());
        assert_eq!(q.from, "GoodEats");
        let sky = q.skyline.unwrap();
        assert_eq!(sky.items.len(), 4);
        assert_eq!(sky.items[3].directive, Directive::Min);
        assert_eq!(sky.items[0].column, "S");
    }

    #[test]
    fn default_directive_is_max() {
        let q = parse("SELECT * FROM t SKYLINE OF a, b MIN").unwrap();
        let sky = q.skyline.unwrap();
        assert_eq!(sky.items[0].directive, Directive::Max);
        assert_eq!(sky.items[1].directive, Directive::Min);
    }

    #[test]
    fn diff_directive() {
        let q = parse("SELECT * FROM t SKYLINE OF a MAX, c DIFF").unwrap();
        assert_eq!(q.skyline.unwrap().items[1].directive, Directive::Diff);
    }

    #[test]
    fn where_order_limit() {
        let q = parse(
            "SELECT name, price FROM t WHERE price < 60 AND (s >= 20 OR NOT f = 3) \
             SKYLINE OF s MAX ORDER BY price ASC, s DESC LIMIT 5",
        )
        .unwrap();
        let names: Vec<String> = q.select.iter().map(SelectItem::output_name).collect();
        assert_eq!(names, vec!["name".to_owned(), "price".to_owned()]);
        assert!(q.where_clause.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].desc);
        assert!(q.order_by[1].desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn plain_select_without_skyline() {
        let q = parse("SELECT a FROM t").unwrap();
        assert!(q.skyline.is_none());
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn string_literals_in_where() {
        let q = parse("SELECT * FROM t WHERE name = 'Summer Moon'").unwrap();
        match q.where_clause.unwrap() {
            Expr::Cmp { right, .. } => {
                assert_eq!(*right, Expr::Literal(Value::Str("Summer Moon".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse("SELECT FROM t").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        let err = parse("SELECT * FROM t LIMIT x").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        let err = parse("SELECT * FROM t garbage").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse("SELECT * FROM t LIMIT 1 1").is_err());
    }

    #[test]
    fn figure_8_group_by_query() {
        // the paper's dimensional-reduction query shape
        let q = parse(
            "SELECT a1, a2, a3, MAX(a4) AS a4 FROM R              GROUP BY a1, a2, a3              ORDER BY a1 DESC, a2 DESC, a3 DESC",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["a1", "a2", "a3"]);
        assert_eq!(q.select.len(), 4);
        assert_eq!(
            q.select[3],
            SelectItem::Aggregate {
                func: AggFunc::Max,
                column: "a4".into(),
                alias: Some("a4".into())
            }
        );
        assert_eq!(q.order_by.len(), 3);
        assert!(q.order_by.iter().all(|o| o.desc));
    }

    #[test]
    fn aggregate_functions_parse() {
        let q = parse("SELECT g, COUNT(x), SUM(x), AVG(x), MIN(x) FROM t GROUP BY g").unwrap();
        let funcs: Vec<Option<AggFunc>> = q
            .select
            .iter()
            .map(|i| match i {
                SelectItem::Aggregate { func, .. } => Some(*func),
                SelectItem::Column { .. } => None,
            })
            .collect();
        assert_eq!(
            funcs,
            vec![
                None,
                Some(AggFunc::Count),
                Some(AggFunc::Sum),
                Some(AggFunc::Avg),
                Some(AggFunc::Min)
            ]
        );
    }

    #[test]
    fn count_without_parens_is_a_column() {
        let q = parse("SELECT count FROM t").unwrap();
        assert_eq!(
            q.select[0],
            SelectItem::Column {
                name: "count".into(),
                alias: None
            }
        );
    }

    #[test]
    fn alias_on_plain_column() {
        let q = parse("SELECT price AS cost FROM t").unwrap();
        assert_eq!(q.select[0].output_name(), "cost");
    }
}
