//! DDL / DML statements: `CREATE TABLE` and `INSERT INTO`, so the query
//! layer (and the interactive shell) can build catalogs without Rust
//! code.
//!
//! ```
//! use skyline_query::catalog::Catalog;
//! use skyline_query::ddl::run_statement;
//! let mut cat = Catalog::new();
//! run_statement("CREATE TABLE pts (name STRING, x INT, y INT)", &mut cat).unwrap();
//! run_statement("INSERT INTO pts VALUES ('a', 1, 2), ('b', 3, 4)", &mut cat).unwrap();
//! assert_eq!(cat.get("pts").unwrap().len(), 2);
//! ```

use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::token::{tokenize, Sym, Token, TokenKind};
use skyline_relation::{Column, ColumnType, Schema, Table, Tuple, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Schema.
        schema: Schema,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Table name.
        name: String,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
}

/// Parse a DDL/DML statement. Returns `Ok(None)` when the text does not
/// start with CREATE/INSERT (the caller should treat it as a query).
///
/// # Errors
/// Lex failures and malformed CREATE/INSERT syntax.
pub fn parse_statement(input: &str) -> Result<Option<Statement>, QueryError> {
    let tokens = tokenize(input)?;
    let mut p = P { tokens, pos: 0 };
    match p.peek_word().as_deref() {
        Some("CREATE") => p.create_table().map(Some),
        Some("INSERT") => p.insert().map(Some),
        _ => Ok(None),
    }
}

/// Parse and apply a statement against a catalog.
///
/// # Errors
/// Parse errors; `CREATE` of an existing table; `INSERT` arity/type
/// mismatches or into a missing table. Non-statements are rejected with
/// a parse error (use [`crate::execute`] for queries).
pub fn run_statement(input: &str, catalog: &mut Catalog) -> Result<(), QueryError> {
    let Some(stmt) = parse_statement(input)? else {
        return Err(QueryError::Parse {
            pos: 0,
            msg: "expected CREATE TABLE or INSERT INTO".into(),
        });
    };
    apply_statement(stmt, catalog)
}

/// Apply a parsed statement.
///
/// # Errors
/// See [`run_statement`].
pub fn apply_statement(stmt: Statement, catalog: &mut Catalog) -> Result<(), QueryError> {
    match stmt {
        Statement::CreateTable { name, schema } => {
            if catalog.get(&name).is_some() {
                return Err(QueryError::Semantic(format!("table {name} already exists")));
            }
            catalog.register(name, Table::empty(schema));
            Ok(())
        }
        Statement::Insert { name, rows } => {
            let table = catalog
                .get(&name)
                .ok_or_else(|| QueryError::NoSuchTable(name.clone()))?;
            let schema = table.schema().clone();
            let mut new_table = table.clone();
            for (rowno, values) in rows.into_iter().enumerate() {
                if values.len() != schema.len() {
                    return Err(QueryError::Semantic(format!(
                        "row {rowno}: expected {} values, got {}",
                        schema.len(),
                        values.len()
                    )));
                }
                let coerced: Vec<Value> = values
                    .into_iter()
                    .zip(schema.columns())
                    .map(|(v, col)| coerce(v, col.ty))
                    .collect::<Result<_, _>>()
                    .map_err(|msg| QueryError::Semantic(format!("row {rowno}: {msg}")))?;
                new_table
                    .push(Tuple::new(coerced))
                    .map_err(|e| QueryError::Semantic(e.to_string()))?;
            }
            catalog.register(name, new_table);
            Ok(())
        }
    }
}

fn coerce(v: Value, ty: ColumnType) -> Result<Value, String> {
    Ok(match (v, ty) {
        (Value::Null, _) => Value::Null,
        (Value::Int(i), ColumnType::Int) => Value::Int(i),
        (Value::Int(i), ColumnType::Float) => Value::Float(i as f64),
        (Value::Int(i), ColumnType::Date) => Value::Date(i),
        (Value::Float(f), ColumnType::Float) => Value::Float(f),
        (Value::Str(s), ColumnType::Str) => Value::Str(s),
        (v, ty) => return Err(format!("cannot store {v} in a {ty} column")),
    })
}

struct P {
    tokens: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_word(&self) -> Option<String> {
        match self.peek() {
            TokenKind::Keyword(k) => Some(k.clone()),
            TokenKind::Ident(w) => Some(w.to_ascii_uppercase()),
            _ => None,
        }
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, QueryError> {
        Err(QueryError::Parse {
            pos: self.tokens[self.pos].pos,
            msg: msg.into(),
        })
    }

    fn expect_word(&mut self, w: &str) -> Result<(), QueryError> {
        if self.peek_word().as_deref() == Some(w) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {w}"))
        }
    }

    fn expect_sym(&mut self, s: Sym) -> Result<(), QueryError> {
        if matches!(self.peek(), TokenKind::Sym(x) if *x == s) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), TokenKind::Sym(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn create_table(&mut self) -> Result<Statement, QueryError> {
        self.expect_word("CREATE")?;
        self.expect_word("TABLE")?;
        let name = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut cols = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = match self.peek_word().as_deref() {
                Some("INT") | Some("INTEGER") => ColumnType::Int,
                Some("FLOAT") | Some("REAL") | Some("DOUBLE") => ColumnType::Float,
                Some("STRING") | Some("TEXT") | Some("VARCHAR") => ColumnType::Str,
                Some("DATE") => ColumnType::Date,
                other => return self.err(format!("unknown column type {other:?}")),
            };
            self.bump();
            cols.push(Column::new(col, ty));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        if !matches!(self.peek(), TokenKind::Eof) {
            return self.err("unexpected trailing input");
        }
        let schema = Schema::new(cols).map_err(|e| QueryError::Semantic(e.to_string()))?;
        Ok(Statement::CreateTable { name, schema })
    }

    fn insert(&mut self) -> Result<Statement, QueryError> {
        self.expect_word("INSERT")?;
        self.expect_word("INTO")?;
        let name = self.ident()?;
        self.expect_word("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut values = Vec::new();
            loop {
                values.push(self.literal()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            rows.push(values);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        if !matches!(self.peek(), TokenKind::Eof) {
            return self.err("unexpected trailing input");
        }
        Ok(Statement::Insert { name, rows })
    }

    fn literal(&mut self) -> Result<Value, QueryError> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Value::Int(i)),
            TokenKind::Float(f) => Value::float(f).map_err(|e| QueryError::Semantic(e.to_string())),
            TokenKind::Str(s) => Ok(Value::Str(s)),
            TokenKind::Keyword(k) if k == "NULL" => Ok(Value::Null),
            other => self.err(format!("expected literal, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute;

    #[test]
    fn create_insert_query_round_trip() {
        let mut cat = Catalog::new();
        run_statement(
            "CREATE TABLE houses (addr STRING, beds INT, baths INT, price FLOAT)",
            &mut cat,
        )
        .unwrap();
        run_statement(
            "INSERT INTO houses VALUES \
             ('12 Oak', 4, 1, 300000.0), ('9 Elm', 2, 2, 300000), ('3 Fir', 1, 1, 250000.5)",
            &mut cat,
        )
        .unwrap();
        let out = execute(
            "SELECT addr FROM houses SKYLINE OF beds MAX, baths MAX, price MIN",
            &cat,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut cat = Catalog::new();
        run_statement("CREATE TABLE t (x FLOAT)", &mut cat).unwrap();
        run_statement("INSERT INTO t VALUES (3)", &mut cat).unwrap();
        assert_eq!(cat.get("t").unwrap().rows()[0].get(0), &Value::Float(3.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut cat = Catalog::new();
        run_statement("CREATE TABLE t (x INT)", &mut cat).unwrap();
        let err = run_statement("INSERT INTO t VALUES ('oops')", &mut cat).unwrap_err();
        assert!(matches!(err, QueryError::Semantic(_)));
        // arity mismatch
        let err = run_statement("INSERT INTO t VALUES (1, 2)", &mut cat).unwrap_err();
        assert!(matches!(err, QueryError::Semantic(_)));
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut cat = Catalog::new();
        run_statement("CREATE TABLE t (x INT)", &mut cat).unwrap();
        assert!(run_statement("CREATE TABLE t (y INT)", &mut cat).is_err());
    }

    #[test]
    fn insert_into_missing_table() {
        let mut cat = Catalog::new();
        assert!(matches!(
            run_statement("INSERT INTO nope VALUES (1)", &mut cat),
            Err(QueryError::NoSuchTable(_))
        ));
    }

    #[test]
    fn non_statement_passes_through() {
        assert_eq!(parse_statement("SELECT * FROM t").unwrap(), None);
        assert!(parse_statement("CREATE TABLE").is_err());
    }

    #[test]
    fn null_literals() {
        let mut cat = Catalog::new();
        run_statement("CREATE TABLE t (x INT, y STRING)", &mut cat).unwrap();
        run_statement("INSERT INTO t VALUES (NULL, NULL)", &mut cat).unwrap();
        assert!(cat.get("t").unwrap().rows()[0].get(0).is_null());
    }
}
