//! Logical planning and execution.
//!
//! The plan shape is fixed — the skyline operator is *holistic* (does not
//! commute with selection), so `WHERE` always applies below `SKYLINE OF`,
//! and `ORDER BY`/`LIMIT` above it:
//!
//! ```text
//! Limit → Project → Sort → Skyline(SFS) → Filter → Scan
//! ```

use crate::ast::{AggFunc, Directive, Expr, Query, SelectItem};
use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::expr;
use crate::options::{matrix_pages, ExecOptions, SkylineAlgo};
use crate::parser::parse;
use skyline_core::algo;
use skyline_core::algo::MemSortOrder;
use skyline_core::cardinality::expected_skyline_size;
use skyline_core::lowdim::skyline_auto;
use skyline_core::par::{parallel_skyline_cancellable, AlgoError};
use skyline_core::KeyMatrix;
use skyline_exec::cancel::poll;
use skyline_exec::ExecError;
use skyline_relation::{Table, Tuple, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parse and execute `sql` against `catalog`.
///
/// # Errors
/// Parse failures, plus everything [`execute_query`] reports.
pub fn execute(sql: &str, catalog: &Catalog) -> Result<Table, QueryError> {
    execute_query(&parse(sql)?, catalog)
}

/// Parse and execute `sql` under an execution contract.
///
/// # Errors
/// Parse failures, plus everything [`execute_query_with`] reports.
pub fn execute_with(sql: &str, catalog: &Catalog, opts: &ExecOptions) -> Result<Table, QueryError> {
    execute_query_with(&parse(sql)?, catalog, opts)
}

/// Execute an already-parsed query.
///
/// # Errors
/// Unknown tables or columns, and semantic violations (aggregates
/// without grouping, non-numeric skyline criteria).
pub fn execute_query(query: &Query, catalog: &Catalog) -> Result<Table, QueryError> {
    execute_query_with(query, catalog, &ExecOptions::default())
}

/// Execute an already-parsed query under an execution contract: the
/// skyline honours the algorithm choice, charges its working sets to
/// the quota pool, polls the cancel token, and spills to the contract's
/// disk (see [`ExecOptions`]).
///
/// # Errors
/// Everything [`execute_query`] reports, plus the contract errors:
/// [`QueryError::QuotaExceeded`] and [`QueryError::Cancelled`].
///
/// # Panics
/// On an aggregate query that validation let through without a
/// grouping clause — a parser invariant, not reachable from SQL text.
pub fn execute_query_with(
    query: &Query,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> Result<Table, QueryError> {
    let table = catalog
        .get(&query.from)
        .ok_or_else(|| QueryError::NoSuchTable(query.from.clone()))?;

    // Filter
    let mut schema = table.schema().clone();
    let mut rows: Vec<Tuple> = match &query.where_clause {
        Some(pred) => {
            expr::validate(pred, &schema)?;
            table
                .rows()
                .iter()
                .filter(|r| expr::eval(pred, &schema, r))
                .cloned()
                .collect()
        }
        None => table.rows().to_vec(),
    };

    // Group by / aggregate (the paper's Fig. 8 pre-pass shape). The
    // grouped output becomes the relation the skyline operates on —
    // matching the clause order of the paper's Fig. 3.
    let has_agg = query
        .select
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }));
    let grouped = !query.group_by.is_empty() || has_agg;
    if grouped {
        (schema, rows) = apply_group_by(&schema, rows, query)?;
    }
    if let Some(having) = &query.having {
        if !grouped {
            return Err(QueryError::Semantic(
                "HAVING requires GROUP BY or aggregates".into(),
            ));
        }
        expr::validate(having, &schema)?;
        rows.retain(|r| expr::eval(having, &schema, r));
    }

    // Skyline (over the possibly-grouped relation)
    if let Some(clause) = &query.skyline {
        rows = apply_skyline(rows, &schema, clause, opts)?;
    }

    // Order by
    if !query.order_by.is_empty() {
        let mut keys = Vec::with_capacity(query.order_by.len());
        for item in &query.order_by {
            let idx = schema
                .index_of(&item.column)
                .ok_or_else(|| QueryError::NoSuchColumn(item.column.clone()))?;
            keys.push((idx, item.desc));
        }
        rows.sort_by(|a, b| {
            for &(idx, desc) in &keys {
                let ord = a.get(idx).sql_cmp(b.get(idx)).unwrap_or(Ordering::Equal);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    // Limit
    if let Some(n) = query.limit {
        rows.truncate(n as usize);
    }

    // Project (grouping already produced the output shape)
    if query.select.is_empty() || grouped {
        Table::new(schema, rows).map_err(|e| QueryError::Semantic(e.to_string()))
    } else {
        let mut indices = Vec::with_capacity(query.select.len());
        let mut out_cols = Vec::with_capacity(query.select.len());
        for item in &query.select {
            let SelectItem::Column { name, .. } = item else {
                unreachable!("aggregates imply grouping");
            };
            let idx = schema
                .index_of(name)
                .ok_or_else(|| QueryError::NoSuchColumn(name.clone()))?;
            indices.push(idx);
            out_cols.push(skyline_relation::Column::new(
                item.output_name(),
                schema.column(idx).ty,
            ));
        }
        let out_schema = skyline_relation::Schema::new(out_cols)
            .map_err(|e| QueryError::Semantic(e.to_string()))?;
        let out_rows: Vec<Tuple> = rows.iter().map(|r| r.project(&indices)).collect();
        Table::new(out_schema, out_rows).map_err(|e| QueryError::Semantic(e.to_string()))
    }
}

/// Evaluate GROUP BY + aggregates: returns the grouped schema and rows in
/// select-list order. Every plain select column must appear in GROUP BY
/// (standard SQL restriction); with no GROUP BY, the whole input is one
/// group.
fn apply_group_by(
    schema: &skyline_relation::Schema,
    rows: Vec<Tuple>,
    query: &Query,
) -> Result<(skyline_relation::Schema, Vec<Tuple>), QueryError> {
    use skyline_relation::{Column, ColumnType, Schema};
    if query.select.is_empty() {
        return Err(QueryError::Semantic(
            "GROUP BY requires an explicit select list".into(),
        ));
    }
    let mut group_idx = Vec::with_capacity(query.group_by.len());
    for g in &query.group_by {
        group_idx.push(
            schema
                .index_of(g)
                .ok_or_else(|| QueryError::NoSuchColumn(g.clone()))?,
        );
    }
    // resolve select items
    enum Out {
        Group(usize),
        Agg(AggFunc, usize),
    }
    let mut outs = Vec::with_capacity(query.select.len());
    let mut out_cols = Vec::with_capacity(query.select.len());
    for item in &query.select {
        match item {
            SelectItem::Column { name, .. } => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| QueryError::NoSuchColumn(name.clone()))?;
                if !group_idx.contains(&idx) {
                    return Err(QueryError::Semantic(format!(
                        "column {name} must appear in GROUP BY or inside an aggregate"
                    )));
                }
                outs.push(Out::Group(idx));
                out_cols.push(Column::new(item.output_name(), schema.column(idx).ty));
            }
            SelectItem::Aggregate { func, column, .. } => {
                let idx = schema
                    .index_of(column)
                    .ok_or_else(|| QueryError::NoSuchColumn(column.clone()))?;
                let ty = match func {
                    AggFunc::Count => ColumnType::Int,
                    AggFunc::Avg => ColumnType::Float,
                    _ => schema.column(idx).ty,
                };
                outs.push(Out::Agg(*func, idx));
                out_cols.push(Column::new(item.output_name(), ty));
            }
        }
    }
    // partition rows into groups (insertion order preserved)
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        let key = group_idx
            .iter()
            .map(|&g| row.get(g).to_string())
            .collect::<Vec<_>>()
            .join("\u{1}");
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key);
                Vec::new()
            })
            .push(i);
    }
    if query.group_by.is_empty() && !rows.is_empty() {
        // single implicit group
        debug_assert_eq!(groups.len(), 1);
    }
    let agg_value = |func: AggFunc, idx: usize, members: &[usize]| -> Result<Value, QueryError> {
        let nums: Vec<f64> = members
            .iter()
            .filter_map(|&i| rows[i].get(idx).as_f64())
            .collect();
        if func == AggFunc::Count {
            return Ok(Value::Int(
                members
                    .iter()
                    .filter(|&&i| !rows[i].get(idx).is_null())
                    .count() as i64,
            ));
        }
        if nums.is_empty() {
            return Ok(Value::Null);
        }
        let is_int = members
            .iter()
            .all(|&i| rows[i].get(idx).as_i64().is_some() || rows[i].get(idx).is_null());
        Ok(match func {
            AggFunc::Max => {
                let m = nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if is_int {
                    Value::Int(m as i64)
                } else {
                    Value::Float(m)
                }
            }
            AggFunc::Min => {
                let m = nums.iter().cloned().fold(f64::INFINITY, f64::min);
                if is_int {
                    Value::Int(m as i64)
                } else {
                    Value::Float(m)
                }
            }
            AggFunc::Sum => {
                let s: f64 = nums.iter().sum();
                if is_int {
                    Value::Int(s as i64)
                } else {
                    Value::Float(s)
                }
            }
            AggFunc::Avg => Value::Float(nums.iter().sum::<f64>() / nums.len() as f64),
            AggFunc::Count => unreachable!("handled above"),
        })
    };
    let mut out_rows = Vec::with_capacity(groups.len());
    for key in &order {
        let members = &groups[key];
        let mut vals = Vec::with_capacity(outs.len());
        for out in &outs {
            match out {
                Out::Group(idx) => vals.push(rows[members[0]].get(*idx).clone()),
                Out::Agg(func, idx) => vals.push(agg_value(*func, *idx, members)?),
            }
        }
        out_rows.push(Tuple::new(vals));
    }
    let out_schema = Schema::new(out_cols).map_err(|e| QueryError::Semantic(e.to_string()))?;
    Ok((out_schema, out_rows))
}

fn apply_skyline(
    rows: Vec<Tuple>,
    schema: &skyline_relation::Schema,
    clause: &crate::ast::SkylineClause,
    opts: &ExecOptions,
) -> Result<Vec<Tuple>, QueryError> {
    let mut crit: Vec<(usize, bool)> = Vec::new(); // (col idx, is_min)
    let mut diff: Vec<usize> = Vec::new();
    for item in &clause.items {
        let idx = schema
            .index_of(&item.column)
            .ok_or_else(|| QueryError::NoSuchColumn(item.column.clone()))?;
        match item.directive {
            Directive::Min => crit.push((idx, true)),
            Directive::Max => crit.push((idx, false)),
            Directive::Diff => diff.push(idx),
        }
    }
    if crit.is_empty() {
        return Err(QueryError::Semantic(
            "SKYLINE OF needs at least one MIN/MAX criterion".into(),
        ));
    }
    // oriented key matrix
    let d = crit.len();
    let cancel = opts.cancel.as_ref();
    let mut data = Vec::with_capacity(rows.len() * d);
    for (rowno, row) in rows.iter().enumerate() {
        poll(cancel, rowno as u64).map_err(QueryError::from_exec)?;
        for &(idx, is_min) in &crit {
            let v = row.get(idx).as_f64().ok_or_else(|| {
                QueryError::Semantic(format!(
                    "row {rowno}: skyline column {} is not numeric",
                    schema.column(idx).name
                ))
            })?;
            data.push(if is_min { -v } else { v });
        }
    }
    // Large relations push down to the external paged engine (a no-op
    // fall-through when values aren't representable there or the chosen
    // algorithm has no external form for this query shape).
    if rows.len() >= opts.external_threshold {
        if let Some(keep) =
            crate::pushdown::external_skyline_with(schema, &rows, &crit, &diff, opts)?
        {
            return Ok(keep.into_iter().map(|i| rows[i].clone()).collect());
        }
    }

    // The in-memory working set — the oriented matrix — charges the
    // quota pool for as long as the filter runs.
    let _lease = match &opts.pool {
        Some(pool) => Some(
            pool.reserve(matrix_pages(rows.len(), d))
                .map_err(|e| QueryError::from_exec(ExecError::Buffer(e)))?,
        ),
        None => None,
    };
    let keys = KeyMatrix::new(d, data);

    let mut keep: Vec<usize> = if diff.is_empty() {
        mem_skyline(&keys, opts)?
    } else {
        // group rows by the rendered diff key, skyline per group
        let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            let gk = diff
                .iter()
                .map(|&idx| row.get(idx).to_string())
                .collect::<Vec<_>>()
                .join("\u{1}");
            groups.entry(gk).or_default().push(i);
        }
        let mut keep = Vec::new();
        for members in groups.values() {
            let sub = keys.select(members);
            keep.extend(mem_skyline(&sub, opts)?.iter().map(|&l| members[l]));
        }
        keep
    };
    keep.sort_unstable();
    Ok(keep.into_iter().map(|i| rows[i].clone()).collect())
}

/// Dispatch the in-memory skyline to the contract's algorithm. `Auto`
/// keeps the historical behaviour: the 1-D/2-D/3-D special cases where
/// they apply, entropy-presorted SFS otherwise.
fn mem_skyline(keys: &KeyMatrix, opts: &ExecOptions) -> Result<Vec<usize>, QueryError> {
    match opts.algo {
        SkylineAlgo::Auto => Ok(skyline_auto(keys).indices),
        SkylineAlgo::Sfs => Ok(algo::sfs(keys, MemSortOrder::Entropy).indices),
        SkylineAlgo::Bnl => Ok(algo::bnl(keys).indices),
        SkylineAlgo::DivideAndConquer => Ok(algo::divide_and_conquer(keys).indices),
        SkylineAlgo::Parallel => {
            parallel_skyline_cancellable(keys, opts.threads, opts.cancel.as_ref()).map_err(|e| {
                match e {
                    AlgoError::Cancelled { records_processed } => {
                        QueryError::Cancelled { records_processed }
                    }
                    other => QueryError::Exec(other.to_string()),
                }
            })
        }
        // Stratum s₀ of the strata decomposition is the skyline.
        SkylineAlgo::Strata => Ok(algo::strata(keys, 1, MemSortOrder::Entropy)
            .0
            .into_iter()
            .next()
            .unwrap_or_default()),
    }
}

/// Render the logical plan for `sql`, annotated with the skyline
/// cardinality estimate the optimizer would use.
///
/// # Errors
/// Parse failures and unknown tables or columns.
pub fn explain(sql: &str, catalog: &Catalog) -> Result<String, QueryError> {
    let q = parse(sql)?;
    let table = catalog
        .get(&q.from)
        .ok_or_else(|| QueryError::NoSuchTable(q.from.clone()))?;
    let n = table.len();
    let mut lines: Vec<String> = Vec::new();
    if let Some(limit) = q.limit {
        lines.push(format!("Limit({limit})"));
    }
    if !q.select.is_empty() {
        let items: Vec<String> = q.select.iter().map(SelectItem::output_name).collect();
        lines.push(format!("Project({})", items.join(", ")));
    }
    if !q.order_by.is_empty() {
        let items: Vec<String> = q
            .order_by
            .iter()
            .map(|o| format!("{} {}", o.column, if o.desc { "DESC" } else { "ASC" }))
            .collect();
        lines.push(format!("Sort({})", items.join(", ")));
    }
    if let Some(sky) = &q.skyline {
        let items: Vec<String> = sky
            .items
            .iter()
            .map(|i| {
                format!(
                    "{} {}",
                    i.column,
                    match i.directive {
                        Directive::Min => "MIN",
                        Directive::Max => "MAX",
                        Directive::Diff => "DIFF",
                    }
                )
            })
            .collect();
        let d = sky
            .items
            .iter()
            .filter(|i| i.directive != Directive::Diff)
            .count();
        let est = if d > 0 {
            expected_skyline_size(n, d)
        } else {
            0.0
        };
        lines.push(format!(
            "Skyline[SFS, presort=entropy, est≈{est:.0} rows]({})",
            items.join(", ")
        ));
    }
    if let Some(h) = &q.having {
        lines.push(format!("Having({})", render_expr(h)));
    }
    if !q.group_by.is_empty() {
        lines.push(format!("GroupBy({})", q.group_by.join(", ")));
    }
    if let Some(w) = &q.where_clause {
        lines.push(format!("Filter({})", render_expr(w)));
    }
    lines.push(format!("Scan({}, {n} rows)", q.from));

    let mut out = String::new();
    for (depth, line) in lines.iter().enumerate() {
        if depth == 0 {
            let _ = writeln!(out, "{line}");
        } else {
            let _ = writeln!(out, "{}└─ {line}", "   ".repeat(depth - 1));
        }
    }
    Ok(out)
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.clone(),
        Expr::Literal(Value::Str(s)) => format!("'{s}'"),
        Expr::Literal(v) => v.to_string(),
        Expr::Cmp { left, op, right } => {
            format!("{} {op} {}", render_expr(left), render_expr(right))
        }
        Expr::And(a, b) => format!("({} AND {})", render_expr(a), render_expr(b)),
        Expr::Or(a, b) => format!("({} OR {})", render_expr(a), render_expr(b)),
        Expr::Not(x) => format!("NOT {}", render_expr(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_relation::samples::{good_eats, GOOD_EATS_SKYLINE};

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.register("GoodEats", good_eats());
        c
    }

    #[test]
    fn figure_2_skyline_of_figure_1() {
        let out = execute(
            "SELECT * FROM GoodEats SKYLINE OF S MAX, F MAX, D MAX, price MIN",
            &cat(),
        )
        .unwrap();
        let names: Vec<&str> = out
            .rows()
            .iter()
            .map(|r| r.get(0).as_str().unwrap())
            .collect();
        assert_eq!(names, GOOD_EATS_SKYLINE);
    }

    #[test]
    fn removing_price_drops_fenton() {
        // paper: "If we were to remove price as one of our criteria, then
        // the Fenton & Pickle should be eliminated too."
        let out = execute(
            "SELECT restaurant FROM GoodEats SKYLINE OF S MAX, F MAX, D MAX",
            &cat(),
        )
        .unwrap();
        let names: Vec<&str> = out
            .rows()
            .iter()
            .map(|r| r.get(0).as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["Summer Moon", "Zakopane", "Yamanote"]);
    }

    #[test]
    fn where_below_skyline_changes_result() {
        // Skyline is holistic: filtering first genuinely changes the
        // answer. Without Zakopane, the Brearton Grill re-enters.
        let out = execute(
            "SELECT restaurant FROM GoodEats WHERE restaurant <> 'Zakopane' \
             SKYLINE OF S MAX, F MAX, D MAX, price MIN",
            &cat(),
        )
        .unwrap();
        let names: Vec<&str> = out
            .rows()
            .iter()
            .map(|r| r.get(0).as_str().unwrap())
            .collect();
        assert!(names.contains(&"Brearton Grill"));
    }

    #[test]
    fn order_by_and_limit() {
        let out = execute(
            "SELECT restaurant, price FROM GoodEats \
             SKYLINE OF S MAX, F MAX, D MAX, price MIN \
             ORDER BY price ASC LIMIT 2",
            &cat(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0].get(0).as_str(), Some("Fenton & Pickle"));
        assert_eq!(out.rows()[1].get(0).as_str(), Some("Summer Moon"));
    }

    #[test]
    fn diff_groups() {
        use skyline_relation::{tuple, ColumnType, Schema, Table};
        let schema = Schema::of(&[
            ("name", ColumnType::Str),
            ("cuisine", ColumnType::Str),
            ("food", ColumnType::Int),
        ]);
        let t = Table::new(
            schema,
            vec![
                tuple!["a", "thai", 20],
                tuple!["b", "thai", 25],
                tuple!["c", "bbq", 10],
            ],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("r", t);
        let out = execute("SELECT name FROM r SKYLINE OF food MAX, cuisine DIFF", &c).unwrap();
        let names: Vec<&str> = out
            .rows()
            .iter()
            .map(|r| r.get(0).as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn semantic_errors() {
        assert!(matches!(
            execute("SELECT * FROM nope SKYLINE OF a", &cat()),
            Err(QueryError::NoSuchTable(_))
        ));
        assert!(matches!(
            execute("SELECT * FROM GoodEats SKYLINE OF bogus MAX", &cat()),
            Err(QueryError::NoSuchColumn(_))
        ));
        assert!(matches!(
            execute("SELECT * FROM GoodEats SKYLINE OF restaurant MAX", &cat()),
            Err(QueryError::Semantic(_))
        ));
        assert!(matches!(
            execute("SELECT * FROM GoodEats SKYLINE OF restaurant DIFF", &cat()),
            Err(QueryError::Semantic(_))
        ));
    }

    #[test]
    fn explain_renders_plan() {
        let plan = explain(
            "SELECT restaurant FROM GoodEats WHERE price < 60 \
             SKYLINE OF S MAX, price MIN ORDER BY price LIMIT 3",
            &cat(),
        )
        .unwrap();
        assert!(plan.contains("Limit(3)"));
        assert!(plan.contains("Skyline[SFS"));
        assert!(plan.contains("Filter(price < 60)"));
        assert!(plan.contains("Scan(GoodEats, 6 rows)"));
        // the skyline node is annotated with a cardinality estimate
        assert!(plan.contains("est≈"));
    }

    #[test]
    fn figure_8_group_max_reduction() {
        use skyline_relation::{tuple, ColumnType, Schema, Table};
        // small-domain table: GROUP BY a1,a2 with MAX(a3) collapses each
        // group to its best a3 — the dimensional-reduction pre-pass
        let schema = Schema::of(&[
            ("a1", ColumnType::Int),
            ("a2", ColumnType::Int),
            ("a3", ColumnType::Int),
        ]);
        let t = Table::new(
            schema,
            vec![
                tuple![1, 1, 5],
                tuple![1, 1, 9],
                tuple![1, 2, 3],
                tuple![2, 1, 7],
                tuple![2, 1, 2],
            ],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("R", t);
        let out = execute(
            "SELECT a1, a2, MAX(a3) AS a3 FROM R GROUP BY a1, a2              ORDER BY a1 DESC, a2 DESC",
            &c,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().index_of("a3"), Some(2));
        let rows: Vec<Vec<i64>> = out
            .rows()
            .iter()
            .map(|r| r.values().iter().map(|v| v.as_i64().unwrap()).collect())
            .collect();
        assert_eq!(rows, vec![vec![2, 1, 7], vec![1, 2, 3], vec![1, 1, 9]]);

        // and the skyline of the reduced relation equals the skyline of
        // the full one (the optimization's correctness claim)
        let reduced_sky = execute(
            "SELECT a1, a2, MAX(a3) AS a3 FROM R GROUP BY a1, a2              SKYLINE OF a1 MAX, a2 MAX, a3 MAX",
            &c,
        )
        .unwrap();
        let full_sky = execute("SELECT * FROM R SKYLINE OF a1, a2, a3", &c).unwrap();
        let key = |t: &Table| {
            let mut v: Vec<Vec<i64>> = t
                .rows()
                .iter()
                .map(|r| r.values().iter().map(|x| x.as_i64().unwrap()).collect())
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&reduced_sky), key(&full_sky));
    }

    #[test]
    fn aggregates_without_group_by_collapse_to_one_row() {
        let out = execute(
            "SELECT COUNT(price) AS n, MIN(price) AS lo, MAX(price) AS hi, AVG(S) AS s              FROM GoodEats",
            &cat(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let r = &out.rows()[0];
        assert_eq!(r.get(0).as_i64(), Some(6));
        assert_eq!(r.get(1).as_f64(), Some(17.5));
        assert_eq!(r.get(2).as_f64(), Some(62.0));
        let avg_s = r.get(3).as_f64().unwrap();
        assert!((avg_s - 112.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn ungrouped_column_with_aggregate_is_error() {
        assert!(matches!(
            execute("SELECT restaurant, MAX(S) FROM GoodEats", &cat()),
            Err(QueryError::Semantic(_))
        ));
        assert!(matches!(
            execute(
                "SELECT restaurant, MAX(S) AS s FROM GoodEats GROUP BY price",
                &cat()
            ),
            Err(QueryError::Semantic(_))
        ));
    }

    #[test]
    fn group_by_without_select_list_is_error() {
        assert!(matches!(
            execute("SELECT * FROM GoodEats GROUP BY S", &cat()),
            Err(QueryError::Semantic(_))
        ));
    }

    #[test]
    fn having_filters_groups() {
        use skyline_relation::{tuple, ColumnType, Schema, Table};
        let schema = Schema::of(&[("g", ColumnType::Int), ("x", ColumnType::Int)]);
        let t = Table::new(
            schema,
            vec![tuple![1, 5], tuple![1, 9], tuple![2, 3], tuple![3, 8]],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("t", t);
        // Figure 3's clause order: group by … having … skyline of
        let out = execute(
            "SELECT g, MAX(x) AS best FROM t GROUP BY g HAVING best > 4              SKYLINE OF best MAX, g MIN ORDER BY g",
            &c,
        )
        .unwrap();
        let rows: Vec<Vec<i64>> = out
            .rows()
            .iter()
            .map(|r| r.values().iter().map(|v| v.as_i64().unwrap()).collect())
            .collect();
        // groups: (1,9), (3,8) pass HAVING; skyline keeps both
        // ((1,9) has better best AND smaller g → (3,8) dominated)
        assert_eq!(rows, vec![vec![1, 9]]);
        // HAVING without grouping is rejected
        assert!(matches!(
            execute("SELECT g FROM t HAVING g > 1", &c),
            Err(QueryError::Semantic(_))
        ));
    }

    #[test]
    fn count_ignores_nulls() {
        use skyline_relation::{ColumnType, Schema, Table, Tuple, Value};
        let schema = Schema::of(&[("g", ColumnType::Int), ("x", ColumnType::Int)]);
        let t = Table::new(
            schema,
            vec![
                Tuple::new(vec![Value::Int(1), Value::Int(5)]),
                Tuple::new(vec![Value::Int(1), Value::Null]),
                Tuple::new(vec![Value::Int(1), Value::Int(7)]),
            ],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("t", t);
        let out = execute("SELECT g, COUNT(x) AS n, SUM(x) AS s FROM t GROUP BY g", &c).unwrap();
        assert_eq!(out.rows()[0].get(1).as_i64(), Some(2));
        assert_eq!(out.rows()[0].get(2).as_i64(), Some(12));
    }

    #[test]
    fn plain_select_passthrough() {
        let out = execute("SELECT restaurant FROM GoodEats LIMIT 2", &cat()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().len(), 1);
    }
}
