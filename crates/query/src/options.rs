//! Per-query execution contracts: algorithm choice, page quotas,
//! cooperative cancellation, and spill-disk placement.
//!
//! [`ExecOptions`] is how a session layer (or a test harness) pins down
//! *how* a query may run: which skyline algorithm, how many buffer-pool
//! pages its working sets may charge, which [`CancelToken`] bounds its
//! lifetime, and which [`Disk`] receives external spills. The default
//! options reproduce the historical behaviour of [`crate::execute`]
//! exactly — auto-dispatched algorithm, no quota, no deadline, a
//! private in-memory spill disk.

use crate::pushdown::EXTERNAL_THRESHOLD;
use skyline_exec::CancelToken;
use skyline_storage::{BufferPool, Disk, PAGE_SIZE};
use std::sync::Arc;

/// Which skyline algorithm the executor runs.
///
/// All variants compute the same skyline; they differ in comparison
/// count, memory shape, and external behaviour. The quota sweep in the
/// repo's tests drives every variant to its typed
/// [`crate::QueryError::QuotaExceeded`] edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkylineAlgo {
    /// Dimensionality-based dispatch: the 1-D/2-D/3-D special cases
    /// where they apply, entropy-presorted SFS otherwise.
    #[default]
    Auto,
    /// Sort-Filter-Skyline with the entropy presort (the paper's
    /// algorithm).
    Sfs,
    /// Block-nested-loops (the unsorted baseline).
    Bnl,
    /// Divide-and-conquer (in-memory only; the external path falls back
    /// to the in-memory executor).
    DivideAndConquer,
    /// Partitioned parallel SFS.
    Parallel,
    /// The strata generalisation with `k = 1`: stratum s₀ *is* the
    /// skyline, so the result is identical — only the machinery differs.
    Strata,
}

/// Execution contract for one query.
///
/// Cloning is cheap: the pool and disk are shared handles, the token is
/// an `Arc` flag.
#[derive(Clone)]
pub struct ExecOptions {
    /// Algorithm choice (default [`SkylineAlgo::Auto`]).
    pub algo: SkylineAlgo,
    /// Page quota: when set, every skyline working set — the in-memory
    /// key matrix, the external sort arena, the filter window — is
    /// charged against this pool, and exhaustion surfaces as the typed
    /// [`crate::QueryError::QuotaExceeded`] with zero pages leaked.
    pub pool: Option<BufferPool>,
    /// Cooperative cancellation: polled during key encoding and wired
    /// into the external operators; a trip surfaces as
    /// [`crate::QueryError::Cancelled`] with partial progress.
    pub cancel: Option<CancelToken>,
    /// Row count at which the skyline leaves the in-memory executor for
    /// the paged external engine (default
    /// [`crate::pushdown::EXTERNAL_THRESHOLD`]).
    pub external_threshold: usize,
    /// External-sort arena budget in pages (default 1000, matching the
    /// historical pushdown).
    pub sort_pages: usize,
    /// Worker threads for [`SkylineAlgo::Parallel`]; `0` means one per
    /// available core.
    pub threads: usize,
    /// Disk receiving external spills. `None` (the default) uses a
    /// private in-memory disk that vanishes with the query; a session
    /// layer passes its shared (possibly fault-injected) disk here, and
    /// the executor then deletes every file it created on all paths.
    pub disk: Option<Arc<dyn Disk>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            algo: SkylineAlgo::Auto,
            pool: None,
            cancel: None,
            external_threshold: EXTERNAL_THRESHOLD,
            sort_pages: 1000,
            threads: 0,
            disk: None,
        }
    }
}

impl ExecOptions {
    /// Select the skyline algorithm.
    #[must_use]
    pub fn with_algo(mut self, algo: SkylineAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Charge all working sets against `pool`.
    #[must_use]
    pub fn with_pool(mut self, pool: BufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Bound the query's lifetime with `token`.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Override the external-engine row threshold.
    #[must_use]
    pub fn with_external_threshold(mut self, rows: usize) -> Self {
        self.external_threshold = rows;
        self
    }

    /// Override the external-sort arena budget.
    #[must_use]
    pub fn with_sort_pages(mut self, pages: usize) -> Self {
        self.sort_pages = pages;
        self
    }

    /// Set the worker-thread count for the parallel algorithm.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Spill to `disk` instead of a private in-memory disk.
    #[must_use]
    pub fn with_disk(mut self, disk: Arc<dyn Disk>) -> Self {
        self.disk = Some(disk);
        self
    }
}

/// Pages an `n × d` matrix of 8-byte oriented keys occupies — what the
/// in-memory executor charges against a quota pool. Never zero: even an
/// empty relation charges the one page its bookkeeping touches.
#[must_use]
pub fn matrix_pages(n: usize, d: usize) -> usize {
    (n * d * 8).div_ceil(PAGE_SIZE).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_historical_behaviour() {
        let opts = ExecOptions::default();
        assert_eq!(opts.algo, SkylineAlgo::Auto);
        assert!(opts.pool.is_none() && opts.cancel.is_none() && opts.disk.is_none());
        assert_eq!(opts.external_threshold, EXTERNAL_THRESHOLD);
        assert_eq!(opts.sort_pages, 1000);
    }

    #[test]
    fn matrix_pages_rounds_up_and_never_zero() {
        assert_eq!(matrix_pages(0, 5), 1);
        assert_eq!(matrix_pages(512, 1), 1); // 4096 bytes exactly
        assert_eq!(matrix_pages(513, 1), 2);
    }
}
