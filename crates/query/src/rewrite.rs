//! The paper's Figure 5: rewriting a `SKYLINE OF` query into plain SQL
//! with `EXCEPT` — what a user would have to write today, and why an
//! algebraic operator is needed (the rewrite is a θ-self-join no optimizer
//! can save).
//!
//! This module both *generates* that SQL text (for documentation /
//! engines that speak full SQL) and *evaluates* the rewrite semantics
//! directly as an oracle: the θ-join's dominated-set subtraction, computed
//! naively, exactly as the rewritten query would be.

use crate::ast::{Directive, Query};
use crate::catalog::Catalog;
use crate::error::QueryError;
use skyline_relation::Table;
use std::cmp::Ordering;

/// Render the Figure-5 `EXCEPT` rewrite of `query` as SQL text.
///
/// # Errors
/// Fails if the query has no `SKYLINE OF` clause.
pub fn to_except_sql(query: &Query) -> Result<String, QueryError> {
    let clause = query
        .skyline
        .as_ref()
        .ok_or_else(|| QueryError::Semantic("query has no SKYLINE OF clause".into()))?;
    let table = &query.from;
    let plain: Option<Vec<&str>> = query
        .select
        .iter()
        .map(|i| match i {
            crate::ast::SelectItem::Column { name, alias: None } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let Some(plain) = plain else {
        return Err(QueryError::Semantic(
            "the Figure-5 rewrite is defined for plain column select lists".into(),
        ));
    };
    let cols = if plain.is_empty() {
        "*".to_owned()
    } else {
        plain.join(", ")
    };
    let mut weak = Vec::new();
    let mut strict = Vec::new();
    let mut diffs = Vec::new();
    for item in &clause.items {
        let c = &item.column;
        match item.directive {
            // orient MIN criteria by flipping the inequality
            Directive::Max => {
                weak.push(format!("T.{c} <= D.{c}"));
                strict.push(format!("T.{c} < D.{c}"));
            }
            Directive::Min => {
                weak.push(format!("T.{c} >= D.{c}"));
                strict.push(format!("T.{c} > D.{c}"));
            }
            Directive::Diff => diffs.push(format!("T.{c} = D.{c}")),
        }
    }
    let mut cond = weak.join(" AND ");
    cond.push_str(" AND (");
    cond.push_str(&strict.join(" OR "));
    cond.push(')');
    for d in &diffs {
        cond.push_str(" AND ");
        cond.push_str(d);
    }
    Ok(format!(
        "SELECT {cols} FROM {table}\nEXCEPT\nSELECT {cols_t} FROM {table} T, {table} D\n  WHERE {cond}",
        cols_t = if plain.is_empty() {
            "T.*".to_owned()
        } else {
            plain
                .iter()
                .map(|c| format!("T.{c}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    ))
}

/// Evaluate the rewrite's semantics directly: the θ-self-join computing
/// dominated tuples, subtracted from the table. Quadratic by construction;
/// this is the oracle the efficient operator must agree with.
///
/// # Errors
/// A query without a `SKYLINE OF` clause, or an unknown table.
pub fn eval_except_semantics(query: &Query, catalog: &Catalog) -> Result<Table, QueryError> {
    let clause = query
        .skyline
        .as_ref()
        .ok_or_else(|| QueryError::Semantic("query has no SKYLINE OF clause".into()))?;
    let table = catalog
        .get(&query.from)
        .ok_or_else(|| QueryError::NoSuchTable(query.from.clone()))?;
    let schema = table.schema();

    let mut crit: Vec<(usize, bool)> = Vec::new();
    let mut diff: Vec<usize> = Vec::new();
    for item in &clause.items {
        let idx = schema
            .index_of(&item.column)
            .ok_or_else(|| QueryError::NoSuchColumn(item.column.clone()))?;
        match item.directive {
            Directive::Min => crit.push((idx, true)),
            Directive::Max => crit.push((idx, false)),
            Directive::Diff => diff.push(idx),
        }
    }
    let rows = table.rows();
    let dominated = |t: usize, d: usize| -> bool {
        // per Figure 5: D weakly better on all criteria, strictly on one,
        // equal on all diff attributes
        for &g in &diff {
            if rows[t].get(g).sql_cmp(rows[d].get(g)) != Some(Ordering::Equal) {
                return false;
            }
        }
        let mut strictly = false;
        for &(idx, is_min) in &crit {
            let (tv, dv) = (rows[t].get(idx), rows[d].get(idx));
            let ord = match tv.sql_cmp(dv) {
                Some(o) => o,
                None => return false,
            };
            let ord = if is_min { ord.reverse() } else { ord };
            match ord {
                Ordering::Greater => return false,
                Ordering::Less => strictly = true,
                Ordering::Equal => {}
            }
        }
        strictly
    };
    let keep: Vec<_> = (0..rows.len())
        .filter(|&t| !(0..rows.len()).any(|d| d != t && dominated(t, d)))
        .map(|i| rows[i].clone())
        .collect();
    Table::new(schema.clone(), keep).map_err(|e| QueryError::Semantic(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::execute_query;
    use skyline_relation::samples::good_eats;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.register("GoodEats", good_eats());
        c
    }

    #[test]
    fn renders_figure_5_shape() {
        let q = parse("SELECT * FROM GoodEats SKYLINE OF S MAX, price MIN").unwrap();
        let sql = to_except_sql(&q).unwrap();
        assert!(sql.contains("EXCEPT"));
        assert!(sql.contains("T.S <= D.S"));
        assert!(sql.contains("T.price >= D.price"));
        assert!(sql.contains("T.S < D.S OR T.price > D.price"));
    }

    #[test]
    fn diff_becomes_equality() {
        let q = parse("SELECT a FROM t SKYLINE OF a MAX, c DIFF").unwrap();
        let sql = to_except_sql(&q).unwrap();
        assert!(sql.contains("T.c = D.c"));
        assert!(sql.contains("SELECT T.a FROM t T, t D"));
    }

    #[test]
    fn oracle_agrees_with_operator() {
        let q = parse("SELECT * FROM GoodEats SKYLINE OF S MAX, F MAX, D MAX, price MIN").unwrap();
        let via_operator = execute_query(&q, &cat()).unwrap();
        let via_rewrite = eval_except_semantics(&q, &cat()).unwrap();
        assert_eq!(via_operator.len(), via_rewrite.len());
        // same rows (both preserve table order)
        assert_eq!(via_operator.rows(), via_rewrite.rows());
    }

    #[test]
    fn no_skyline_clause_is_error() {
        let q = parse("SELECT * FROM t").unwrap();
        assert!(to_except_sql(&q).is_err());
    }
}
