//! Abstract syntax for the `SKYLINE OF` dialect.

use skyline_relation::Value;

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projection list; empty means `*`.
    pub select: Vec<SelectItem>,
    /// Source table name.
    pub from: String,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY columns (requires every plain select item to be grouped
    /// and permits aggregate items — the paper's Figure 8 query shape).
    pub group_by: Vec<String>,
    /// HAVING predicate over the grouped output (referencing output
    /// column names/aliases) — Figure 3 lists it between GROUP BY and
    /// SKYLINE OF.
    pub having: Option<Expr>,
    /// Optional SKYLINE OF clause.
    pub skyline: Option<SkylineClause>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT.
    pub limit: Option<u64>,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A plain column reference, with an optional `AS` alias.
    Column {
        /// Column name.
        name: String,
        /// Output alias.
        alias: Option<String>,
    },
    /// An aggregate over a column, with an optional `AS` alias.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated column.
        column: String,
        /// Output alias.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Output column name (alias, or the underlying name).
    pub fn output_name(&self) -> String {
        match self {
            SelectItem::Column { name, alias } => alias.clone().unwrap_or_else(|| name.clone()),
            SelectItem::Aggregate {
                func,
                column,
                alias,
            } => alias
                .clone()
                .unwrap_or_else(|| format!("{}({column})", func.name())),
        }
    }
}

/// Aggregate functions over numeric columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Count of non-null values.
    Count,
    /// Sum.
    Sum,
    /// Arithmetic mean.
    Avg,
}

impl AggFunc {
    /// Lower-case SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Max => "max",
            AggFunc::Min => "min",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
        }
    }
}

/// One `SKYLINE OF` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkylineClause {
    /// Criteria in clause order.
    pub items: Vec<SkylineItem>,
}

/// One `col MIN|MAX|DIFF` item. The paper's default directive is MAX.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkylineItem {
    /// Column name.
    pub column: String,
    /// The directive.
    pub directive: Directive,
}

/// Skyline directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Prefer small values.
    Min,
    /// Prefer large values (default).
    Max,
    /// Compute the skyline per distinct value.
    Diff,
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderItem {
    /// Column name.
    pub column: String,
    /// Descending?
    pub desc: bool,
}

/// Predicate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Comparison.
    Cmp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}
