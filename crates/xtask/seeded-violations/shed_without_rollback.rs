//! Seeded violation: **resource-pairing**.
//!
//! Error-path pairing failures on the admission fast path, mapped into
//! a server-scoped path by the self-tests. `submit_sloppy` wins a gate
//! credit and opens the books, then returns `Overloaded` on queue
//! rejection without releasing the credit or rolling the counters
//! back: one leaked credit and two drifting counters per shed request.
//! `charge_sloppy` discards a `BufferPool` lease the moment it is
//! granted, so the page charge it represents covers nothing.
//! `submit_paired` and `charge_bound` are the compliant twins.

/// Seeded: credit + both counter bumps leak on the push-failure path.
fn submit_sloppy(&self, job: Job) -> Result<(), ServerError> {
    match self.gate.acquire_timeout(self.cfg.admission_timeout) {
        TryAcquire::Granted => {}
        TryAcquire::Exhausted => {
            return Err(ServerError::Overloaded { retry_after_ms: 10 });
        }
        TryAcquire::Closed => {
            return Err(ServerError::Shutdown);
        }
    }
    {
        let mut st = lock(&self.stats);
        st.admitted += 1;
        st.in_flight += 1;
    }
    if self.jobs.push_deadline(job, self.deadline).is_err() {
        return Err(ServerError::Overloaded { retry_after_ms: 10 });
    }
    Ok(())
}

/// Compliant twin: the push-failure arm releases the credit and calls
/// the rollback helper before surfacing the shed.
fn submit_paired(&self, job: Job) -> Result<(), ServerError> {
    match self.gate.acquire_timeout(self.cfg.admission_timeout) {
        TryAcquire::Granted => {}
        TryAcquire::Exhausted => {
            return Err(ServerError::Overloaded { retry_after_ms: 10 });
        }
        TryAcquire::Closed => {
            return Err(ServerError::Shutdown);
        }
    }
    {
        let mut st = lock(&self.stats);
        st.admitted += 1;
        st.in_flight += 1;
    }
    if self.jobs.push_deadline(job, self.deadline).is_err() {
        self.gate.release();
        self.unadmit();
        return Err(ServerError::Overloaded { retry_after_ms: 10 });
    }
    Ok(())
}

/// Rollback helper the call graph resolves for `submit_paired`.
fn unadmit(&self) {
    let mut st = lock(&self.stats);
    st.admitted -= 1;
    st.in_flight -= 1;
}

/// Seeded: the lease from `reserve` is dropped by this very statement.
fn charge_sloppy(&self, pages: u64) -> Result<(), ServerError> {
    self.pool.reserve(pages)?;
    run_query(pages);
    Ok(())
}

/// Compliant twin: the lease is bound, so the page charge lives for
/// exactly as long as the work it covers.
fn charge_bound(&self, pages: u64) -> Result<(), ServerError> {
    let _lease = self.pool.reserve(pages)?;
    run_query(pages);
    Ok(())
}
