//! Seeded violation: **blocking-under-lock**, timed-wait twin.
//!
//! `wait_timeout` bounds how long a condvar sleep can last, but it still
//! releases only the guard it is handed. Sleeping on it while a *second*
//! mutex guard is held keeps that other lock taken for the whole grace
//! period — the deadline bounds the stall, it does not remove it, and a
//! waiter that loops re-arms the stall forever. The self-test asserts
//! the foreign-guard site is flagged (directly and through a uniquely
//! named callee) while the condvar-protocol twin — a timed wait that
//! names and hence releases its own guard — stays clean.

/// Timed wait with the ledger guard still held — the seeded bug: the
/// wait releases `st` but `ledger` sleeps locked for the grace period.
pub fn await_slot(&self) -> bool {
    let ledger = lock(&self.ledger);
    let mut st = lock(&self.state);
    loop {
        if st.available > 0 {
            st.available -= 1;
            ledger.admitted += 1;
            return true;
        }
        st = wait_timeout(&self.released, st, self.grace).0;
    }
}

/// A uniquely named helper whose body parks on a timed wait.
pub fn park_for_grace(&self) {
    let mut st = lock(&self.state);
    st = wait_timeout(&self.released, st, self.grace).0;
    drop(st);
}

/// Interprocedural seeded bug: the timed wait hides behind the callee.
pub fn drain_with_grace(&self) {
    let ledger = lock(&self.ledger);
    park_for_grace(self);
    drop(ledger);
}

/// The compliant twin: the timed wait names (and so releases) the only
/// guard held — the `Backpressure::acquire_timeout` protocol shape.
pub fn await_slot_clean(&self) -> bool {
    let mut st = lock(&self.state);
    loop {
        if st.closed {
            return false;
        }
        if st.available > 0 {
            st.available -= 1;
            return true;
        }
        st = wait_timeout(&self.released, st, self.grace).0;
    }
}
