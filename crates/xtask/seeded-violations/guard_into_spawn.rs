//! Seeded violation: **guard-into-spawn**.
//!
//! A `MutexGuard` is still held when worker threads are spawned: either
//! it moves into the closure (the lock lives on another thread for the
//! closure's whole life) or the spawner keeps it while every worker
//! contends — a stall or deadlock either way. The self-test asserts the
//! spawn site is flagged.

/// Fan work out to scoped workers while holding the job-list guard —
/// the seeded bug.
pub fn fan_out(&self) {
    let jobs = lock(&self.jobs);
    std::thread::scope(|s| {
        s.spawn(move || consume(jobs));
    });
}

/// The compliant twin: snapshot under the lock, drop, then spawn.
pub fn fan_out_clean(&self) {
    let snapshot = {
        let jobs = lock(&self.jobs);
        jobs.clone()
    };
    std::thread::scope(|s| {
        s.spawn(move || consume(snapshot));
    });
}
