//! Seeded violation: **books-before-visibility**.
//!
//! Dominance violations around the admission books, mapped into a
//! server-scoped path by the self-tests. `finish_query` publishes the
//! terminal `Msg::End` before settling the counters — a client that
//! sees end-of-stream and immediately polls `/stats` reads books that
//! still show the query in flight. `submit_rushed` inserts into the
//! work queue before bumping `admitted` — a fast worker can settle
//! books that were never opened.

/// Seeded: terminal publish happens before the settlement block.
fn finish_query(job: &Job, verdict: Verdict) {
    let terminal = terminal_of(verdict);
    let _ = job.results.push_deadline(Msg::End(terminal), job.grace);
    let mut st = lock(&job.stats);
    st.in_flight -= 1;
    st.completed += 1;
}

/// Compliant twin: settle in a closed lock scope, then publish.
fn finish_query_settled(job: &Job, verdict: Verdict) {
    let terminal = terminal_of(verdict);
    {
        let mut st = lock(&job.stats);
        st.in_flight -= 1;
        st.completed += 1;
    }
    let _ = job.results.push_deadline(Msg::End(terminal), job.grace);
}

/// Seeded: queue insertion precedes the `admitted` bump.
fn submit_rushed(&self, job: Job) {
    self.jobs.push(job);
    let mut st = lock(&self.stats);
    st.admitted += 1;
    st.in_flight += 1;
}

/// Compliant twin: open the books, then make the job visible.
fn submit_booked(&self, job: Job) {
    {
        let mut st = lock(&self.stats);
        st.admitted += 1;
        st.in_flight += 1;
    }
    self.jobs.push(job);
}
