//! Seeded violation: **cancel-liveness** (path-sensitive `continue`).
//!
//! The loop in `drain_skipping` does poll its `CancelToken` — the flat
//! whole-loop scan is satisfied — but the tombstone `continue` jumps
//! back to the header without ever reaching the poll. A stream of
//! tombstones starves cancellation indefinitely. The CFG recheck walks
//! the loop body edge-by-edge, stops at poll sites, and flags any
//! `continue` still reachable. `drain_polled` hoists the poll above
//! the skip and is clean on every path.

/// Seeded: the `continue` edge bypasses the poll.
fn drain_skipping(src: &mut Stream, token: &CancelToken, budget: usize) -> Result<(), AlgoError> {
    let mut n = 0;
    while let Some(r) = src.next() {
        if r.is_tombstone() {
            continue;
        }
        poll(Some(token), n)?;
        n += 1;
        consume(r, budget);
    }
    Ok(())
}

/// Compliant twin: poll first, then skip — every iteration observes
/// cancellation before any record-dependent branching.
fn drain_polled(src: &mut Stream, token: &CancelToken, budget: usize) -> Result<(), AlgoError> {
    let mut n = 0;
    while let Some(r) = src.next() {
        poll(Some(token), n)?;
        n += 1;
        if r.is_tombstone() {
            continue;
        }
        consume(r, budget);
    }
    Ok(())
}
