//! Seeded violation: **page-leak** (CFG upgrade).
//!
//! Two planted leaks with compliant twins, mapped into a leak-scoped
//! path by the self-tests. `spill_all` carries an owned `HeapFile`
//! across fallible `?` statements — the classic error-path orphan.
//! `route` consumes the file on only one branch of an `if`: the old
//! statement-level scan saw the consumption in the composite statement
//! text and went quiet, but the CFG join knows the fallthrough path
//! reaches the scope end with the obligation still live.

/// Seeded: `out` is live across `w.push(r)?` — pages orphan on error.
fn spill_all(disk: Arc<dyn Disk>, rs: &[Record]) -> Result<HeapFile, StorageError> {
    let mut out = HeapFile::create(disk, 100)?;
    let mut w = HeapWriter::new(&mut out);
    for r in rs {
        w.push(r)?;
    }
    w.finish()?;
    Ok(out)
}

/// Compliant twin: temp-first (RAII `Drop` deletes on any unwind or
/// error), persisted only after every fallible step succeeded.
fn spill_all_clean(disk: Arc<dyn Disk>, rs: &[Record]) -> Result<HeapFile, StorageError> {
    let mut out = HeapFile::create_temp(disk, 100)?;
    let mut w = HeapWriter::new(&mut out);
    for r in rs {
        w.push(r)?;
    }
    w.finish()?;
    out.persist();
    Ok(out)
}

/// Seeded: consumed only when `keep` — the `!keep` path falls through
/// to the scope end with `out` unconsumed. Path-sensitive: every
/// statement individually looks fine.
fn route(disk: Arc<dyn Disk>, keep: bool) -> Result<(), StorageError> {
    let out = HeapFile::create(disk, 100);
    if keep {
        registry.adopt(out);
    }
    Ok(())
}

/// Compliant twin: both branches discharge the obligation.
fn route_clean(disk: Arc<dyn Disk>, keep: bool) -> Result<(), StorageError> {
    let out = HeapFile::create(disk, 100);
    if keep {
        registry.adopt(out);
        return Ok(());
    }
    out.delete();
    Ok(())
}
