//! Seeded violation: **counter-conservation**.
//!
//! A miniature `SkylineMetrics` with an `orphans` counter that never
//! reaches `MetricsSnapshot` (or the snapshot/absorb/reset plumbing),
//! and a `window_inserts` statistic the gate report drops. The
//! self-test maps this file to `crates/core/src/metrics.rs` next to a
//! stub gate sink and asserts both holes are flagged.

pub struct SkylineMetrics {
    comparisons: AtomicU64,
    window_inserts: AtomicU64,
    orphans: AtomicU64,
}

pub struct MetricsSnapshot {
    pub comparisons: u64,
    pub window_inserts: u64,
}

impl SkylineMetrics {
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            comparisons: self.comparisons.load(Ordering::Relaxed),
            window_inserts: self.window_inserts.load(Ordering::Relaxed),
        }
    }

    pub fn absorb(&self, s: &MetricsSnapshot) {
        self.comparisons.fetch_add(s.comparisons, Ordering::Relaxed);
        self.window_inserts.fetch_add(s.window_inserts, Ordering::Relaxed);
    }

    pub fn reset(&self) {
        self.comparisons.store(0, Ordering::Relaxed);
        self.window_inserts.store(0, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    pub fn plus(&self, o: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            comparisons: self.comparisons + o.comparisons,
            window_inserts: self.window_inserts + o.window_inserts,
        }
    }
}
