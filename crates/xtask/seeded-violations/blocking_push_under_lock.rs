//! Seeded violation: **blocking-under-lock**.
//!
//! `WorkQueue::push` on a bounded queue blocks until a consumer makes
//! room. Calling it while a mutex guard is held parks the thread with
//! the lock taken: if the consumer needs that same lock to drain the
//! queue, the system deadlocks; otherwise everything behind the lock
//! stalls for a full queue's worth of time. The self-test asserts the
//! push site is flagged, plus the interprocedural variant where the
//! blocking call hides one (uniquely named) callee deep.

/// Feed a bounded queue while holding the stats guard — the seeded bug.
pub fn enqueue_all(q: &WorkQueue<Job>, jobs: Vec<Job>, stats: &Mutex<Stats>) {
    let mut st = lock(&stats);
    for job in jobs {
        q.push(job);
        st.pushed += 1;
    }
}

/// A uniquely named helper that blocks in its body (condvar wait).
pub fn admit_one(&self) -> bool {
    let mut st = lock(&self.state);
    loop {
        if st.available > 0 {
            st.available -= 1;
            return true;
        }
        st = wait(&self.released, st);
    }
}

/// Interprocedural seeded bug: the blocking call is behind `admit_one`.
pub fn throttle(&self) {
    let ledger = lock(&self.ledger);
    admit_one(self);
    drop(ledger);
}

/// The compliant twin: drop the guard before blocking.
pub fn enqueue_all_clean(q: &WorkQueue<Job>, jobs: Vec<Job>, stats: &Mutex<Stats>) {
    let n = jobs.len();
    for job in jobs {
        q.push(job);
    }
    let mut st = lock(&stats);
    st.pushed += n;
}
