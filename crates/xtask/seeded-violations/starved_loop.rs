//! Seeded violation: **cancel-liveness**.
//!
//! A record-driven loop in cancellation-bearing code that never polls
//! the token — the PR 2 "poll every 256 records" contract is starved:
//! a cancelled query keeps scanning until the input runs dry. The
//! self-test maps this file under `crates/core/src/external/` and
//! asserts exactly this loop is flagged.

/// Drain an operator to completion, ignoring the cancel token it was
/// handed — the seeded bug.
pub fn drain(op: &mut dyn Operator, cancel: Option<&CancelToken>) -> Result<u64, ExecError> {
    let mut n = 0u64;
    while let Some(r) = op.next()? {
        n += consume(r);
    }
    let _ = cancel;
    Ok(n)
}

/// The compliant twin: same loop, polled — must stay clean.
pub fn drain_polled(op: &mut dyn Operator, cancel: Option<&CancelToken>) -> Result<u64, ExecError> {
    let mut n = 0u64;
    while let Some(r) = op.next()? {
        poll(cancel, n)?;
        n += consume(r);
    }
    Ok(n)
}
