//! SARIF 2.1.0 rendering of lint findings, for GitHub code scanning.
//!
//! Hand-rolled JSON (the workspace is dependency-free): a single run
//! with one rule per distinct lint id and one result per finding.
//! Uploaded by CI via `github/codeql-action/upload-sarif`, which turns
//! each result into an inline PR annotation at `file:line`.

use crate::lints::Finding;
use std::collections::BTreeMap;

/// Per-lint one-line help text, embedded as the rule description and
/// printed by `cargo xtask analyze --explain <rule-id>`.
pub fn rule_help(lint: &str) -> &'static str {
    match lint {
        "hot-path-panic" => {
            "No unwrap/expect/panic-family calls in operator hot paths; return typed errors."
        }
        "raw-io" => "No std::fs I/O outside the io_stats-counted disk layer.",
        "doc-sections" => "Public fallible APIs document `# Errors` / `# Panics`.",
        "page-leak" => {
            "Owned HeapFiles must reach persist/mark_temp/delete/a consumer on every `?`/return path."
        }
        "result-discard" => "Typed StorageError/ExecError Results must not be discarded or swallowed.",
        "lock-order" => "Lock acquisition order must be acyclic across the workspace.",
        "lock-across-io" => "Mutex guards must not be held across disk I/O calls.",
        "cancel-liveness" => {
            "Record-driven loops on cancellable paths must poll CancelToken, directly or via a callee."
        }
        "guard-into-spawn" => "Mutex guards must not be held (or captured) at thread spawn sites.",
        "blocking-under-lock" => {
            "No bounded-queue pushes, condvar waits, or blocking callees while a mutex guard is held."
        }
        "counter-conservation" => {
            "Every SkylineMetrics counter must survive snapshot, absorb, reset, merge, and report sinks."
        }
        "resource-pairing" => {
            "Acquired credits, admission-counter bumps, and pool leases must be released, rolled back, or Drop-carried on every error exit path."
        }
        "books-before-visibility" => {
            "Counter settlement must dominate the terminal Msg::End publish, and the admitted bump must dominate queue insertion."
        }
        _ => "Workspace lint.",
    }
}

/// Every rule id `--explain` accepts, in rendering order.
pub const RULE_IDS: &[&str] = &[
    "hot-path-panic",
    "raw-io",
    "doc-sections",
    "page-leak",
    "result-discard",
    "lock-order",
    "lock-across-io",
    "cancel-liveness",
    "guard-into-spawn",
    "blocking-under-lock",
    "counter-conservation",
    "resource-pairing",
    "books-before-visibility",
];

/// Render `findings` as a SARIF 2.1.0 document.
pub fn render(findings: &[Finding]) -> String {
    let mut rules: BTreeMap<&str, usize> = findings.iter().map(|f| (f.lint, 0)).collect();
    for (i, (_, idx)) in rules.iter_mut().enumerate() {
        *idx = i;
    }
    let mut out = String::with_capacity(1024 + findings.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"skyline-xtask-analyze\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (lint, _)) in rules.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_string(lint),
            json_string(rule_help(lint)),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"ruleIndex\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_string(f.lint),
            rules[f.lint],
            json_string(&f.excerpt),
            json_string(&f.file),
            f.line,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                lint: "page-leak",
                file: "crates/exec/src/op.rs".to_string(),
                line: 42,
                excerpt: "owned HeapFile `out` leaks on \"error\" path".to_string(),
            },
            Finding {
                lint: "lock-order",
                file: "crates/storage/src/buffer.rs".to_string(),
                line: 7,
                excerpt: "cycle: a \\ b".to_string(),
            },
        ]
    }

    #[test]
    fn document_shape_and_counts() {
        let doc = render(&sample());
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert_eq!(doc.matches("\"ruleId\"").count(), 2);
        assert_eq!(doc.matches("\"shortDescription\"").count(), 2, "two rules");
        assert!(doc.contains("\"startLine\": 42"));
        assert!(doc.contains("crates/exec/src/op.rs"));
    }

    #[test]
    fn json_escaping_is_applied() {
        let doc = render(&sample());
        assert!(doc.contains("\\\"error\\\""), "quotes escaped");
        assert!(doc.contains("a \\\\ b"), "backslash escaped");
    }

    #[test]
    fn braces_and_brackets_balance() {
        let doc = render(&sample());
        let open = doc.matches('{').count() - doc.matches("\\u{").count();
        assert_eq!(open, doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        // structural quote count is even (escaped quotes excluded)
        let quotes = doc.replace("\\\"", "").matches('"').count();
        assert_eq!(quotes % 2, 0);
    }

    #[test]
    fn every_registered_rule_id_has_real_help() {
        for id in RULE_IDS {
            assert_ne!(rule_help(id), "Workspace lint.", "{id} lacks help text");
        }
    }

    #[test]
    fn concurrency_contract_lints_have_distinct_rules() {
        let lints = [
            "cancel-liveness",
            "guard-into-spawn",
            "blocking-under-lock",
            "counter-conservation",
            "resource-pairing",
            "books-before-visibility",
        ];
        let findings: Vec<Finding> = lints
            .iter()
            .map(|l| Finding {
                lint: l,
                file: "crates/core/src/lib.rs".to_string(),
                line: 1,
                excerpt: "x".to_string(),
            })
            .collect();
        let doc = render(&findings);
        for l in lints {
            assert!(doc.contains(&format!("\"id\": \"{l}\"")), "{l} rule id");
        }
        // each new lint carries its own help text, not the fallback
        assert_eq!(doc.matches("Workspace lint.").count(), 0);
    }

    #[test]
    fn empty_findings_still_render_a_valid_run() {
        let doc = render(&[]);
        assert!(doc.contains("\"results\": [\n      ]"));
        assert!(doc.contains("skyline-xtask-analyze"));
    }
}
