//! Self-tests for the interprocedural concurrency-contract lints,
//! driven by the fixtures in `seeded-violations/`.
//!
//! Each fixture file plants exactly one family of violation next to a
//! compliant twin, and the tests assert both directions: the seeded
//! bug is caught, and the twin stays clean. The fixtures live outside
//! `src/` (and [`crate::source_files`] skips the directory) so the
//! deliberate violations never leak into the real baseline; here they
//! are mapped onto in-scope workspace paths so the path-scoped lints
//! (cancel-liveness, counter-conservation, resource-pairing,
//! books-before-visibility) see them as production code. A final test
//! runs the analyzer over the real workspace and asserts the
//! concurrency-contract lint families report nothing — the clean-tree
//! guarantee the ratchet depends on.

use crate::analyze::analyze_files;
use crate::lints::Finding;
use crate::scan::CleanSource;

const STARVED_LOOP: &str = include_str!("../seeded-violations/starved_loop.rs");
const GUARD_INTO_SPAWN: &str = include_str!("../seeded-violations/guard_into_spawn.rs");
const BLOCKING_PUSH: &str = include_str!("../seeded-violations/blocking_push_under_lock.rs");
const TIMEOUT_WAIT: &str = include_str!("../seeded-violations/timeout_wait_under_lock.rs");
const ORPHAN_COUNTER: &str = include_str!("../seeded-violations/orphan_counter.rs");
const LEAK_ON_ERROR: &str = include_str!("../seeded-violations/leak_on_error_path.rs");
const PUBLISH_BEFORE_SETTLE: &str = include_str!("../seeded-violations/publish_before_settle.rs");
const POLL_SKIPPING_CONTINUE: &str = include_str!("../seeded-violations/poll_skipping_continue.rs");
const SHED_WITHOUT_ROLLBACK: &str = include_str!("../seeded-violations/shed_without_rollback.rs");

fn run(files: &[(&str, &str)]) -> Vec<Finding> {
    let cleaned: Vec<(String, CleanSource)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), CleanSource::new(s)))
        .collect();
    analyze_files(&cleaned)
}

fn of<'a>(findings: &'a [Finding], lint: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.lint == lint).collect()
}

#[test]
fn starved_loop_is_flagged_and_polled_twin_is_clean() {
    let findings = run(&[("crates/core/src/external/seeded_starved.rs", STARVED_LOOP)]);
    let hits = of(&findings, "cancel-liveness");
    assert_eq!(
        hits.len(),
        1,
        "expected exactly the seeded loop: {findings:?}"
    );
    assert!(
        hits[0].excerpt.contains("`drain`"),
        "finding should name the starved fn: {hits:?}"
    );
    assert!(
        !hits.iter().any(|f| f.excerpt.contains("`drain_polled`")),
        "the polled twin must stay clean: {hits:?}"
    );
}

#[test]
fn guard_into_spawn_is_flagged_and_snapshot_twin_is_clean() {
    let findings = run(&[("crates/exec/src/seeded_spawn.rs", GUARD_INTO_SPAWN)]);
    let hits = of(&findings, "guard-into-spawn");
    assert_eq!(
        hits.len(),
        1,
        "expected exactly the seeded spawn: {findings:?}"
    );
    assert!(
        hits[0].excerpt.contains("`jobs`") && hits[0].excerpt.contains("`fan_out`"),
        "finding should name the guard and the spawning fn: {hits:?}"
    );
    assert!(
        !hits.iter().any(|f| f.excerpt.contains("`fan_out_clean`")),
        "snapshot-then-spawn twin must stay clean: {hits:?}"
    );
}

#[test]
fn blocking_push_under_lock_is_flagged_directly_and_through_a_callee() {
    let findings = run(&[("crates/exec/src/seeded_queue.rs", BLOCKING_PUSH)]);
    let hits = of(&findings, "blocking-under-lock");
    assert_eq!(
        hits.len(),
        2,
        "expected the direct and via-callee bugs: {findings:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.excerpt.contains("`enqueue_all`") && f.excerpt.contains("q.push")),
        "bounded-queue push under the stats guard: {hits:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.excerpt.contains("`throttle`") && f.excerpt.contains("`admit_one`")),
        "interprocedural: blocking callee under the ledger guard: {hits:?}"
    );
    // `admit_one` itself follows the condvar protocol — its wait names
    // and releases the only guard it holds
    assert!(
        !hits.iter().any(|f| f.excerpt.contains("in `admit_one`")),
        "condvar-protocol wait must stay clean: {hits:?}"
    );
    assert!(
        !hits
            .iter()
            .any(|f| f.excerpt.contains("`enqueue_all_clean`")),
        "push-then-lock twin must stay clean: {hits:?}"
    );
}

#[test]
fn timeout_wait_under_foreign_lock_is_flagged_and_protocol_twin_is_clean() {
    let findings = run(&[("crates/exec/src/seeded_timeout.rs", TIMEOUT_WAIT)]);
    let hits = of(&findings, "blocking-under-lock");
    assert_eq!(
        hits.len(),
        2,
        "expected the direct and via-callee timed waits: {findings:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.excerpt.contains("`ledger`") && f.excerpt.contains("`await_slot`")),
        "timed wait under the foreign ledger guard: {hits:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.excerpt.contains("`drain_with_grace`")
                && f.excerpt.contains("`park_for_grace`")),
        "interprocedural: timed-wait callee under the ledger guard: {hits:?}"
    );
    // the twin follows the condvar protocol — its timed wait names and
    // releases the only guard it holds
    assert!(
        !hits
            .iter()
            .any(|f| f.excerpt.contains("`await_slot_clean`")),
        "condvar-protocol timed wait must stay clean: {hits:?}"
    );
    assert!(
        !hits
            .iter()
            .any(|f| f.excerpt.contains("in `park_for_grace`")),
        "the helper itself holds only the guard it releases: {hits:?}"
    );
}

#[test]
fn orphan_counter_is_flagged_at_every_broken_hop() {
    // a sink that only plumbs `comparisons` — `window_inserts` is
    // silently dropped from the report
    let sink_stub = r#"
pub fn report_json(s: &MetricsSnapshot) -> String {
    format!("{{\"comparisons\": {}}}", s.comparisons)
}
"#;
    let findings = run(&[
        ("crates/core/src/metrics.rs", ORPHAN_COUNTER),
        ("crates/bench/src/gate.rs", sink_stub),
    ]);
    let hits = of(&findings, "counter-conservation");
    // `orphans` breaks at four hops (snapshot field, snapshot, absorb,
    // reset); `window_inserts` breaks at the sink
    assert_eq!(hits.len(), 5, "{findings:?}");
    assert_eq!(
        hits.iter()
            .filter(|f| f.excerpt.contains("`orphans`"))
            .count(),
        4,
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|f| {
            f.file == "crates/bench/src/gate.rs" && f.excerpt.contains("`window_inserts`")
        }),
        "sink must be flagged for the dropped statistic: {hits:?}"
    );
    assert!(
        !hits.iter().any(|f| f.excerpt.contains("`comparisons`")),
        "the fully-plumbed counter must stay clean: {hits:?}"
    );
}

#[test]
fn leak_on_error_path_is_flagged_per_path_and_twins_are_clean() {
    let findings = run(&[("crates/exec/src/seeded_leak.rs", LEAK_ON_ERROR)]);
    let hits = of(&findings, "page-leak");
    assert_eq!(hits.len(), 2, "expected the two seeded leaks: {findings:?}");
    let hazard = hits
        .iter()
        .find(|f| f.excerpt.contains("`spill_all`"))
        .expect("error-path leak in `spill_all`");
    assert!(
        hazard.excerpt.contains("at line 16"),
        "hazard span must point at the first fallible statement: {hazard:?}"
    );
    let scope = hits
        .iter()
        .find(|f| f.excerpt.contains("`route`"))
        .expect("branch-join leak in `route`");
    assert!(
        scope.excerpt.contains("end of scope"),
        "the `!keep` path drops `out` at scope end: {scope:?}"
    );
    assert!(
        !hits.iter().any(|f| {
            f.excerpt.contains("`spill_all_clean`") || f.excerpt.contains("`route_clean`")
        }),
        "temp-first and both-branch twins must stay clean: {hits:?}"
    );
}

#[test]
fn publish_before_settle_and_rushed_enqueue_break_dominance() {
    let findings = run(&[("crates/server/src/seeded_books.rs", PUBLISH_BEFORE_SETTLE)]);
    let hits = of(&findings, "books-before-visibility");
    assert_eq!(
        hits.len(),
        2,
        "expected the early publish and the early enqueue: {findings:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.excerpt.contains("`finish_query`") && f.excerpt.contains("Msg::End")),
        "publish not dominated by settlement: {hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.excerpt.contains("`submit_rushed`")),
        "enqueue not dominated by the admitted bump: {hits:?}"
    );
    assert!(
        !hits.iter().any(|f| {
            f.excerpt.contains("`finish_query_settled`") || f.excerpt.contains("`submit_booked`")
        }),
        "settle-then-publish and book-then-push twins must stay clean: {hits:?}"
    );
}

#[test]
fn poll_skipping_continue_is_flagged_and_poll_first_twin_is_clean() {
    let findings = run(&[(
        "crates/core/src/external/seeded_skip.rs",
        POLL_SKIPPING_CONTINUE,
    )]);
    let hits = of(&findings, "cancel-liveness");
    assert_eq!(
        hits.len(),
        1,
        "expected exactly the poll-skipping continue: {findings:?}"
    );
    assert!(
        hits[0].excerpt.contains("`drain_skipping`")
            && hits[0].excerpt.contains("skips every CancelToken poll"),
        "the path-sensitive recheck owns this finding: {hits:?}"
    );
    assert_eq!(
        hits[0].line, 16,
        "span must point at the `continue` itself: {hits:?}"
    );
    assert!(
        !hits.iter().any(|f| f.excerpt.contains("`drain_polled`")),
        "poll-before-skip twin must stay clean: {hits:?}"
    );
}

#[test]
fn shed_without_rollback_leaks_credit_counters_and_lease() {
    let findings = run(&[("crates/server/src/seeded_shed.rs", SHED_WITHOUT_ROLLBACK)]);
    let hits = of(&findings, "resource-pairing");
    assert_eq!(
        hits.len(),
        4,
        "credit + two counters + discarded lease: {findings:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.excerpt.contains("`gate`") && f.excerpt.contains("`submit_sloppy`")),
        "the gate credit leaks on the push-failure path: {hits:?}"
    );
    for counter in ["`admitted`", "`in_flight`"] {
        assert!(
            hits.iter()
                .any(|f| f.excerpt.contains(counter) && f.excerpt.contains("`submit_sloppy`")),
            "counter {counter} drifts on the shed path: {hits:?}"
        );
    }
    // all three pairing failures exit through the same push-failure
    // return — the reported error line must be path-accurate
    assert_eq!(
        hits.iter()
            .filter(|f| f.excerpt.contains("at line 29"))
            .count(),
        3,
        "{hits:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.excerpt.contains("`charge_sloppy`") && f.excerpt.contains("lease")),
        "the bare reserve discards its lease: {hits:?}"
    );
    assert!(
        !hits.iter().any(|f| {
            f.excerpt.contains("`submit_paired`") || f.excerpt.contains("`charge_bound`")
        }),
        "release+rollback and bound-lease twins must stay clean: {hits:?}"
    );
}

#[test]
fn clean_workspace_has_zero_concurrency_contract_findings() {
    const NEW_LINTS: &[&str] = &[
        "cancel-liveness",
        "guard-into-spawn",
        "blocking-under-lock",
        "counter-conservation",
        "resource-pairing",
        "books-before-visibility",
    ];
    let root = crate::workspace_root();
    let mut cleaned = Vec::new();
    for rel in crate::source_files(&root) {
        let src = std::fs::read_to_string(root.join(&rel)).expect("workspace source readable");
        cleaned.push((rel, CleanSource::new(&src)));
    }
    let findings = analyze_files(&cleaned);
    let dirty: Vec<&Finding> = findings
        .iter()
        .filter(|f| NEW_LINTS.contains(&f.lint))
        .collect();
    assert!(
        dirty.is_empty(),
        "the workspace must satisfy its own concurrency contracts: {dirty:?}"
    );
}
