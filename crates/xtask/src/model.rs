//! AST-lite workspace model for the dataflow lints of [`crate::analyze`].
//!
//! `syn` is not available offline, so this module parses the *cleaned*
//! source of [`crate::scan::CleanSource`] (comments and literal contents
//! already blanked) just deeply enough to recover the structure the
//! dataflow lints need: every function item (name, signature, whether it
//! is test-gated or a `Drop` impl method) with its body as a tree of
//! statements, where each statement records the text outside nested
//! braces (`head`) and the nested blocks themselves. That is enough to
//! do scoped, statement-ordered reasoning — track a binding from its
//! `let`, see which later statements mention or consume it, know when
//! its block scope ends — which the line-oriented token lints cannot.

use crate::lints::EXEMPT_GATES;
use crate::scan::{gated_regions, CleanSource};

/// One parsed source file.
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// Every function item found, in source order (including methods in
    /// `impl`/`trait` blocks and functions in nested modules).
    pub fns: Vec<FnModel>,
}

/// One function item.
pub struct FnModel {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword. Part of the model surface for
    /// future lints; only tests read it today.
    #[allow(dead_code)]
    pub line: usize,
    /// Declaration text from `fn` up to the body `{` or the `;`.
    pub sig: String,
    /// Declared `pub` (any visibility qualifier). Model surface for
    /// future lints; only tests read it today.
    #[allow(dead_code)]
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]`/`#[test]`-gated region.
    pub is_test: bool,
    /// Declared inside an `impl Drop for …` block.
    pub in_drop_impl: bool,
    /// The body; `None` for trait-method signatures.
    pub body: Option<Block>,
}

/// A `{ … }` block: an ordered list of statements.
#[derive(Default)]
pub struct Block {
    /// Statements in source order; a trailing tail expression is the
    /// last statement.
    pub stmts: Vec<Stmt>,
}

/// One statement (or tail expression).
pub struct Stmt {
    /// 1-based line of the statement's first token (for attributes
    /// attached to a statement, the attribute's line).
    pub line: usize,
    /// Statement text *outside* nested `{}` blocks. Text inside
    /// parentheses/brackets — call arguments, struct literals in
    /// argument position, inline closures — stays in the head.
    pub head: String,
    /// Nested blocks (`if`/`match`/`loop` bodies, block expressions), in
    /// order of appearance.
    pub blocks: Vec<Block>,
    /// Line-gated exemption (test/auditor attribute on this statement).
    pub exempt: bool,
}

impl Stmt {
    /// The statement's full text: head plus every nested block,
    /// recursively, space-joined.
    pub fn text_all(&self) -> String {
        let mut out = self.head.clone();
        for b in &self.blocks {
            for s in &b.stmts {
                out.push(' ');
                out.push_str(&s.text_all());
            }
        }
        out
    }
}

impl FnModel {
    /// The return-type text of the signature (after `->`), if any.
    pub fn ret(&self) -> Option<&str> {
        self.sig.split_once("->").map(|(_, r)| r.trim())
    }
}

/// Parse one cleaned file into its function model.
pub fn file_model(path: &str, cs: &CleanSource) -> FileModel {
    let text: Vec<char> = cs.code.join("\n").chars().collect();
    let mut line_of = Vec::with_capacity(text.len() + 1);
    let mut line = 1usize;
    for &c in &text {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    line_of.push(line);
    let exempt = gated_regions(cs, EXEMPT_GATES);
    let mut p = Parser {
        text,
        line_of,
        exempt,
        fns: Vec::new(),
    };
    let end = p.text.len();
    p.items(0, end, false, false);
    FileModel {
        path: to_owned_path(path),
        fns: p.fns,
    }
}

fn to_owned_path(path: &str) -> String {
    path.to_string()
}

struct Parser {
    text: Vec<char>,
    line_of: Vec<usize>,
    exempt: Vec<bool>,
    fns: Vec<FnModel>,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Parser {
    fn line_at(&self, i: usize) -> usize {
        self.line_of[i.min(self.line_of.len() - 1)]
    }

    fn exempt_at(&self, i: usize) -> bool {
        let li = self.line_at(i) - 1;
        self.exempt.get(li).copied().unwrap_or(false)
    }

    /// Read the identifier starting at `i`, if any.
    fn word_at(&self, i: usize) -> Option<(String, usize)> {
        if i >= self.text.len() || !is_ident(self.text[i]) || self.text[i].is_numeric() {
            return None;
        }
        let mut j = i;
        while j < self.text.len() && is_ident(self.text[j]) {
            j += 1;
        }
        Some((self.text[i..j].iter().collect(), j))
    }

    /// Skip a balanced `{ … }` starting at the `{` at `i`; returns the
    /// index after the closing brace.
    fn skip_braces(&self, i: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.text.len() {
            match self.text[j] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Item-level scan of `[i, end)`; `in_drop` marks an enclosing
    /// `impl Drop for` block, `in_test` a file-wide test context.
    fn items(&mut self, mut i: usize, end: usize, in_drop: bool, in_test: bool) {
        let mut is_pub = false;
        while i < end {
            let c = self.text[i];
            if c == '#' {
                // attribute: skip its balanced brackets
                let mut j = i + 1;
                if j < end && self.text[j] == '!' {
                    j += 1;
                }
                if j < end && self.text[j] == '[' {
                    let mut depth = 0usize;
                    while j < end {
                        match self.text[j] {
                            '[' => depth += 1,
                            ']' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                i = j + 1;
                continue;
            }
            if let Some((w, after)) = self.word_at(i) {
                match w.as_str() {
                    "pub" => {
                        is_pub = true;
                        // visibility qualifier `pub(crate)` etc.
                        let mut j = after;
                        while j < end && self.text[j] == ' ' {
                            j += 1;
                        }
                        if j < end && self.text[j] == '(' {
                            let mut depth = 0usize;
                            while j < end {
                                match self.text[j] {
                                    '(' => depth += 1,
                                    ')' => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                            i = j + 1;
                        } else {
                            i = after;
                        }
                        continue;
                    }
                    "fn" => {
                        i = self.parse_fn(i, end, is_pub, in_drop, in_test);
                        is_pub = false;
                        continue;
                    }
                    "impl" | "mod" | "trait" => {
                        // header up to the `{` (or `;` for `mod x;`)
                        let mut j = after;
                        let mut header = String::new();
                        while j < end && self.text[j] != '{' && self.text[j] != ';' {
                            header.push(self.text[j]);
                            j += 1;
                        }
                        if j < end && self.text[j] == '{' {
                            let body_end = self.skip_braces(j);
                            let drop_impl = w == "impl" && impl_header_is_drop(&header);
                            let test = in_test || self.exempt_at(i);
                            self.items(j + 1, body_end - 1, drop_impl, test);
                            i = body_end;
                        } else {
                            i = j + 1;
                        }
                        is_pub = false;
                        continue;
                    }
                    "struct" | "enum" | "union" | "macro_rules" => {
                        // skip to the end of the item: first `{…}` or `;`
                        let mut j = after;
                        while j < end && self.text[j] != '{' && self.text[j] != ';' {
                            j += 1;
                        }
                        i = if j < end && self.text[j] == '{' {
                            self.skip_braces(j)
                        } else {
                            j + 1
                        };
                        is_pub = false;
                        continue;
                    }
                    _ => {
                        i = after;
                        continue;
                    }
                }
            }
            if c == '{' {
                // stray block at item level (e.g. `static X: T = T { .. };`
                // initializers) — skip balanced
                i = self.skip_braces(i);
                continue;
            }
            i += 1;
        }
    }

    /// Parse `fn …` starting at the `fn` keyword at `i`.
    fn parse_fn(
        &mut self,
        i: usize,
        end: usize,
        is_pub: bool,
        in_drop: bool,
        in_test: bool,
    ) -> usize {
        let decl_line = self.line_at(i);
        let mut j = i + 2;
        while j < end && !is_ident(self.text[j]) {
            j += 1;
        }
        let (name, after_name) = match self.word_at(j) {
            Some(x) => x,
            None => return j,
        };
        // signature: up to the body `{` or a `;`, skipping nested parens
        let mut sig = String::from("fn ");
        sig.push_str(&name);
        let mut k = after_name;
        let mut pd = 0usize;
        while k < end {
            match self.text[k] {
                '(' | '[' => pd += 1,
                ')' | ']' => pd = pd.saturating_sub(1),
                '{' if pd == 0 => break,
                ';' if pd == 0 => {
                    self.fns.push(FnModel {
                        name,
                        line: decl_line,
                        sig,
                        is_pub,
                        is_test: in_test || self.exempt_at(i),
                        in_drop_impl: in_drop,
                        body: None,
                    });
                    return k + 1;
                }
                _ => {}
            }
            sig.push(self.text[k]);
            k += 1;
        }
        if k >= end {
            return k;
        }
        let (body, next) = self.parse_block(k);
        self.fns.push(FnModel {
            name,
            line: decl_line,
            sig,
            is_pub,
            is_test: in_test || self.exempt_at(i),
            in_drop_impl: in_drop,
            body: Some(body),
        });
        next
    }

    /// Parse the block whose `{` is at `i`; returns it and the index
    /// after its closing `}`.
    #[allow(unused_assignments)] // flush! resets state past the final flush
    fn parse_block(&mut self, i: usize) -> (Block, usize) {
        let mut block = Block::default();
        let mut head = String::new();
        let mut blocks = Vec::new();
        let mut stmt_line = 0usize;
        let mut stmt_exempt = false;
        let mut pd = 0usize; // paren/bracket depth — braces inside stay in head
        let mut ibd = 0usize; // brace depth while pd > 0
        let mut j = i + 1;

        macro_rules! flush {
            () => {
                if !head.trim().is_empty() || !blocks.is_empty() {
                    block.stmts.push(Stmt {
                        line: if stmt_line == 0 {
                            self.line_at(j)
                        } else {
                            stmt_line
                        },
                        head: std::mem::take(&mut head),
                        blocks: std::mem::take(&mut blocks),
                        exempt: stmt_exempt,
                    });
                } else {
                    head.clear();
                    blocks.clear();
                }
                stmt_line = 0;
                stmt_exempt = false;
            };
        }

        while j < self.text.len() {
            let c = self.text[j];
            if stmt_line == 0 && !c.is_whitespace() && c != '}' {
                stmt_line = self.line_at(j);
                stmt_exempt = self.exempt_at(j);
            }
            match c {
                '(' | '[' if ibd == 0 => {
                    pd += 1;
                    head.push(c);
                    j += 1;
                }
                ')' | ']' if ibd == 0 => {
                    pd = pd.saturating_sub(1);
                    head.push(c);
                    j += 1;
                }
                '{' if pd == 0 && ibd == 0 => {
                    let (inner, next) = self.parse_block(j);
                    blocks.push(inner);
                    j = next;
                    // does the statement continue past the block?
                    let mut k = j;
                    while k < self.text.len() && self.text[k].is_whitespace() {
                        k += 1;
                    }
                    match self.text.get(k) {
                        Some(';') => {
                            flush!();
                            j = k + 1;
                        }
                        Some('.') | Some('?') => {}
                        _ => {
                            if self.word_at(k).is_some_and(|(w, _)| w == "else") {
                                head.push_str(" else ");
                                j = k + 4;
                            } else {
                                flush!();
                            }
                        }
                    }
                }
                '{' => {
                    ibd += 1;
                    head.push(c);
                    j += 1;
                }
                '}' if ibd > 0 => {
                    ibd -= 1;
                    head.push(c);
                    j += 1;
                }
                '}' => {
                    flush!();
                    return (block, j + 1);
                }
                ';' if pd == 0 && ibd == 0 => {
                    head.push(';');
                    flush!();
                    j += 1;
                }
                _ => {
                    head.push(c);
                    j += 1;
                }
            }
        }
        flush!();
        (block, j)
    }
}

/// An `impl` header introduces a `Drop` impl: `Drop for T`, possibly
/// with generics between `impl` and `Drop`.
fn impl_header_is_drop(header: &str) -> bool {
    header
        .split_once(" for ")
        .is_some_and(|(tr, _)| tr.trim_end().ends_with("Drop"))
        || header.trim_start().starts_with("Drop for ")
}

/// Whole-word occurrence search: `name` in `text` at identifier
/// boundaries, returning the byte offset of each hit.
pub fn word_hits(text: &str, name: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find(name) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let after = at + name.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after] as char);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + name.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        file_model("crates/demo/src/lib.rs", &CleanSource::new(src))
    }

    #[test]
    fn functions_and_methods_are_found() {
        let src = "\
pub fn free() -> u8 { 1 }
mod inner {
    fn hidden(x: usize) { let y = x; }
}
struct S { field: u8 }
impl S {
    pub(crate) fn method(&self) -> Result<u8, String> { Ok(self.field) }
}
trait T {
    fn provided(&self) { }
    fn required(&self) -> u8;
}
";
        let m = model(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["free", "hidden", "method", "provided", "required"]
        );
        assert!(m.fns[0].is_pub);
        assert!(!m.fns[1].is_pub);
        assert!(m.fns[2].is_pub, "pub(crate) counts as pub");
        assert!(m.fns[4].body.is_none(), "trait signature has no body");
        assert_eq!(m.fns[2].ret(), Some("Result<u8, String>"));
        assert_eq!(m.fns[0].line, 1);
        assert_eq!(m.fns[1].line, 3);
    }

    #[test]
    fn statements_split_and_nest() {
        let src = "\
fn f(x: u8) -> u8 {
    let a = g(x, h(1));
    if a > 0 {
        let b = a;
        use_it(b);
    } else {
        other();
    }
    a
}
";
        let m = model(src);
        let body = m.fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3, "let / if-else / tail");
        assert!(body.stmts[0].head.contains("let a = g(x, h(1))"));
        assert_eq!(body.stmts[1].blocks.len(), 2, "then + else blocks");
        assert_eq!(body.stmts[1].blocks[0].stmts.len(), 2);
        assert_eq!(body.stmts[2].head.trim(), "a", "tail expression");
        assert!(body.stmts[1].text_all().contains("use_it(b)"));
        assert_eq!(body.stmts[0].line, 2);
        assert_eq!(body.stmts[1].line, 3);
    }

    #[test]
    fn struct_literals_in_args_stay_in_head() {
        let src = "fn f() -> S { mk(S { a: 1, b: 2 }, 3) }\n";
        let m = model(src);
        let body = m.fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 1);
        assert!(body.stmts[0].head.contains("S { a: 1, b: 2 }"));
        assert!(body.stmts[0].blocks.is_empty());
    }

    #[test]
    fn block_expression_statements_continue_with_question_mark() {
        let src = "\
fn f() -> Result<u8, E> {
    let v = { inner()? };
    match v { 0 => a(), _ => b() }?;
    Ok(v)
}
";
        let m = model(src);
        let body = m.fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3);
        assert!(body.stmts[0].text_all().contains("inner()?"));
        assert!(body.stmts[1].head.contains('?'), "post-block ? kept");
    }

    #[test]
    fn drop_impls_and_test_gates_are_marked() {
        let src = "\
impl Drop for Guard {
    fn drop(&mut self) { let _ = cleanup(); }
}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
    #[test]
    fn case() { helper(); }
}
fn live() {}
";
        let m = model(src);
        let drop_fn = m.fns.iter().find(|f| f.name == "drop").unwrap();
        assert!(drop_fn.in_drop_impl);
        assert!(!drop_fn.is_test);
        assert!(m.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(m.fns.iter().find(|f| f.name == "case").unwrap().is_test);
        assert!(!m.fns.iter().find(|f| f.name == "live").unwrap().is_test);
    }

    #[test]
    fn generic_impls_are_not_drop() {
        let src = "\
impl<T: Clone> Holder<T> {
    fn get(&self) -> T { self.0.clone() }
}
impl<'a> Drop for Lease<'a> {
    fn drop(&mut self) {}
}
";
        let m = model(src);
        assert!(!m.fns.iter().find(|f| f.name == "get").unwrap().in_drop_impl);
        assert!(
            m.fns
                .iter()
                .find(|f| f.name == "drop")
                .unwrap()
                .in_drop_impl
        );
    }

    #[test]
    fn closures_inside_calls_stay_in_one_statement() {
        let src = "\
fn f() {
    let out = items.iter().map(|x| { let y = x + 1; y }).collect::<Vec<_>>();
    done(out);
}
";
        let m = model(src);
        let body = m.fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        assert!(body.stmts[0].head.contains("let y = x + 1"));
    }

    #[test]
    fn word_hits_respects_boundaries() {
        assert_eq!(word_hits("out outer out2 (out)", "out"), vec![0, 16]);
        assert!(word_hits("shout", "out").is_empty());
    }

    #[test]
    fn exempt_statement_inside_live_fn() {
        let src = "\
fn hot() {
    work();
    #[cfg(feature = \"check-invariants\")]
    audit();
    more();
}
";
        let m = model(src);
        let body = m.fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3);
        assert!(!body.stmts[0].exempt);
        assert!(body.stmts[1].exempt, "gated statement is exempt");
        assert!(!body.stmts[2].exempt);
    }
}
