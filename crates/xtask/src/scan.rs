//! Comment- and string-aware source scanning.
//!
//! The lints in [`crate::lints`] work on *cleaned* source: string/char
//! literal contents and comments are blanked out (newlines preserved) so
//! token searches cannot be fooled by text inside them, while doc-comment
//! text is kept in a parallel buffer for the doc-section lint. Rust is
//! lexed just deeply enough for that — nested block comments, raw strings
//! with hashes, byte strings, and the char-literal/lifetime ambiguity.

/// A source file after lexical cleaning, split into lines.
pub struct CleanSource {
    /// The original source lines (attribute matching needs the string
    /// literals that cleaning blanks out).
    pub raw: Vec<String>,
    /// Code text with comments and literal contents blanked.
    pub code: Vec<String>,
    /// Doc-comment lines (`///` / `//!`); blank for non-doc lines.
    pub docs: Vec<String>,
}

impl CleanSource {
    /// Clean `src`.
    pub fn new(src: &str) -> CleanSource {
        let chars: Vec<char> = src.chars().collect();
        let n = chars.len();
        let mut code = vec![' '; n];
        let mut docs = vec![' '; n];
        for (i, &c) in chars.iter().enumerate() {
            if c == '\n' {
                code[i] = '\n';
                docs[i] = '\n';
            }
        }
        let mut i = 0;
        while i < n {
            let c = chars[i];
            if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                // `///x` and `//!` are docs; `////...` is a plain comment
                let doc = i + 2 < n
                    && (chars[i + 2] == '!'
                        || (chars[i + 2] == '/' && !(i + 3 < n && chars[i + 3] == '/')));
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                if doc {
                    docs[start..i].copy_from_slice(&chars[start..i]);
                }
            } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                // block comments nest in Rust
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            } else if c == '"' {
                code[i] = '"';
                i = skip_plain_string(&chars, i + 1, &mut code);
            } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                if let Some(next) = raw_or_byte_literal(&chars, i, &mut code) {
                    i = next;
                } else {
                    code[i] = c;
                    i += 1;
                }
            } else if c == '\'' {
                if i + 1 < n && chars[i + 1] == '\\' {
                    // escaped char literal: '\n', '\u{..}', ...
                    code[i] = '\'';
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    if i < n {
                        code[i] = '\'';
                        i += 1;
                    }
                } else if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                    // plain char literal 'x'
                    code[i] = '\'';
                    code[i + 2] = '\'';
                    i += 3;
                } else {
                    // lifetime
                    code[i] = '\'';
                    i += 1;
                }
            } else {
                code[i] = c;
                i += 1;
            }
        }
        CleanSource {
            raw: src.split('\n').map(str::to_string).collect(),
            code: to_lines(&code),
            docs: to_lines(&docs),
        }
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Consume a `"..."` body starting *inside* the quotes; blanks content,
/// writes the closing quote through, returns the index after it.
fn skip_plain_string(chars: &[char], mut i: usize, code: &mut [char]) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => {
                code[i] = '"';
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Try to consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'` at `i`.
/// Returns the index after the literal, or None if `i` is not one.
fn raw_or_byte_literal(chars: &[char], i: usize, code: &mut [char]) -> Option<usize> {
    let n = chars.len();
    let mut j = i + 1;
    let mut raw = chars[i] == 'r';
    if chars[i] == 'b' && j < n && chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    if chars[i] == 'b' && j < n && chars[j] == '\'' {
        // byte char literal b'x' / b'\n'
        j += 1;
        if j < n && chars[j] == '\\' {
            j += 1;
        }
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        return Some((j + 1).min(n));
    }
    if raw {
        let mut hashes = 0;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || chars[j] != '"' {
            return None;
        }
        j += 1;
        // end: `"` followed by `hashes` hashes
        while j < n {
            if chars[j] == '"'
                && chars[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == '#')
                    .count()
                    == hashes
            {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        return Some(n);
    }
    if chars[i] == 'b' && j < n && chars[j] == '"' {
        code[j] = '"';
        return Some(skip_plain_string(chars, j + 1, code));
    }
    None
}

fn to_lines(chars: &[char]) -> Vec<String> {
    let s: String = chars.iter().collect();
    s.split('\n').map(str::to_string).collect()
}

/// Mark every line belonging to an item gated by an attribute whose
/// (whitespace-trimmed) text starts with one of `prefixes` — e.g.
/// `#[cfg(test)] mod tests { … }` marks the whole module body.
///
/// Attributes are matched against the **raw** lines (cleaning blanks the
/// string literals inside `#[cfg(feature = "…")]`); the item extent is
/// then found on the cleaned code by scanning forward for the first `{`
/// (then brace-matching) or a `;` at depth 0 (attribute on a braceless
/// item like a `use`, or a gated statement).
pub fn gated_regions(cs: &CleanSource, prefixes: &[&str]) -> Vec<bool> {
    let code = &cs.code;
    let mut gated = vec![false; code.len()];
    for (li, raw_line) in cs.raw.iter().enumerate() {
        let t = raw_line.trim_start();
        if !prefixes.iter().any(|p| t.starts_with(p)) {
            continue;
        }
        // scan forward from the end of this attribute line
        let mut depth = 0usize;
        let mut entered = false;
        'scan: for (lj, l) in code.iter().enumerate().skip(li) {
            let body = if lj == li {
                // skip past the attribute itself: start after its `]`
                match l.find(']') {
                    Some(p) => &l[p + 1..],
                    None => l.as_str(),
                }
            } else {
                l.as_str()
            };
            gated[lj] = true;
            for c in body.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break 'scan;
                        }
                    }
                    ';' if !entered && depth == 0 => break 'scan,
                    _ => {}
                }
            }
        }
    }
    gated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let cs = CleanSource::new(
            "let s = \"panic!(x) .unwrap()\"; // .unwrap() here too\nlet t = r#\"std::fs\"#;\n/* .expect( */ let u = 'x';",
        );
        let joined = cs.code.join("\n");
        assert!(!joined.contains("panic!"));
        assert!(!joined.contains("unwrap"));
        assert!(!joined.contains("std::fs"));
        assert!(!joined.contains("expect"));
        assert!(joined.contains("let s"));
        assert!(joined.contains("let u"));
    }

    #[test]
    fn doc_comments_are_kept_separately() {
        let cs = CleanSource::new("/// # Errors\n/// bad things\npub fn f() {}\n// plain\n");
        assert!(cs.docs[0].contains("# Errors"));
        assert!(cs.docs[1].contains("bad things"));
        assert_eq!(cs.docs[3].trim(), "");
        assert!(cs.code[2].contains("pub fn f"));
        assert_eq!(cs.code[0].trim(), "");
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let cs = CleanSource::new("fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }");
        assert!(cs.code[0].contains(".unwrap()"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "\
fn hot() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn hot2() {}
";
        let cs = CleanSource::new(src);
        let gated = gated_regions(&cs, &["#[cfg(test)]"]);
        assert_eq!(gated, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn gated_statement_and_braceless_item() {
        let src = "\
#[cfg(feature = \"check-invariants\")]
if bad { panic!(\"boom\"); }
#[cfg(test)]
use foo::bar;
fn live() {}
";
        let cs = CleanSource::new(src);
        let gated = gated_regions(
            &cs,
            &["#[cfg(feature = \"check-invariants\")]", "#[cfg(test)]"],
        );
        assert_eq!(gated, vec![true, true, true, true, false, false]);
    }
}
