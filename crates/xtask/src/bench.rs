//! `cargo xtask bench` — regenerate or gate the parallel-SFS benchmark
//! report (`BENCH_pr4.json`).
//!
//! Without `--gate` the bench binary rewrites the committed report.
//! With `--gate` a fresh run lands in `target/bench_gate_new.json` and
//! is diffed against the committed one, section by section and thread by
//! thread:
//!
//! * deterministic fields — `comparisons`, `critical_path`, `skyline`,
//!   `checksum` — must match **exactly**; a mismatch means the algorithm
//!   changed and the baseline must be regenerated deliberately
//!   (`cargo xtask bench`), never silently;
//! * `filter_ms` may not regress by more than 20% (wall clock is noisy,
//!   so only a worsening beyond [`MAX_WALL_REGRESSION`] fails).
//!
//! `--smoke` restricts the fresh run to the CI-sized section; sections
//! present only in the committed report are then skipped.
//!
//! The JSON walker below is deliberately tiny: the report is our own
//! flat format, and the workspace takes no serde dependency for it.

use std::collections::BTreeMap;
use std::fmt;

/// A fresh `filter_ms` above `committed × MAX_WALL_REGRESSION` fails.
pub const MAX_WALL_REGRESSION: f64 = 1.2;

/// Minimal JSON value — just enough to walk the bench report.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (the report stays far below 2^53, where f64 is exact).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object (sorted keys; duplicates keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Where the parser stopped and why.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.i, what }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.i += 1;
                    let e = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        // the bench report never emits the rest
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                c => {
                    self.i += 1;
                    s.push(c as char);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => {
                self.i += 1;
                let mut m = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    m.insert(k, self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(m));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut v = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                loop {
                    v.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(v));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.eat_lit("true", Json::Bool(true)),
            b'f' => self.eat_lit("false", Json::Bool(false)),
            b'n' => self.eat_lit("null", Json::Null),
            _ => self.number(),
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
/// [`ParseError`] with the byte offset of the first malformed token.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i == p.b.len() {
        Ok(v)
    } else {
        Err(p.err("trailing input"))
    }
}

/// One run row, keyed for the diff.
#[derive(Debug, Clone, PartialEq)]
struct Run {
    filter_ms: f64,
    comparisons: f64,
    critical_path: f64,
    skyline: f64,
    checksum: String,
}

/// section label → threads → run
type Grid = BTreeMap<String, BTreeMap<u64, Run>>;

fn grid_of(doc: &Json) -> Result<Grid, String> {
    let mut grid = Grid::new();
    for sec in doc.get("sections").ok_or("report has no `sections`")?.arr() {
        let label = sec
            .get("label")
            .and_then(Json::str)
            .ok_or("section without label")?
            .to_string();
        let mut runs = BTreeMap::new();
        for r in sec.get("runs").ok_or("section without runs")?.arr() {
            let f = |k: &str| -> Result<f64, String> {
                r.get(k)
                    .and_then(Json::num)
                    .ok_or_else(|| format!("run missing `{k}`"))
            };
            runs.insert(
                f("threads")? as u64,
                Run {
                    filter_ms: f("filter_ms")?,
                    comparisons: f("comparisons")?,
                    critical_path: f("critical_path")?,
                    skyline: f("skyline")?,
                    checksum: r
                        .get("checksum")
                        .and_then(Json::str)
                        .ok_or("run missing `checksum`")?
                        .to_string(),
                },
            );
        }
        grid.insert(label, runs);
    }
    Ok(grid)
}

/// Diff a fresh report against the committed baseline. Every section of
/// the fresh run must exist in the baseline with the same thread grid;
/// baseline-only sections are skipped (that is how `--smoke` works).
///
/// # Errors
/// A report of every violated check, one per line.
pub fn compare(committed: &str, fresh: &str) -> Result<Vec<String>, String> {
    let committed = grid_of(&parse(committed).map_err(|e| format!("committed report: {e}"))?)?;
    let fresh = grid_of(&parse(fresh).map_err(|e| format!("fresh report: {e}"))?)?;
    let mut notes = Vec::new();
    let mut errs = String::new();
    for (label, runs) in &fresh {
        let Some(base_runs) = committed.get(label) else {
            errs.push_str(&format!(
                "section `{label}` missing from committed BENCH_pr4.json — regenerate it\n"
            ));
            continue;
        };
        for (threads, run) in runs {
            let Some(base) = base_runs.get(threads) else {
                errs.push_str(&format!(
                    "section `{label}` threads={threads} missing from committed report\n"
                ));
                continue;
            };
            for (what, new, old) in [
                ("comparisons", run.comparisons, base.comparisons),
                ("critical_path", run.critical_path, base.critical_path),
                ("skyline", run.skyline, base.skyline),
            ] {
                #[allow(clippy::float_cmp)] // integers carried in f64; exactness is the point
                if new != old {
                    errs.push_str(&format!(
                        "`{label}` threads={threads}: {what} changed {old} → {new} \
                         (deterministic — regenerate the baseline deliberately)\n"
                    ));
                }
            }
            if run.checksum != base.checksum {
                errs.push_str(&format!(
                    "`{label}` threads={threads}: skyline checksum changed {} → {}\n",
                    base.checksum, run.checksum
                ));
            }
            if run.filter_ms > base.filter_ms * MAX_WALL_REGRESSION {
                errs.push_str(&format!(
                    "`{label}` threads={threads}: filter_ms regressed {:.1} → {:.1} \
                     (gate allows {:.0}%)\n",
                    base.filter_ms,
                    run.filter_ms,
                    (MAX_WALL_REGRESSION - 1.0) * 100.0
                ));
            } else {
                notes.push(format!(
                    "`{label}` threads={threads}: filter {:.1}ms vs {:.1}ms baseline — ok",
                    run.filter_ms, base.filter_ms
                ));
            }
        }
    }
    if errs.is_empty() {
        Ok(notes)
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(label: &str, filter_ms: f64, comparisons: u64) -> String {
        format!(
            r#"{{ "label": "{label}", "n": 20000, "d": 7, "window_pages": 16, "cores": 1,
                  "runs": [ {{ "threads": 1, "sort_ms": 10.0, "filter_ms": {filter_ms},
                               "comparisons": {comparisons}, "critical_path": {comparisons},
                               "extra_pages": 0, "skyline": 42,
                               "checksum": "0x00deadbeef000000",
                               "speedup_wall": 1.0, "speedup_model": 1.0 }} ] }}"#
        )
    }

    fn report_of(sections: &[String]) -> String {
        format!(
            r#"{{ "schema": 1, "seed": 2003, "sections": [ {} ] }}"#,
            sections.join(", ")
        )
    }

    fn report(filter_ms: f64, comparisons: u64) -> String {
        report_of(&[section("smoke", filter_ms, comparisons)])
    }

    #[test]
    fn parses_own_report_shape() {
        let doc = parse(&report(5.0, 1000)).unwrap();
        let grid = grid_of(&doc).unwrap();
        assert_eq!(grid["smoke"][&1].skyline, 42.0);
        assert_eq!(grid["smoke"][&1].checksum, "0x00deadbeef000000");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{ \"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert_eq!(parse("  null ").unwrap(), Json::Null);
        assert_eq!(parse("[true, false, 1.5]").unwrap().arr().len(), 3);
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(5.0, 1000);
        let notes = compare(&r, &r).unwrap();
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn wall_regression_beyond_20_percent_fails() {
        let base = report(5.0, 1000);
        assert!(compare(&base, &report(5.9, 1000)).is_ok());
        let err = compare(&base, &report(6.1, 1000)).unwrap_err();
        assert!(err.contains("filter_ms regressed"), "{err}");
    }

    #[test]
    fn deterministic_drift_fails_even_when_faster() {
        let err = compare(&report(5.0, 1000), &report(1.0, 999)).unwrap_err();
        assert!(err.contains("comparisons changed"), "{err}");
    }

    #[test]
    fn baseline_only_sections_are_skipped() {
        // fresh smoke-only run vs a committed report with full + smoke
        // (the `--gate --smoke` shape): the committed side's extra
        // section must be ignored, not flagged — and drifting it must
        // still not matter.
        let committed = report_of(&[section("full", 99.0, 7), section("smoke", 5.0, 1000)]);
        assert!(compare(&committed, &report(5.0, 1000)).is_ok());
    }

    #[test]
    fn missing_fresh_section_in_committed_fails() {
        let other = report_of(&[section("full", 5.0, 1000)]);
        let err = compare(&other, &report(5.0, 1000)).unwrap_err();
        assert!(err.contains("missing from committed"), "{err}");
    }
}
