//! `cargo xtask bench` — regenerate or gate the parallel-SFS benchmark
//! report (`BENCH_pr9.json`).
//!
//! Without `--gate` the bench binary rewrites the committed report.
//! With `--gate` a fresh run lands in `target/bench_gate_new.json` and
//! is diffed against the committed one, section by section and thread by
//! thread:
//!
//! * deterministic fields — `comparisons`, `critical_path`, `skyline`,
//!   `checksum`, and (when both sides report them) the block-kernel
//!   counters `blocks_skipped` / `lanes_compared` — must match
//!   **exactly**; a mismatch means the algorithm changed and the
//!   baseline must be regenerated deliberately (`cargo xtask bench`),
//!   never silently;
//! * `filter_ms` may not regress by more than 20% (wall clock is noisy,
//!   so only a worsening beyond [`MAX_WALL_REGRESSION`] fails).
//!
//! The gate additionally checks [`improvement`]: the committed
//! `BENCH_pr5.json` must beat the retained `BENCH_pr4.json` scalar-era
//! baseline by at least [`MIN_COST_IMPROVEMENT`] in model comparison
//! cost (aggregate and critical path) on the shared full grid, with a
//! bit-identical skyline. That check runs on the committed files, so it
//! holds in `--smoke` mode too.
//!
//! It also checks [`batch_beats_row`] on the committed `BENCH_pr9.json`:
//! every `-batch` section must produce the bit-identical skyline of its
//! row twin while strictly reducing `rows_materialized` and
//! `bytes_moved`, and at `threads=1` the batch pipeline's wall clock
//! (sort + filter) may not exceed the row pipeline's by more than
//! [`BATCH_WALL_SLACK`].
//!
//! `--smoke` restricts the fresh run to the CI-sized section; sections
//! present only in the committed report are then skipped.
//!
//! Reports may also carry a top-level `"server"` object (the session
//! layer's admission counters and latency percentiles). Its counters
//! are compared exactly and its `p99_ms` within the wall tolerance
//! plus an absolute slack ([`P99_ABS_SLACK_MS`] — the queries are
//! milliseconds long, so a purely relative gate would flap); a report
//! without the object is skipped with a note, so older baselines keep
//! gating.
//!
//! The JSON walker below is deliberately tiny: the report is our own
//! flat format, and the workspace takes no serde dependency for it.

use std::collections::BTreeMap;
use std::fmt;

/// A fresh `filter_ms` above `committed × MAX_WALL_REGRESSION` fails.
pub const MAX_WALL_REGRESSION: f64 = 1.2;

/// Absolute slack added on top of [`MAX_WALL_REGRESSION`] for the
/// server gate's `p99_ms`: its closed-loop queries finish in a few
/// milliseconds, where scheduler jitter alone exceeds 20%. A relative
/// tolerance with no floor would make the gate flap on loaded CI
/// runners; a multi-millisecond floor is still far below any real
/// regression the session layer could introduce.
pub const P99_ABS_SLACK_MS: f64 = 5.0;

/// Absolute slack added on top of [`MAX_WALL_REGRESSION`] for the
/// sharded gate's `wall_ms`: its runs finish in tens to hundreds of
/// milliseconds, where scheduler jitter on a loaded runner routinely
/// exceeds 20%. The deterministic counters (comparisons, bytes
/// exchanged, checksums) are the real gate; the wall bound only has to
/// catch order-of-magnitude regressions without flapping.
pub const SHARD_WALL_ABS_SLACK_MS: f64 = 50.0;

/// The block-kernel baseline must reduce model comparison cost vs the
/// scalar-era baseline by at least this factor, per full-grid thread
/// count (the PR 5 acceptance bar).
pub const MIN_COST_IMPROVEMENT: f64 = 1.3;

/// At `threads=1` the committed batch section's wall clock (sort +
/// filter) must stay within this factor of its row twin's — the batch
/// pipeline has to win, but a committed baseline measured on a loaded
/// machine should not flap the gate over scheduler noise.
pub const BATCH_WALL_SLACK: f64 = 1.10;

/// Minimal JSON value — just enough to walk the bench report.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (the report stays far below 2^53, where f64 is exact).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object (sorted keys; duplicates keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Where the parser stopped and why.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.i, what }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.i += 1;
                    let e = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        // the bench report never emits the rest
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                c => {
                    self.i += 1;
                    s.push(c as char);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => {
                self.i += 1;
                let mut m = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':'")?;
                    m.insert(k, self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(m));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut v = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                loop {
                    v.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(v));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.eat_lit("true", Json::Bool(true)),
            b'f' => self.eat_lit("false", Json::Bool(false)),
            b'n' => self.eat_lit("null", Json::Null),
            _ => self.number(),
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
/// [`ParseError`] with the byte offset of the first malformed token.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i == p.b.len() {
        Ok(v)
    } else {
        Err(p.err("trailing input"))
    }
}

/// Deterministic per-run counters that older committed reports may not
/// carry yet: the block-kernel pair plus the full `SkylineMetrics`
/// conservation set. Compared exactly when both sides report them —
/// so a new counter can be added without regenerating the committed
/// baseline, and the counter-conservation lint keeps this list honest.
const OPTIONAL_COUNTERS: &[&str] = &[
    "blocks_skipped",
    "lanes_compared",
    "passes",
    "temp_records",
    "window_inserts",
    "discarded",
    "emitted",
    "input_records",
    "batches",
    "rows_materialized",
    "bytes_moved",
    "bytes_exchanged",
    "exchange_frames",
    "pruned_by_representatives",
];

/// One run row, keyed for the diff.
#[derive(Debug, Clone, PartialEq)]
struct Run {
    sort_ms: f64,
    filter_ms: f64,
    comparisons: f64,
    critical_path: f64,
    skyline: f64,
    checksum: String,
    /// Present [`OPTIONAL_COUNTERS`], by name.
    counters: BTreeMap<&'static str, f64>,
}

/// section label → threads → run
type Grid = BTreeMap<String, BTreeMap<u64, Run>>;

/// Deterministic counters of the top-level `"server"` object; compared
/// exactly between reports.
const SERVER_COUNTERS: &[&str] = &[
    "workers",
    "queries",
    "admitted",
    "rejected",
    "cancelled",
    "completed",
];

/// The session-server section of a report: exact admission counters
/// plus the wall-clock p99.
#[derive(Debug, Clone, PartialEq)]
struct ServerRun {
    counters: BTreeMap<&'static str, f64>,
    p99_ms: f64,
}

fn server_of(doc: &Json) -> Result<Option<ServerRun>, String> {
    let Some(sv) = doc.get("server") else {
        return Ok(None);
    };
    let mut counters = BTreeMap::new();
    for k in SERVER_COUNTERS {
        counters.insert(
            *k,
            sv.get(k)
                .and_then(Json::num)
                .ok_or_else(|| format!("server object missing `{k}`"))?,
        );
    }
    Ok(Some(ServerRun {
        counters,
        p99_ms: sv
            .get("p99_ms")
            .and_then(Json::num)
            .ok_or("server object missing `p99_ms`")?,
    }))
}

fn grid_of(doc: &Json) -> Result<Grid, String> {
    let mut grid = Grid::new();
    for sec in doc.get("sections").ok_or("report has no `sections`")?.arr() {
        let label = sec
            .get("label")
            .and_then(Json::str)
            .ok_or("section without label")?
            .to_string();
        let mut runs = BTreeMap::new();
        for r in sec.get("runs").ok_or("section without runs")?.arr() {
            let f = |k: &str| -> Result<f64, String> {
                r.get(k)
                    .and_then(Json::num)
                    .ok_or_else(|| format!("run missing `{k}`"))
            };
            runs.insert(
                f("threads")? as u64,
                Run {
                    sort_ms: f("sort_ms")?,
                    filter_ms: f("filter_ms")?,
                    comparisons: f("comparisons")?,
                    critical_path: f("critical_path")?,
                    skyline: f("skyline")?,
                    checksum: r
                        .get("checksum")
                        .and_then(Json::str)
                        .ok_or("run missing `checksum`")?
                        .to_string(),
                    counters: OPTIONAL_COUNTERS
                        .iter()
                        .filter_map(|k| r.get(k).and_then(Json::num).map(|v| (*k, v)))
                        .collect(),
                },
            );
        }
        grid.insert(label, runs);
    }
    Ok(grid)
}

/// Diff a fresh report against the committed baseline. Every section of
/// the fresh run must exist in the baseline with the same thread grid;
/// baseline-only sections are skipped (that is how `--smoke` works).
///
/// # Errors
/// A report of every violated check, one per line.
pub fn compare(committed: &str, fresh: &str) -> Result<Vec<String>, String> {
    let committed_doc = parse(committed).map_err(|e| format!("committed report: {e}"))?;
    let fresh_doc = parse(fresh).map_err(|e| format!("fresh report: {e}"))?;
    let committed = grid_of(&committed_doc)?;
    let fresh = grid_of(&fresh_doc)?;
    let mut notes = Vec::new();
    let mut errs = String::new();
    for (label, runs) in &fresh {
        let Some(base_runs) = committed.get(label) else {
            errs.push_str(&format!(
                "section `{label}` missing from the committed baseline — regenerate it\n"
            ));
            continue;
        };
        for (threads, run) in runs {
            let Some(base) = base_runs.get(threads) else {
                errs.push_str(&format!(
                    "section `{label}` threads={threads} missing from committed report\n"
                ));
                continue;
            };
            let mut fields = vec![
                ("comparisons", run.comparisons, base.comparisons),
                ("critical_path", run.critical_path, base.critical_path),
                ("skyline", run.skyline, base.skyline),
            ];
            for k in OPTIONAL_COUNTERS {
                // counter absent on one side: not comparable
                if let (Some(new), Some(old)) = (run.counters.get(k), base.counters.get(k)) {
                    fields.push((*k, *new, *old));
                }
            }
            for (what, new, old) in fields {
                #[allow(clippy::float_cmp)] // integers carried in f64; exactness is the point
                if new != old {
                    errs.push_str(&format!(
                        "`{label}` threads={threads}: {what} changed {old} → {new} \
                         (deterministic — regenerate the baseline deliberately)\n"
                    ));
                }
            }
            if run.checksum != base.checksum {
                errs.push_str(&format!(
                    "`{label}` threads={threads}: skyline checksum changed {} → {}\n",
                    base.checksum, run.checksum
                ));
            }
            if run.filter_ms > base.filter_ms * MAX_WALL_REGRESSION {
                errs.push_str(&format!(
                    "`{label}` threads={threads}: filter_ms regressed {:.1} → {:.1} \
                     (gate allows {:.0}%)\n",
                    base.filter_ms,
                    run.filter_ms,
                    (MAX_WALL_REGRESSION - 1.0) * 100.0
                ));
            } else {
                notes.push(format!(
                    "`{label}` threads={threads}: filter {:.1}ms vs {:.1}ms baseline — ok",
                    run.filter_ms, base.filter_ms
                ));
            }
        }
    }
    match (server_of(&committed_doc)?, server_of(&fresh_doc)?) {
        (Some(base), Some(run)) => {
            for k in SERVER_COUNTERS {
                let (old, new) = (base.counters[k], run.counters[k]);
                #[allow(clippy::float_cmp)] // integers carried in f64; exactness is the point
                if new != old {
                    errs.push_str(&format!(
                        "`server`: {k} changed {old} → {new} \
                         (deterministic — regenerate the baseline deliberately)\n"
                    ));
                }
            }
            let allowed = base.p99_ms * MAX_WALL_REGRESSION + P99_ABS_SLACK_MS;
            if run.p99_ms > allowed {
                errs.push_str(&format!(
                    "`server`: p99_ms regressed {:.1} → {:.1} (gate allows {:.0}% + {:.0}ms)\n",
                    base.p99_ms,
                    run.p99_ms,
                    (MAX_WALL_REGRESSION - 1.0) * 100.0,
                    P99_ABS_SLACK_MS
                ));
            } else {
                notes.push(format!(
                    "`server`: p99 {:.1}ms vs {:.1}ms baseline — ok",
                    run.p99_ms, base.p99_ms
                ));
            }
        }
        (None, Some(_)) => notes.push(
            "`server`: section not in the committed baseline — skipped \
             (regenerate with `cargo xtask bench` to adopt it)"
                .to_string(),
        ),
        (Some(_), None) => notes.push(
            "`server`: committed baseline has a server section the fresh run lacks — skipped"
                .to_string(),
        ),
        (None, None) => {}
    }
    if errs.is_empty() {
        Ok(notes)
    } else {
        Err(errs)
    }
}

/// The PR 5 acceptance check: the block-kernel baseline (`BENCH_pr5.json`)
/// must beat the scalar-era baseline (`BENCH_pr4.json`) by at least
/// [`MIN_COST_IMPROVEMENT`] in both aggregate comparisons and critical
/// path, per thread count of every section both reports share — with the
/// **same** skyline count and checksum (the optimization must not change
/// a single output row). Runs on the two committed files, so it holds
/// regardless of `--smoke`.
///
/// # Errors
/// A report of every violated check, one per line.
pub fn improvement(pr4: &str, pr5: &str) -> Result<Vec<String>, String> {
    let pr4 = grid_of(&parse(pr4).map_err(|e| format!("BENCH_pr4.json: {e}"))?)?;
    let pr5 = grid_of(&parse(pr5).map_err(|e| format!("BENCH_pr5.json: {e}"))?)?;
    let mut notes = Vec::new();
    let mut errs = String::new();
    let mut shared = 0usize;
    for (label, new_runs) in &pr5 {
        let Some(old_runs) = pr4.get(label) else {
            continue; // section added after the scalar era: nothing to beat
        };
        for (threads, new) in new_runs {
            let Some(old) = old_runs.get(threads) else {
                continue;
            };
            shared += 1;
            #[allow(clippy::float_cmp)] // integers carried in f64; exactness is the point
            if new.skyline != old.skyline || new.checksum != old.checksum {
                errs.push_str(&format!(
                    "`{label}` threads={threads}: skyline differs from the pr4 baseline \
                     ({} / {} vs {} / {}) — the kernel changed the answer\n",
                    new.skyline, new.checksum, old.skyline, old.checksum
                ));
                continue;
            }
            for (what, new_cost, old_cost) in [
                ("comparisons", new.comparisons, old.comparisons),
                ("critical_path", new.critical_path, old.critical_path),
            ] {
                if new_cost <= 0.0 {
                    errs.push_str(&format!(
                        "`{label}` threads={threads}: non-positive {what} in BENCH_pr5.json\n"
                    ));
                    continue;
                }
                let ratio = old_cost / new_cost;
                if ratio < MIN_COST_IMPROVEMENT {
                    errs.push_str(&format!(
                        "`{label}` threads={threads}: {what} improved only {ratio:.2}× \
                         ({old_cost:.0} → {new_cost:.0}), gate requires \
                         {MIN_COST_IMPROVEMENT:.1}×\n"
                    ));
                } else {
                    notes.push(format!(
                        "`{label}` threads={threads}: {what} {old_cost:.0} → {new_cost:.0} \
                         ({ratio:.2}×, identical skyline)"
                    ));
                }
            }
        }
    }
    if shared == 0 {
        return Err("BENCH_pr4.json and BENCH_pr5.json share no (section, threads) runs".into());
    }
    if errs.is_empty() {
        Ok(notes)
    } else {
        Err(errs)
    }
}

/// The PR 9 acceptance check, run on the committed `BENCH_pr9.json`:
/// every `-batch` section must pair with its row twin (`full` ↔
/// `full-batch`, `smoke` ↔ `smoke-batch`) and, per shared thread count,
/// produce the **same** skyline count and checksum while strictly
/// reducing both `rows_materialized` and `bytes_moved`. At `threads=1`
/// the batch pipeline's wall clock (sort + filter) must additionally
/// stay within [`BATCH_WALL_SLACK`] of the row pipeline's.
///
/// # Errors
/// A report of every violated check, one per line, or a missing-pair /
/// missing-counter description.
pub fn batch_beats_row(report: &str) -> Result<Vec<String>, String> {
    let grid = grid_of(&parse(report).map_err(|e| format!("BENCH_pr9.json: {e}"))?)?;
    let mut notes = Vec::new();
    let mut errs = String::new();
    let mut pairs = 0usize;
    for (row_label, batch_label) in [("full", "full-batch"), ("smoke", "smoke-batch")] {
        let (Some(row_runs), Some(batch_runs)) = (grid.get(row_label), grid.get(batch_label))
        else {
            continue;
        };
        pairs += 1;
        for (threads, row) in row_runs {
            let Some(batch) = batch_runs.get(threads) else {
                errs.push_str(&format!(
                    "`{batch_label}` has no threads={threads} run to pair with `{row_label}`\n"
                ));
                continue;
            };
            #[allow(clippy::float_cmp)] // integers carried in f64; exactness is the point
            if batch.skyline != row.skyline || batch.checksum != row.checksum {
                errs.push_str(&format!(
                    "`{batch_label}` threads={threads}: skyline differs from `{row_label}` \
                     ({} / {} vs {} / {}) — the columnar pipeline changed the answer\n",
                    batch.skyline, batch.checksum, row.skyline, row.checksum
                ));
                continue;
            }
            for key in ["rows_materialized", "bytes_moved"] {
                let (Some(new), Some(old)) = (batch.counters.get(key), row.counters.get(key))
                else {
                    errs.push_str(&format!(
                        "`{row_label}`/`{batch_label}` threads={threads}: missing `{key}` — \
                         regenerate the baseline\n"
                    ));
                    continue;
                };
                if new < old {
                    notes.push(format!(
                        "`{batch_label}` threads={threads}: {key} {old:.0} → {new:.0} \
                         ({:.2}×, identical skyline)",
                        old / new
                    ));
                } else {
                    errs.push_str(&format!(
                        "`{batch_label}` threads={threads}: {key} {new:.0} does not beat \
                         `{row_label}`'s {old:.0}\n"
                    ));
                }
            }
            if *threads == 1 {
                let (row_wall, batch_wall) =
                    (row.sort_ms + row.filter_ms, batch.sort_ms + batch.filter_ms);
                if batch_wall > row_wall * BATCH_WALL_SLACK {
                    errs.push_str(&format!(
                        "`{batch_label}` threads=1: wall {batch_wall:.1}ms exceeds \
                         `{row_label}`'s {row_wall:.1}ms beyond the {:.0}% slack\n",
                        (BATCH_WALL_SLACK - 1.0) * 100.0
                    ));
                } else {
                    notes.push(format!(
                        "`{batch_label}` threads=1: wall {batch_wall:.1}ms vs \
                         `{row_label}` {row_wall:.1}ms — ok"
                    ));
                }
            }
        }
    }
    if pairs == 0 {
        return Err("BENCH_pr9.json has no row/batch section pair".into());
    }
    if errs.is_empty() {
        Ok(notes)
    } else {
        Err(errs)
    }
}

/// Deterministic per-run scalars of the sharded report
/// (`BENCH_pr10.json`); compared exactly between committed and fresh
/// runs and used by the [`shard_beats_naive`] laws.
const SHARD_EXACT: &[&str] = &[
    "comparisons",
    "coordinator_comparisons",
    "bytes_exchanged",
    "exchange_frames",
    "pruned_by_representatives",
    "union_entries",
    "skyline",
];

/// One run of the sharded report, keyed by (strategy, shards).
#[derive(Debug, Clone, PartialEq)]
struct ShardRun {
    wall_ms: f64,
    /// The [`SHARD_EXACT`] scalars, by name.
    fields: BTreeMap<&'static str, f64>,
    shard_comparisons: Vec<f64>,
    shard_bytes_exchanged: Vec<f64>,
    checksum: String,
}

/// One section of the sharded report: the single-node baseline plus the
/// (strategy, shards)-keyed runs.
#[derive(Debug, Clone, PartialEq)]
struct ShardSection {
    baseline_skyline: f64,
    baseline_checksum: String,
    runs: BTreeMap<(String, u64), ShardRun>,
}

/// section label → shard section
type ShardGrid = BTreeMap<String, ShardSection>;

fn shard_grid_of(doc: &Json) -> Result<ShardGrid, String> {
    let mut grid = ShardGrid::new();
    for sec in doc.get("sections").ok_or("report has no `sections`")?.arr() {
        let label = sec
            .get("label")
            .and_then(Json::str)
            .ok_or("section without label")?
            .to_string();
        let mut runs = BTreeMap::new();
        for r in sec.get("runs").ok_or("section without runs")?.arr() {
            let f = |k: &str| -> Result<f64, String> {
                r.get(k)
                    .and_then(Json::num)
                    .ok_or_else(|| format!("run missing `{k}`"))
            };
            let nums = |k: &str| -> Result<Vec<f64>, String> {
                r.get(k)
                    .map(|v| v.arr().iter().filter_map(Json::num).collect())
                    .ok_or_else(|| format!("run missing `{k}`"))
            };
            let mut fields = BTreeMap::new();
            for k in SHARD_EXACT {
                fields.insert(*k, f(k)?);
            }
            runs.insert(
                (
                    r.get("strategy")
                        .and_then(Json::str)
                        .ok_or("run missing `strategy`")?
                        .to_string(),
                    f("shards")? as u64,
                ),
                ShardRun {
                    wall_ms: f("wall_ms")?,
                    fields,
                    shard_comparisons: nums("shard_comparisons")?,
                    shard_bytes_exchanged: nums("shard_bytes_exchanged")?,
                    checksum: r
                        .get("checksum")
                        .and_then(Json::str)
                        .ok_or("run missing `checksum`")?
                        .to_string(),
                },
            );
        }
        grid.insert(
            label,
            ShardSection {
                baseline_skyline: sec
                    .get("baseline_skyline")
                    .and_then(Json::num)
                    .ok_or("section missing `baseline_skyline`")?,
                baseline_checksum: sec
                    .get("baseline_checksum")
                    .and_then(Json::str)
                    .ok_or("section missing `baseline_checksum`")?
                    .to_string(),
                runs,
            },
        );
    }
    Ok(grid)
}

/// Diff a fresh sharded report against the committed `BENCH_pr10.json`:
/// the [`SHARD_EXACT`] scalars, per-shard counter arrays, and checksums
/// must match exactly; `wall_ms` within [`MAX_WALL_REGRESSION`].
/// Sections present only in the committed baseline are skipped (the
/// `--smoke` shape).
///
/// # Errors
/// A report of every violated check, one per line.
pub fn shard_compare(committed: &str, fresh: &str) -> Result<Vec<String>, String> {
    let committed =
        shard_grid_of(&parse(committed).map_err(|e| format!("committed shard report: {e}"))?)?;
    let fresh = shard_grid_of(&parse(fresh).map_err(|e| format!("fresh shard report: {e}"))?)?;
    let mut notes = Vec::new();
    let mut errs = String::new();
    for (label, sec) in &fresh {
        let Some(base_sec) = committed.get(label) else {
            errs.push_str(&format!(
                "section `{label}` missing from the committed baseline — regenerate it\n"
            ));
            continue;
        };
        if (sec.baseline_skyline, &sec.baseline_checksum)
            != (base_sec.baseline_skyline, &base_sec.baseline_checksum)
        {
            errs.push_str(&format!(
                "`{label}`: single-node baseline changed ({} / {} → {} / {})\n",
                base_sec.baseline_skyline,
                base_sec.baseline_checksum,
                sec.baseline_skyline,
                sec.baseline_checksum
            ));
        }
        for ((strategy, shards), run) in &sec.runs {
            let Some(base) = base_sec.runs.get(&(strategy.clone(), *shards)) else {
                errs.push_str(&format!(
                    "`{label}` {strategy} shards={shards} missing from committed report\n"
                ));
                continue;
            };
            for k in SHARD_EXACT {
                let (old, new) = (base.fields[k], run.fields[k]);
                #[allow(clippy::float_cmp)] // integers carried in f64; exactness is the point
                if new != old {
                    errs.push_str(&format!(
                        "`{label}` {strategy} shards={shards}: {k} changed {old} → {new} \
                         (deterministic — regenerate the baseline deliberately)\n"
                    ));
                }
            }
            for (what, new, old) in [
                (
                    "shard_comparisons",
                    &run.shard_comparisons,
                    &base.shard_comparisons,
                ),
                (
                    "shard_bytes_exchanged",
                    &run.shard_bytes_exchanged,
                    &base.shard_bytes_exchanged,
                ),
            ] {
                if new != old {
                    errs.push_str(&format!(
                        "`{label}` {strategy} shards={shards}: {what} changed {old:?} → {new:?}\n"
                    ));
                }
            }
            if run.checksum != base.checksum {
                errs.push_str(&format!(
                    "`{label}` {strategy} shards={shards}: skyline checksum changed {} → {}\n",
                    base.checksum, run.checksum
                ));
            }
            if run.wall_ms > base.wall_ms * MAX_WALL_REGRESSION + SHARD_WALL_ABS_SLACK_MS {
                errs.push_str(&format!(
                    "`{label}` {strategy} shards={shards}: wall_ms regressed {:.1} → {:.1} \
                     (gate allows {:.0}% + {:.0}ms)\n",
                    base.wall_ms,
                    run.wall_ms,
                    (MAX_WALL_REGRESSION - 1.0) * 100.0,
                    SHARD_WALL_ABS_SLACK_MS
                ));
            } else {
                notes.push(format!(
                    "`{label}` {strategy} shards={shards}: wall {:.1}ms vs {:.1}ms baseline — ok",
                    run.wall_ms, base.wall_ms
                ));
            }
        }
    }
    if errs.is_empty() {
        Ok(notes)
    } else {
        Err(errs)
    }
}

/// The PR 10 acceptance check, run on the committed `BENCH_pr10.json`:
/// every run must reproduce the section's single-node baseline skyline
/// (count and checksum), and at every shard count the `grid` and
/// `representative` runs must each *strictly* reduce both
/// `bytes_exchanged` and `coordinator_comparisons` vs the `naive` run,
/// with `representative` actually pruning
/// (`pruned_by_representatives > 0`).
///
/// # Errors
/// A report of every violated check, one per line.
pub fn shard_beats_naive(report: &str) -> Result<Vec<String>, String> {
    let grid = shard_grid_of(&parse(report).map_err(|e| format!("BENCH_pr10.json: {e}"))?)?;
    if grid.is_empty() {
        return Err("BENCH_pr10.json has no sections".into());
    }
    let mut notes = Vec::new();
    let mut errs = String::new();
    for (label, sec) in &grid {
        for ((strategy, shards), run) in &sec.runs {
            #[allow(clippy::float_cmp)] // integers carried in f64; exactness is the point
            if run.fields["skyline"] != sec.baseline_skyline
                || run.checksum != sec.baseline_checksum
            {
                errs.push_str(&format!(
                    "`{label}` {strategy} shards={shards}: skyline ({} / {}) differs from the \
                     single-node baseline ({} / {}) — sharding changed the answer\n",
                    run.fields["skyline"],
                    run.checksum,
                    sec.baseline_skyline,
                    sec.baseline_checksum
                ));
            }
        }
        let shard_counts: Vec<u64> = sec
            .runs
            .keys()
            .filter(|(s, _)| s == "naive")
            .map(|&(_, n)| n)
            .collect();
        if shard_counts.is_empty() {
            errs.push_str(&format!("`{label}`: no naive runs to compare against\n"));
            continue;
        }
        for &n in &shard_counts {
            let naive = &sec.runs[&("naive".to_string(), n)];
            for strategy in ["grid", "representative"] {
                let Some(run) = sec.runs.get(&(strategy.to_string(), n)) else {
                    errs.push_str(&format!("`{label}`: no {strategy} run at shards={n}\n"));
                    continue;
                };
                for k in ["bytes_exchanged", "coordinator_comparisons"] {
                    let (new, old) = (run.fields[k], naive.fields[k]);
                    if new < old {
                        notes.push(format!(
                            "`{label}` {strategy} shards={n}: {k} {old:.0} → {new:.0} \
                             ({:.2}×, identical skyline)",
                            old / new
                        ));
                    } else {
                        errs.push_str(&format!(
                            "`{label}` {strategy} shards={n}: {k} {new:.0} does not beat \
                             naive's {old:.0}\n"
                        ));
                    }
                }
            }
            if let Some(rep) = sec.runs.get(&("representative".to_string(), n)) {
                if rep.fields["pruned_by_representatives"] <= 0.0 {
                    errs.push_str(&format!(
                        "`{label}` representative shards={n}: pruned nothing — the broadcast \
                         is vacuous\n"
                    ));
                }
            }
        }
    }
    if errs.is_empty() {
        Ok(notes)
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(label: &str, filter_ms: f64, comparisons: u64) -> String {
        format!(
            r#"{{ "label": "{label}", "n": 20000, "d": 7, "window_pages": 16, "cores": 1,
                  "runs": [ {{ "threads": 1, "sort_ms": 10.0, "filter_ms": {filter_ms},
                               "comparisons": {comparisons}, "critical_path": {comparisons},
                               "extra_pages": 0, "skyline": 42,
                               "checksum": "0x00deadbeef000000",
                               "speedup_wall": 1.0, "speedup_model": 1.0 }} ] }}"#
        )
    }

    fn report_of(sections: &[String]) -> String {
        format!(
            r#"{{ "schema": 1, "seed": 2003, "sections": [ {} ] }}"#,
            sections.join(", ")
        )
    }

    fn report(filter_ms: f64, comparisons: u64) -> String {
        report_of(&[section("smoke", filter_ms, comparisons)])
    }

    #[test]
    fn parses_own_report_shape() {
        let doc = parse(&report(5.0, 1000)).unwrap();
        let grid = grid_of(&doc).unwrap();
        assert_eq!(grid["smoke"][&1].skyline, 42.0);
        assert_eq!(grid["smoke"][&1].checksum, "0x00deadbeef000000");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{ \"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert_eq!(parse("  null ").unwrap(), Json::Null);
        assert_eq!(parse("[true, false, 1.5]").unwrap().arr().len(), 3);
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(5.0, 1000);
        let notes = compare(&r, &r).unwrap();
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn wall_regression_beyond_20_percent_fails() {
        let base = report(5.0, 1000);
        assert!(compare(&base, &report(5.9, 1000)).is_ok());
        let err = compare(&base, &report(6.1, 1000)).unwrap_err();
        assert!(err.contains("filter_ms regressed"), "{err}");
    }

    #[test]
    fn deterministic_drift_fails_even_when_faster() {
        let err = compare(&report(5.0, 1000), &report(1.0, 999)).unwrap_err();
        assert!(err.contains("comparisons changed"), "{err}");
    }

    #[test]
    fn baseline_only_sections_are_skipped() {
        // fresh smoke-only run vs a committed report with full + smoke
        // (the `--gate --smoke` shape): the committed side's extra
        // section must be ignored, not flagged — and drifting it must
        // still not matter.
        let committed = report_of(&[section("full", 99.0, 7), section("smoke", 5.0, 1000)]);
        assert!(compare(&committed, &report(5.0, 1000)).is_ok());
    }

    #[test]
    fn missing_fresh_section_in_committed_fails() {
        let other = report_of(&[section("full", 5.0, 1000)]);
        let err = compare(&other, &report(5.0, 1000)).unwrap_err();
        assert!(err.contains("missing from the committed"), "{err}");
    }

    #[test]
    fn block_counters_compare_only_when_both_sides_report_them() {
        // the committed pr4-era report has no block counters: a fresh
        // report that adds them must still diff clean
        let old = report(5.0, 1000);
        let with_counters = old.replace(
            "\"extra_pages\": 0,",
            "\"extra_pages\": 0, \"blocks_skipped\": 7, \"lanes_compared\": 99,",
        );
        assert!(compare(&old, &with_counters).is_ok());
        // but two counter-bearing reports must agree exactly
        let drifted = with_counters.replace("\"blocks_skipped\": 7", "\"blocks_skipped\": 8");
        let err = compare(&with_counters, &drifted).unwrap_err();
        assert!(err.contains("blocks_skipped changed"), "{err}");
    }

    #[test]
    fn improvement_gate_passes_at_1_3x_and_keeps_skyline() {
        let pr4 = report(5.0, 1300);
        let pr5 = report(4.0, 1000);
        let notes = improvement(&pr4, &pr5).unwrap();
        assert_eq!(notes.len(), 2, "comparisons + critical_path notes");
    }

    #[test]
    fn improvement_gate_rejects_weak_speedup() {
        let err = improvement(&report(5.0, 1200), &report(4.0, 1000)).unwrap_err();
        assert!(err.contains("improved only 1.20×"), "{err}");
    }

    #[test]
    fn improvement_gate_rejects_changed_skyline() {
        let pr5 = report(4.0, 1000).replace("\"skyline\": 42", "\"skyline\": 43");
        let err = improvement(&report(5.0, 1300), &pr5).unwrap_err();
        assert!(err.contains("skyline differs"), "{err}");
    }

    fn report_with_server(filter_ms: f64, comparisons: u64, p99: f64, completed: u64) -> String {
        format!(
            r#"{{ "schema": 1, "seed": 2003, "sections": [ {} ],
                 "server": {{ "workers": 2, "queries": 60, "admitted": 50, "rejected": 10,
                              "cancelled": 10, "completed": {completed},
                              "p50_ms": 1.0, "p99_ms": {p99} }} }}"#,
            section("smoke", filter_ms, comparisons)
        )
    }

    #[test]
    fn server_sections_compare_counters_exactly() {
        let base = report_with_server(5.0, 1000, 4.0, 40);
        assert!(compare(&base, &base).is_ok());
        let drifted = report_with_server(5.0, 1000, 4.0, 39);
        let err = compare(&base, &drifted).unwrap_err();
        assert!(err.contains("completed changed"), "{err}");
    }

    #[test]
    fn server_p99_regression_beyond_tolerance_fails() {
        // allowed = 4.0 × 1.2 + 5.0ms absolute slack = 9.8ms
        let base = report_with_server(5.0, 1000, 4.0, 40);
        assert!(compare(&base, &report_with_server(5.0, 1000, 9.7, 40)).is_ok());
        let err = compare(&base, &report_with_server(5.0, 1000, 9.9, 40)).unwrap_err();
        assert!(err.contains("p99_ms regressed"), "{err}");
    }

    #[test]
    fn server_section_is_skipped_when_committed_lacks_it() {
        let old = report(5.0, 1000);
        let fresh = report_with_server(5.0, 1000, 4.0, 40);
        let notes = compare(&old, &fresh).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("not in the committed")),
            "{notes:?}"
        );
        // and the reverse direction also degrades to a note
        assert!(compare(&fresh, &old).is_ok());
    }

    #[test]
    fn improvement_gate_needs_a_shared_grid() {
        let pr4 = report_of(&[section("full", 5.0, 1300)]);
        let err = improvement(&pr4, &report(4.0, 1000)).unwrap_err();
        assert!(err.contains("share no"), "{err}");
    }

    /// A single-run section carrying the movement counters the batch
    /// gate compares.
    fn movement_section(label: &str, wall: f64, rows: u64, bytes: u64) -> String {
        format!(
            r#"{{ "label": "{label}", "n": 20000, "d": 7, "window_pages": 16, "cores": 1,
                  "runs": [ {{ "threads": 1, "sort_ms": {wall}, "filter_ms": {wall},
                               "comparisons": 1000, "critical_path": 1000,
                               "extra_pages": 0, "rows_materialized": {rows},
                               "bytes_moved": {bytes}, "skyline": 42,
                               "checksum": "0x00deadbeef000000",
                               "speedup_wall": 1.0, "speedup_model": 1.0 }} ] }}"#
        )
    }

    #[test]
    fn batch_gate_passes_when_batch_strictly_wins() {
        let r = report_of(&[
            movement_section("smoke", 10.0, 21_000, 6_300_000),
            movement_section("smoke-batch", 8.0, 42, 4_000_000),
        ]);
        let notes = batch_beats_row(&r).unwrap();
        assert_eq!(
            notes.len(),
            3,
            "two movement notes + the wall note: {notes:?}"
        );
    }

    #[test]
    fn batch_gate_rejects_equal_movement() {
        let r = report_of(&[
            movement_section("smoke", 10.0, 21_000, 6_300_000),
            movement_section("smoke-batch", 8.0, 42, 6_300_000),
        ]);
        let err = batch_beats_row(&r).unwrap_err();
        assert!(
            err.contains("bytes_moved") && err.contains("does not beat"),
            "{err}"
        );
    }

    #[test]
    fn batch_gate_rejects_slow_batch_wall() {
        // slack at t=1 is 10%: 2×12.0 = 24ms vs 2×10.0 = 20ms row wall
        let r = report_of(&[
            movement_section("smoke", 10.0, 21_000, 6_300_000),
            movement_section("smoke-batch", 12.0, 42, 4_000_000),
        ]);
        let err = batch_beats_row(&r).unwrap_err();
        assert!(err.contains("wall") && err.contains("slack"), "{err}");
    }

    #[test]
    fn batch_gate_rejects_changed_skyline() {
        let r = report_of(&[
            movement_section("smoke", 10.0, 21_000, 6_300_000),
            movement_section("smoke-batch", 8.0, 42, 4_000_000)
                .replace("\"skyline\": 42", "\"skyline\": 43"),
        ]);
        let err = batch_beats_row(&r).unwrap_err();
        assert!(err.contains("skyline differs"), "{err}");
    }

    /// One shard-report run with the given strategy and exchange cost.
    fn shard_run_json(strategy: &str, shards: u64, bytes: u64, coord: u64, pruned: u64) -> String {
        format!(
            r#"{{ "strategy": "{strategy}", "shards": {shards}, "wall_ms": 10.0,
                  "comparisons": 5000, "coordinator_comparisons": {coord},
                  "shard_comparisons": [100, 100], "shard_bytes_exchanged": [50, 50],
                  "bytes_exchanged": {bytes}, "exchange_frames": 4,
                  "pruned_by_representatives": {pruned}, "union_entries": 80,
                  "skyline": 42, "checksum": "0x00deadbeef000000" }}"#
        )
    }

    fn shard_section_json(label: &str, runs: &[String]) -> String {
        format!(
            r#"{{ "label": "{label}", "n": 20000, "d": 7, "window_pages": 16,
                  "baseline_skyline": 42, "baseline_checksum": "0x00deadbeef000000",
                  "runs": [ {} ] }}"#,
            runs.join(", ")
        )
    }

    fn shard_report_of(sections: &[String]) -> String {
        format!(
            r#"{{ "schema": 1, "seed": 2003, "sections": [ {} ] }}"#,
            sections.join(", ")
        )
    }

    fn shard_report(runs: &[String]) -> String {
        shard_report_of(&[shard_section_json("shard-smoke", runs)])
    }

    fn healthy_shard_report() -> String {
        shard_report(&[
            shard_run_json("naive", 2, 1000, 900, 0),
            shard_run_json("grid", 2, 800, 700, 0),
            shard_run_json("representative", 2, 900, 800, 30),
        ])
    }

    #[test]
    fn shard_laws_pass_on_strict_reductions() {
        let notes = shard_beats_naive(&healthy_shard_report()).unwrap();
        assert_eq!(notes.len(), 4, "two counters × two strategies: {notes:?}");
    }

    #[test]
    fn shard_laws_reject_equal_bytes() {
        let r = shard_report(&[
            shard_run_json("naive", 2, 1000, 900, 0),
            shard_run_json("grid", 2, 1000, 700, 0),
            shard_run_json("representative", 2, 900, 800, 30),
        ]);
        let err = shard_beats_naive(&r).unwrap_err();
        assert!(
            err.contains("bytes_exchanged") && err.contains("does not beat"),
            "{err}"
        );
    }

    #[test]
    fn shard_laws_reject_vacuous_pruning_and_changed_skyline() {
        let r = shard_report(&[
            shard_run_json("naive", 2, 1000, 900, 0),
            shard_run_json("grid", 2, 800, 700, 0),
            shard_run_json("representative", 2, 900, 800, 0),
        ]);
        let err = shard_beats_naive(&r).unwrap_err();
        assert!(err.contains("pruned nothing"), "{err}");

        let drifted = healthy_shard_report().replacen("\"skyline\": 42", "\"skyline\": 43", 1);
        let err = shard_beats_naive(&drifted).unwrap_err();
        assert!(
            err.contains("differs from the single-node baseline"),
            "{err}"
        );
    }

    #[test]
    fn shard_compare_is_exact_on_deterministic_fields() {
        let base = healthy_shard_report();
        assert_eq!(shard_compare(&base, &base).unwrap().len(), 3);
        let drifted = base.replacen("\"bytes_exchanged\": 800", "\"bytes_exchanged\": 801", 1);
        let err = shard_compare(&base, &drifted).unwrap_err();
        assert!(err.contains("bytes_exchanged changed"), "{err}");
        let arr_drift = base.replacen("[100, 100]", "[100, 101]", 1);
        let err = shard_compare(&base, &arr_drift).unwrap_err();
        assert!(err.contains("shard_comparisons changed"), "{err}");
    }

    #[test]
    fn shard_compare_skips_committed_only_sections_and_bounds_wall() {
        // committed full + smoke, fresh smoke only (the --gate --smoke
        // shape): the committed-only section is ignored
        let runs = [
            shard_run_json("naive", 2, 1000, 900, 0),
            shard_run_json("grid", 2, 800, 700, 0),
            shard_run_json("representative", 2, 900, 800, 30),
        ];
        let both = shard_report_of(&[
            shard_section_json("shard-full", &runs),
            shard_section_json("shard-smoke", &runs),
        ]);
        assert!(shard_compare(&both, &healthy_shard_report()).is_ok());
        // but a fresh section absent from the committed baseline fails
        let err = shard_compare(&healthy_shard_report(), &both).unwrap_err();
        assert!(err.contains("missing from the committed baseline"), "{err}");
        // wall regression beyond 20% + the absolute slack fails
        // (allowed = 10.0 × 1.2 + 50ms = 62ms)
        let near = healthy_shard_report().replace("\"wall_ms\": 10.0", "\"wall_ms\": 61.9");
        assert!(shard_compare(&healthy_shard_report(), &near).is_ok());
        let slow = healthy_shard_report().replace("\"wall_ms\": 10.0", "\"wall_ms\": 62.1");
        let err = shard_compare(&healthy_shard_report(), &slow).unwrap_err();
        assert!(err.contains("wall_ms regressed"), "{err}");
    }

    #[test]
    fn batch_gate_needs_a_pair_and_the_counters() {
        let err = batch_beats_row(&report(5.0, 1000)).unwrap_err();
        assert!(err.contains("no row/batch section pair"), "{err}");
        // a pair whose row side predates the movement counters fails
        // loudly instead of passing vacuously
        let r = report_of(&[
            section("smoke", 10.0, 1000),
            movement_section("smoke-batch", 8.0, 42, 4_000_000),
        ]);
        let err = batch_beats_row(&r).unwrap_err();
        assert!(err.contains("missing `rows_materialized`"), "{err}");
    }
}
