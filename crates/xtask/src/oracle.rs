//! The differential oracle gate (`cargo xtask oracle`).
//!
//! Every skyline algorithm in the workspace — SFS under both presort
//! orders, BNL, the parallel partition/merge, strata, and the 1-skyband
//! — is run against the naive O(n²) oracle over uniform, correlated and
//! anti-correlated workloads (the paper's §5 evaluation grid) at several
//! dimensionalities and sizes. Any disagreement is a correctness bug, no
//! matter what the unit tests think.

use skyline_core::algo::{bnl, naive, sfs, strata, MemSortOrder};
use skyline_core::skyband::skyband;
use skyline_core::{parallel_skyline, KeyMatrix};
use skyline_relation::gen::{Distribution, WorkloadSpec};
use skyline_relation::RecordLayout;

/// One disagreement with the oracle.
#[derive(Debug)]
pub struct Mismatch {
    /// Which algorithm disagreed.
    pub algo: String,
    /// Workload description (distribution/d/n/seed).
    pub workload: String,
    /// What the oracle says (sorted indices).
    pub expected: Vec<usize>,
    /// What the algorithm said (sorted indices).
    pub got: Vec<usize>,
}

fn keys_for(dist: Distribution, d: usize, n: usize, seed: u64) -> KeyMatrix {
    let spec = WorkloadSpec {
        dist,
        domain: (0, 9999),
        layout: RecordLayout::new(d, 0),
        ..WorkloadSpec::paper(n, seed)
    };
    KeyMatrix::new(d, spec.generate_keys(d))
}

/// Verify strata stratum-by-stratum against iterated oracle removal:
/// stratum `i` must be the oracle skyline of the rows left after
/// removing strata `0..i`.
fn check_strata(
    km: &KeyMatrix,
    order: MemSortOrder,
    workload: &str,
    mismatches: &mut Vec<Mismatch>,
) {
    let (strata_sets, _) = strata(km, 4, order);
    let mut remaining: Vec<usize> = (0..km.n()).collect();
    for (s, stratum) in strata_sets.iter().enumerate() {
        if remaining.is_empty() {
            break;
        }
        let sub = km.select(&remaining);
        let expect: Vec<usize> = {
            let mut e: Vec<usize> = naive(&sub).indices.iter().map(|&i| remaining[i]).collect();
            e.sort_unstable();
            e
        };
        let mut got = stratum.clone();
        got.sort_unstable();
        if got != expect {
            mismatches.push(Mismatch {
                algo: format!("strata[{s}]/{order:?}"),
                workload: workload.to_string(),
                expected: expect,
                got,
            });
            return;
        }
        remaining.retain(|i| !stratum.contains(i));
    }
}

/// Run the whole gate. `quick` shrinks the grid (used by self-tests).
pub fn run(quick: bool) -> Result<usize, Vec<Mismatch>> {
    let dists: &[(&str, Distribution)] = &[
        ("uniform", Distribution::UniformIndependent),
        ("correlated", Distribution::Correlated { jitter: 0.05 }),
        (
            "anticorrelated",
            Distribution::AntiCorrelated { jitter: 0.05 },
        ),
    ];
    let (dims, sizes, seeds): (&[usize], &[usize], &[u64]) = if quick {
        (&[2, 3], &[120], &[1])
    } else {
        (&[1, 2, 3, 4], &[200, 1000], &[1, 2, 3])
    };
    let mut cases = 0usize;
    let mut mismatches = Vec::new();
    for &(dname, dist) in dists {
        for &d in dims {
            for &n in sizes {
                for &seed in seeds {
                    let km = keys_for(dist, d, n, seed);
                    let workload = format!("{dname} d={d} n={n} seed={seed}");
                    let expect = naive(&km).sorted().indices;

                    for order in [MemSortOrder::Nested, MemSortOrder::Entropy] {
                        let got = sfs(&km, order).sorted().indices;
                        if got != expect {
                            mismatches.push(Mismatch {
                                algo: format!("sfs/{order:?}"),
                                workload: workload.clone(),
                                expected: expect.clone(),
                                got,
                            });
                        }
                        check_strata(&km, order, &workload, &mut mismatches);
                        cases += 2;
                    }

                    let got = bnl(&km).sorted().indices;
                    if got != expect {
                        mismatches.push(Mismatch {
                            algo: "bnl".into(),
                            workload: workload.clone(),
                            expected: expect.clone(),
                            got,
                        });
                    }

                    match parallel_skyline(&km, 4) {
                        Ok(got) => {
                            if got != expect {
                                mismatches.push(Mismatch {
                                    algo: "parallel_skyline".into(),
                                    workload: workload.clone(),
                                    expected: expect.clone(),
                                    got,
                                });
                            }
                        }
                        Err(e) => mismatches.push(Mismatch {
                            algo: format!("parallel_skyline ({e})"),
                            workload: workload.clone(),
                            expected: expect.clone(),
                            got: Vec::new(),
                        }),
                    }

                    let mut got = skyband(&km, 1);
                    got.sort_unstable();
                    if got != expect {
                        mismatches.push(Mismatch {
                            algo: "skyband(1)".into(),
                            workload: workload.clone(),
                            expected: expect.clone(),
                            got,
                        });
                    }
                    cases += 3;
                }
            }
        }
    }
    if mismatches.is_empty() {
        Ok(cases)
    } else {
        Err(mismatches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo::presort_indices;
    use skyline_core::audit::check_topological;

    #[test]
    fn quick_grid_agrees_with_oracle() {
        let cases = run(true).expect("no algorithm may disagree with the oracle");
        assert!(cases > 0);
    }

    /// The third seeded violation the gate must catch: a presort stream
    /// scrambled behind the sorter's back is not topological, and the
    /// auditor the operators run under `check-invariants` says so.
    #[test]
    fn scrambled_presort_stream_violates_dominance_order() {
        let km = keys_for(Distribution::UniformIndependent, 3, 200, 7);
        let mut order = presort_indices(&km, MemSortOrder::Entropy);
        assert!(check_topological(&km, &order, "oracle").is_ok());
        order.reverse(); // dominators now come last: order contract broken
        let v = check_topological(&km, &order, "oracle")
            .expect_err("a reversed entropy order must violate the presort contract");
        assert!(v.to_string().contains("not a topological sort"));
    }
}
