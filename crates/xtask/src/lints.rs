//! The token-level lints behind `cargo xtask analyze`.
//!
//! 1. **raw-io** — no direct `std::fs` / `File` I/O outside
//!    `crates/storage/src/disk.rs`, the one place where page I/O is
//!    counted by `storage::io_stats`. The paper's experiments are judged
//!    in page I/Os; a stray `File::open` is an unaccounted side channel.
//! 2. **doc-sections** — public fallible APIs document their failure
//!    modes: a `pub fn … -> Result<…>` needs an `# Errors` doc section, a
//!    `pub fn` whose body can panic needs `# Panics`.
//!
//! These two are textual by nature (a token's mere presence is the
//! finding), so they stay line-oriented. The dataflow lints — including
//! the statement-accurate `hot-path-panic` that replaced the token
//! version — live in [`crate::analyze`] and run over the parsed model of
//! [`crate::model`].
//!
//! Lints run on cleaned source (see [`crate::scan`]) and skip
//! `#[cfg(test)]` items and `check-invariants`-gated instrumentation
//! (the auditor's *job* is to panic).

use crate::scan::{gated_regions, CleanSource};

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint identifier (`hot-path-panic`, `raw-io`, `doc-sections`).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was matched, for the report.
    pub excerpt: String,
}

/// Directories (and single files) whose code is an operator hot path.
pub const HOT_PATHS: &[&str] = &[
    "crates/exec/src",
    "crates/core/src/external",
    "crates/core/src/dominance_block.rs",
    "crates/exchange/src",
    "crates/storage/src",
    "crates/server/src",
];

/// Files allowed to touch `std::fs` directly: the `io_stats`-counted
/// disk layer itself.
pub const RAW_IO_ALLOWED: &[&str] = &["crates/storage/src/disk.rs"];

/// The panic-family call tokens (shared with [`crate::analyze`]).
pub const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const RAW_IO_TOKENS: &[&str] = &[
    "std::fs",
    "fs::File",
    "File::open(",
    "File::create(",
    "OpenOptions",
];

/// Attribute prefixes whose gated items the panic lints ignore.
pub const EXEMPT_GATES: &[&str] = &[
    "#[cfg(test)]",
    "#[cfg(all(test",
    "#[test]",
    "#[cfg(feature = \"check-invariants\")]",
    "#[cfg(all(test, feature = \"check-invariants\"))]",
];

fn under(path: &str, dirs: &[&str]) -> bool {
    dirs.iter().any(|d| path.starts_with(d))
}

/// `haystack` contains `tok` at an identifier boundary — so
/// `File::create(` does not fire on `HeapFile::create(`.
pub fn has_token(haystack: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(p) = haystack[from..].find(tok) {
        let at = from + p;
        let bounded = !tok.starts_with(|c: char| c.is_alphanumeric() || c == '_')
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if bounded {
            return true;
        }
        from = at + tok.len();
    }
    false
}

/// Run all lints over one cleaned file.
pub fn lint_file(path: &str, cs: &CleanSource) -> Vec<Finding> {
    let mut out = Vec::new();
    if path.starts_with("crates/xtask") {
        return out; // the linter itself: needs fs, prints, and panics in tests
    }
    let exempt = gated_regions(cs, EXEMPT_GATES);
    if !under(path, RAW_IO_ALLOWED) {
        token_lint(path, cs, &exempt, "raw-io", RAW_IO_TOKENS, &mut out);
    }
    doc_section_lint(path, cs, &exempt, &mut out);
    out
}

fn token_lint(
    path: &str,
    cs: &CleanSource,
    exempt: &[bool],
    lint: &'static str,
    tokens: &[&str],
    out: &mut Vec<Finding>,
) {
    for (li, line) in cs.code.iter().enumerate() {
        if exempt[li] {
            continue;
        }
        for tok in tokens {
            if has_token(line, tok) {
                out.push(Finding {
                    lint,
                    file: path.to_string(),
                    line: li + 1,
                    excerpt: (*tok).to_string(),
                });
            }
        }
    }
}

/// `pub fn` declarations that return `Result` need `# Errors` docs;
/// those whose bodies contain panic-family tokens need `# Panics`.
fn doc_section_lint(path: &str, cs: &CleanSource, exempt: &[bool], out: &mut Vec<Finding>) {
    for (li, line) in cs.code.iter().enumerate() {
        if exempt[li] {
            continue;
        }
        let t = line.trim_start();
        let is_decl = t.starts_with("pub fn ")
            || t.starts_with("pub async fn ")
            || t.starts_with("pub const fn ")
            || t.starts_with("pub unsafe fn ");
        if !is_decl {
            continue;
        }
        let docs = doc_block_above(cs, li);
        let (sig, body_start) = signature_of(&cs.code, li);
        // `has_token` so `RunResult`/`BenchResult` returns don't count
        let returns_result = sig
            .split_once("->")
            .is_some_and(|(_, ret)| has_token(ret, "Result"));
        if returns_result && !docs.contains("# Errors") {
            out.push(Finding {
                lint: "doc-sections",
                file: path.to_string(),
                line: li + 1,
                excerpt: "pub fn returning Result lacks an `# Errors` doc section".to_string(),
            });
        }
        if let Some(body_li) = body_start {
            if body_can_panic(&cs.code, exempt, body_li) && !docs.contains("# Panics") {
                out.push(Finding {
                    lint: "doc-sections",
                    file: path.to_string(),
                    line: li + 1,
                    excerpt: "pub fn that can panic lacks a `# Panics` doc section".to_string(),
                });
            }
        }
    }
}

/// Contiguous doc comments directly above line `li`, looking through
/// attribute lines.
fn doc_block_above(cs: &CleanSource, li: usize) -> String {
    let mut parts = Vec::new();
    let mut j = li;
    while j > 0 {
        j -= 1;
        let code = cs.code[j].trim();
        let doc = cs.docs[j].trim();
        if !doc.is_empty() {
            parts.push(doc.to_string());
        } else if code.starts_with("#[") || code.ends_with(']') {
            continue; // attribute (possibly wrapped)
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join("\n")
}

/// The declaration text from line `li` up to its `{` or `;`, plus the
/// line where the body opens (None for trait-method signatures).
fn signature_of(code: &[String], li: usize) -> (String, Option<usize>) {
    let mut sig = String::new();
    for (lj, line) in code.iter().enumerate().skip(li) {
        for c in line.chars() {
            match c {
                '{' => return (sig, Some(lj)),
                ';' => return (sig, None),
                _ => sig.push(c),
            }
        }
        sig.push(' ');
    }
    (sig, None)
}

/// Scan a brace-matched fn body starting at the first `{` on `body_li`
/// for panic-family tokens, skipping exempt (test / auditor) lines.
fn body_can_panic(code: &[String], exempt: &[bool], body_li: usize) -> bool {
    let mut depth = 0usize;
    let mut entered = false;
    for (lj, line) in code.iter().enumerate().skip(body_li) {
        let mut scan_from = 0;
        if !entered {
            if let Some(p) = line.find('{') {
                scan_from = p;
            }
        }
        let tail = &line[scan_from..];
        if !exempt[lj] && PANIC_TOKENS.iter().any(|tok| has_token(tail, tok)) {
            return true;
        }
        for c in tail.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::CleanSource;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        lint_file(path, &CleanSource::new(src))
    }

    #[test]
    fn heapfile_is_not_raw_io() {
        let src = "fn f() { let h = HeapFile::create(disk, 8).scan(my_fs); }\n";
        let hits = run("crates/core/src/seeded.rs", src);
        assert!(hits.iter().all(|f| f.lint != "raw-io"), "{hits:?}");
    }

    #[test]
    fn raw_io_escape_is_flagged_everywhere_but_disk() {
        let src = "use std::fs;\nfn dump() { fs::File::create(\"x\").ok(); }\n";
        let hits = run("crates/core/src/seeded.rs", src);
        assert!(hits.iter().any(|f| f.lint == "raw-io" && f.line == 1));
        assert!(hits.iter().any(|f| f.lint == "raw-io" && f.line == 2));
        // the io_stats-counted disk layer is the sanctioned place
        assert!(run("crates/storage/src/disk.rs", src)
            .iter()
            .all(|f| f.lint != "raw-io"));
    }

    #[test]
    fn missing_errors_section_is_flagged() {
        let src = "\
/// Does a thing.
pub fn fallible() -> Result<u8, String> { Err(\"x\".into()) }
/// Documented.
///
/// # Errors
/// When it rains.
pub fn fine() -> Result<u8, String> { Err(\"x\".into()) }
";
        let hits = run("crates/core/src/seeded.rs", src);
        let lines: Vec<_> = hits
            .iter()
            .filter(|f| f.lint == "doc-sections")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![2], "{hits:?}");
    }

    #[test]
    fn missing_panics_section_is_flagged() {
        let src = "\
/// Does a thing.
pub fn angry(x: Option<u8>) -> u8 { x.unwrap() }
/// # Panics
/// When `x` is None.
pub fn documented(x: Option<u8>) -> u8 { x.unwrap() }
";
        let hits = run("crates/core/src/seeded.rs", src);
        let lines: Vec<_> = hits
            .iter()
            .filter(|f| f.lint == "doc-sections")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![2], "{hits:?}");
    }

    #[test]
    fn private_and_trait_signatures_are_ignored() {
        let src = "\
fn helper() -> Result<u8, String> { Err(\"x\".into()) }
pub trait T {
    fn m(&self) -> Result<u8, String>;
}
";
        let hits = run("crates/core/src/seeded.rs", src);
        assert!(hits.iter().all(|f| f.lint != "doc-sections"), "{hits:?}");
    }
}
