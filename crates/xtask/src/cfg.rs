//! Per-function control-flow graphs over the AST-lite model of
//! [`crate::model`], plus the small dataflow engines the path-sensitive
//! lints in [`crate::analyze`] run on (DESIGN.md §15).
//!
//! A [`Cfg`] has one node per leaf statement (control statements
//! contribute their head as a node and their nested blocks as separate
//! nodes), four virtual nodes (entry and the ok/err/panic exits), a
//! virtual join node per loop, and a scope-end node per lexical block.
//! Edges model branches (`if` arms are alternatives, with a fallthrough
//! edge when there are more `if`s than `else`s), `match` arm groups
//! (alternatives; merged expression arms get a fallthrough edge so the
//! success value keeps flowing), loops (back edges, conditional exit
//! for `while`/`for`), early `return` (routed to the ok or err exit by
//! its payload), `break`/`continue` (to the innermost loop's join or
//! header), `?`-propagation (an [`EdgeKind::Err`] edge to the err
//! exit), and panic-family unwinds (an [`EdgeKind::Panic`] edge).
//!
//! Two engines run on top:
//!
//! * [`reach`] — forward may-analysis with gen/kill sets (union at
//!   joins). Its one path-sensitive refinement is edge semantics: an
//!   `Err`/`Panic` edge out of a statement carries `IN \ kill`, not
//!   `OUT` — the statement's kills (a consumed binding, a released
//!   credit) happened before the `?` propagated, while its gens (the
//!   value being bound) never materialized if the statement errored.
//! * [`dominators`] — the classic iterative intersection, used by the
//!   books-before-visibility ordering lint.
//!
//! Known approximations, all erring toward silence: closures inside
//! call parentheses stay in the statement head (no nodes), struct
//! patterns in match arms split the arm at the pattern braces (the
//! pieces are chained sequentially, merging the arm alternatives), and
//! labeled `break`/`continue` bind to the innermost loop.

use crate::lints::{has_token, PANIC_TOKENS};
use crate::model::{Block, FnModel, Stmt};

/// Virtual node: function entry.
pub const ENTRY: usize = 0;
/// Virtual node: the normal-return exit.
pub const EXIT_OK: usize = 1;
/// Virtual node: the `?`/`return Err` exit.
pub const EXIT_ERR: usize = 2;
/// Virtual node: the panic/unwind exit. Pairing lints ignore it: an
/// unwind runs `Drop` carriers, which discharge every RAII obligation.
pub const EXIT_PANIC: usize = 3;

/// What a CFG node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// One of the four virtual entry/exit nodes.
    Virtual,
    /// A leaf statement, or a control statement's head.
    Stmt,
    /// End of a lexical block: bindings declared in the block drop here.
    ScopeEnd,
    /// The virtual join point after a loop (`break` target).
    Join,
}

/// Flow semantics of an edge, which decide what the dataflow carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Normal sequencing/branching: carries the source's `OUT` set.
    Seq,
    /// Loop back edge: carries `OUT`, and marks iteration boundaries.
    Back,
    /// `?`/error propagation: carries `IN \ kill` (kills happened, gens
    /// never materialized).
    Err,
    /// Panic unwind: same set semantics as [`EdgeKind::Err`].
    Panic,
}

/// One CFG node.
#[derive(Debug)]
pub struct Node {
    /// What the node stands for.
    pub kind: NodeKind,
    /// Source line (1-based) of the statement, 0 for virtual nodes.
    pub line: usize,
    /// The statement head text ("" for virtual/scope-end nodes).
    pub text: String,
    /// The statement carried a lint-exemption gate.
    pub exempt: bool,
    /// Innermost lexical block, by build order (function body = 0,
    /// `usize::MAX` for virtual nodes).
    pub block_id: usize,
    /// For the first statement of a match arm: the match-head node.
    pub arm_of: Option<usize>,
}

/// One loop's structure, for loop-scoped checks.
#[derive(Debug)]
pub struct LoopInfo {
    /// The loop-head node (condition / iterator advance).
    pub header: usize,
    /// Node-index range `[start, end)` of the loop body.
    pub body: (usize, usize),
    /// The virtual join node `break` jumps to.
    pub join: usize,
    /// Statement nodes that `continue` this loop.
    pub continues: Vec<usize>,
}

/// A per-function control-flow graph.
pub struct Cfg {
    /// Nodes; indices 0..=3 are the virtual entry/exits.
    pub nodes: Vec<Node>,
    /// Successor adjacency: `succs[n]` = `(target, kind)` pairs.
    pub succs: Vec<Vec<(usize, EdgeKind)>>,
    /// Predecessor adjacency, mirror of `succs`.
    pub preds: Vec<Vec<(usize, EdgeKind)>>,
    /// Every loop in the function, outermost first.
    pub loops: Vec<LoopInfo>,
}

impl Cfg {
    /// Nodes reachable from `starts` along `Seq`/`Back` edges without
    /// expanding any node marked in `stop` (stop nodes are marked
    /// reached but their successors are not explored).
    pub fn reach_avoiding(&self, starts: &[usize], stop: &[bool]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut work: Vec<usize> = Vec::new();
        for &s in starts {
            if !seen[s] {
                seen[s] = true;
                work.push(s);
            }
        }
        while let Some(n) = work.pop() {
            if stop[n] {
                continue;
            }
            for &(t, k) in &self.succs[n] {
                if matches!(k, EdgeKind::Seq | EdgeKind::Back) && !seen[t] {
                    seen[t] = true;
                    work.push(t);
                }
            }
        }
        seen
    }
}

enum Ctl {
    If,
    Match,
    Loop { conditional: bool },
}

/// The earliest control keyword in a statement head, if any.
fn first_control(head: &str) -> Option<Ctl> {
    let mut best: Option<(usize, &str)> = None;
    for w in ["if", "match", "loop", "while", "for"] {
        if let Some(&at) = crate::model::word_hits(head, w).first() {
            if best.is_none_or(|(b, _)| at < b) {
                best = Some((at, w));
            }
        }
    }
    match best?.1 {
        "if" => Some(Ctl::If),
        "match" => Some(Ctl::Match),
        "loop" => Some(Ctl::Loop { conditional: false }),
        _ => Some(Ctl::Loop { conditional: true }),
    }
}

fn term_hits(head: &str, word: &str) -> usize {
    crate::model::word_hits(head, word).len()
}

/// Dangling out-edges waiting for their target: `(source, kind)`.
type Frontier = Vec<(usize, EdgeKind)>;

struct LoopCtx {
    header: usize,
    join: usize,
    continues: Vec<usize>,
}

struct Builder {
    nodes: Vec<Node>,
    succs: Vec<Vec<(usize, EdgeKind)>>,
    loops: Vec<LoopInfo>,
    stack: Vec<LoopCtx>,
    next_block: usize,
}

impl Builder {
    fn node(
        &mut self,
        kind: NodeKind,
        line: usize,
        text: String,
        exempt: bool,
        block: usize,
    ) -> usize {
        self.nodes.push(Node {
            kind,
            line,
            text,
            exempt,
            block_id: block,
            arm_of: None,
        });
        self.succs.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        if !self.succs[from].contains(&(to, kind)) {
            self.succs[from].push((to, kind));
        }
    }

    fn connect(&mut self, frontier: &Frontier, to: usize) {
        for &(n, k) in frontier {
            self.edge(n, to, k);
        }
    }

    /// Build a lexical block: chain its statements, then append a
    /// scope-end node where the block's bindings drop.
    fn block(&mut self, blk: &Block, mut frontier: Frontier) -> Frontier {
        let id = self.next_block;
        self.next_block += 1;
        let mut last_line = 0;
        for stmt in &blk.stmts {
            last_line = stmt.line;
            frontier = self.stmt(stmt, frontier, id, None).1;
        }
        let s = self.node(NodeKind::ScopeEnd, last_line, String::new(), false, id);
        self.connect(&frontier, s);
        vec![(s, EdgeKind::Seq)]
    }

    /// Build one statement; returns `(head node, out frontier)`.
    fn stmt(
        &mut self,
        stmt: &Stmt,
        frontier: Frontier,
        block: usize,
        arm_of: Option<usize>,
    ) -> (usize, Frontier) {
        let n = self.node(
            NodeKind::Stmt,
            stmt.line,
            stmt.head.clone(),
            stmt.exempt,
            block,
        );
        self.nodes[n].arm_of = arm_of;
        self.connect(&frontier, n);
        if stmt.head.contains('?') {
            self.edge(n, EXIT_ERR, EdgeKind::Err);
        }
        if PANIC_TOKENS.iter().any(|t| has_token(&stmt.head, t)) {
            self.edge(n, EXIT_PANIC, EdgeKind::Panic);
        }
        let ctl = if stmt.blocks.is_empty() {
            None
        } else {
            first_control(&stmt.head)
        };
        let out = match ctl {
            Some(Ctl::If) => {
                let mut out: Frontier = Vec::new();
                for b in &stmt.blocks {
                    out.extend(self.block(b, vec![(n, EdgeKind::Seq)]));
                }
                // more `if`s than `else`s: some condition can be false
                // with no alternative branch, so the head falls through
                if term_hits(&stmt.head, "if") > term_hits(&stmt.head, "else") {
                    out.push((n, EdgeKind::Seq));
                }
                self.returned(&stmt.head, out)
            }
            Some(Ctl::Match) => {
                let out = self.match_arms(stmt, n);
                self.returned(&stmt.head, out)
            }
            Some(Ctl::Loop { conditional }) => {
                let join = self.node(NodeKind::Join, stmt.line, String::new(), false, block);
                if conditional {
                    self.edge(n, join, EdgeKind::Seq); // condition false
                }
                self.stack.push(LoopCtx {
                    header: n,
                    join,
                    continues: Vec::new(),
                });
                let body_start = self.nodes.len();
                let mut f: Frontier = vec![(n, EdgeKind::Seq)];
                for b in &stmt.blocks {
                    f = self.block(b, f);
                }
                for &(m, _) in &f {
                    self.edge(m, n, EdgeKind::Back);
                }
                let ctx = self.stack.pop().expect("loop context pushed above");
                self.loops.push(LoopInfo {
                    header: n,
                    body: (body_start, self.nodes.len()),
                    join,
                    continues: ctx.continues,
                });
                vec![(join, EdgeKind::Seq)]
            }
            None => {
                // plain statement: inline any bare/binding blocks, then
                // judge terminators on the head
                let mut f: Frontier = vec![(n, EdgeKind::Seq)];
                for b in &stmt.blocks {
                    f = self.block(b, f);
                }
                if term_hits(&stmt.head, "continue") > 0 {
                    if let Some(ctx) = self.stack.last_mut() {
                        ctx.continues.push(n);
                        let header = ctx.header;
                        for &(m, _) in &f.clone() {
                            self.edge(m, header, EdgeKind::Back);
                        }
                        return (n, Vec::new());
                    }
                }
                if term_hits(&stmt.head, "break") > 0 {
                    let target = self.stack.last().map_or(EXIT_OK, |c| c.join);
                    for &(m, _) in &f {
                        self.edge(m, target, EdgeKind::Seq);
                    }
                    return (n, Vec::new());
                }
                if term_hits(&stmt.head, "return") > 0 {
                    let target = if stmt.head.contains("Err(") {
                        EXIT_ERR
                    } else {
                        EXIT_OK
                    };
                    for &(m, _) in &f {
                        self.edge(m, target, EdgeKind::Seq);
                    }
                    return (n, Vec::new());
                }
                f
            }
        };
        (n, out)
    }

    /// `match` arms: the first nested block's statements grouped into
    /// alternatives. Struct patterns split an arm at the pattern braces;
    /// the `=>`-led continuation pieces are chained sequentially behind
    /// the group head (merging alternatives — errs toward silence). A
    /// group whose arrows outnumber its blocks and terminators has at
    /// least one merged expression arm and falls through to the join.
    fn match_arms(&mut self, stmt: &Stmt, n: usize) -> Frontier {
        let arms = &stmt.blocks[0];
        let arm_block = self.next_block;
        self.next_block += 1;
        let mut out: Frontier = Vec::new();
        if arms.stmts.is_empty() {
            out.push((n, EdgeKind::Seq));
        } else {
            let mut groups: Vec<Vec<&Stmt>> = Vec::new();
            for s in &arms.stmts {
                if s.head.trim_start().starts_with("=>") && !groups.is_empty() {
                    groups.last_mut().expect("non-empty checked").push(s);
                } else {
                    groups.push(vec![s]);
                }
            }
            for g in groups {
                let mut f: Frontier = vec![(n, EdgeKind::Seq)];
                for (i, s) in g.iter().enumerate() {
                    let arm_of = if i == 0 { Some(n) } else { None };
                    let (an, nf) = self.stmt(s, f, arm_block, arm_of);
                    f = nf;
                    let arrows = s.head.matches("=>").count();
                    let terms = term_hits(&s.head, "return")
                        + term_hits(&s.head, "continue")
                        + term_hits(&s.head, "break");
                    if arrows > s.blocks.len() + terms {
                        f.push((an, EdgeKind::Seq)); // merged expression arm
                    }
                }
                out.extend(f);
            }
        }
        for b in &stmt.blocks[1..] {
            out = self.block(b, out);
        }
        out
    }

    /// `return <if/match expr>`: the composite's value leaves the
    /// function — redirect the would-be join frontier to the exit.
    fn returned(&mut self, head: &str, out: Frontier) -> Frontier {
        if term_hits(head, "return") == 0 {
            return out;
        }
        let target = if head.contains("Err(") {
            EXIT_ERR
        } else {
            EXIT_OK
        };
        for &(m, k) in &out {
            self.edge(m, target, k);
        }
        Vec::new()
    }
}

/// Build the CFG for one function, `None` when it has no body.
pub fn build(f: &FnModel) -> Option<Cfg> {
    let body = f.body.as_ref()?;
    let mut b = Builder {
        nodes: Vec::new(),
        succs: Vec::new(),
        loops: Vec::new(),
        stack: Vec::new(),
        next_block: 0,
    };
    for _ in 0..4 {
        b.node(NodeKind::Virtual, 0, String::new(), false, usize::MAX);
    }
    let f = b.block(body, vec![(ENTRY, EdgeKind::Seq)]);
    b.connect(&f, EXIT_OK);
    let mut preds: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); b.nodes.len()];
    for (from, outs) in b.succs.iter().enumerate() {
        for &(to, k) in outs {
            preds[to].push((from, k));
        }
    }
    Some(Cfg {
        nodes: b.nodes,
        succs: b.succs,
        preds,
        loops: b.loops,
    })
}

/// Fixpoint result of a forward may-analysis: per-node bit sets (bit
/// `i` = obligation `i` may be live), capped at 64 obligations per
/// function — beyond that, extra obligations are silently untracked
/// (erring toward silence; no real function comes close).
pub struct Reach {
    /// Facts live on entry to each node.
    pub ins: Vec<u64>,
    /// Facts live on exit from each node (`(IN \ kill) ∪ gen`).
    pub outs: Vec<u64>,
}

/// What an edge of `kind` out of node `p` carries, given the fixpoint.
pub fn edge_set(reach: &Reach, kill: &[u64], p: usize, kind: EdgeKind) -> u64 {
    match kind {
        EdgeKind::Err | EdgeKind::Panic => reach.ins[p] & !kill[p],
        EdgeKind::Seq | EdgeKind::Back => reach.outs[p],
    }
}

/// Forward may-analysis over the CFG with per-node gen/kill bit sets.
pub fn reach(cfg: &Cfg, gen: &[u64], kill: &[u64]) -> Reach {
    let n = cfg.nodes.len();
    let mut r = Reach {
        ins: vec![0; n],
        outs: vec![0; n],
    };
    loop {
        let mut changed = false;
        for v in 0..n {
            let mut i = 0u64;
            for &(p, k) in &cfg.preds[v] {
                i |= edge_set(&r, kill, p, k);
            }
            let o = (i & !kill[v]) | gen[v];
            if i != r.ins[v] || o != r.outs[v] {
                r.ins[v] = i;
                r.outs[v] = o;
                changed = true;
            }
        }
        if !changed {
            return r;
        }
    }
}

/// Dominator sets (as bit-matrix rows): `a` dominates `b` iff every
/// path from entry to `b` passes through `a`. Iterative intersection
/// over predecessors of every edge kind.
pub fn dominators(cfg: &Cfg) -> Vec<Vec<u64>> {
    let n = cfg.nodes.len();
    let words = n.div_ceil(64);
    let full = vec![u64::MAX; words];
    let mut dom: Vec<Vec<u64>> = vec![full; n];
    dom[ENTRY] = vec![0; words];
    dom[ENTRY][0] = 1; // only the entry dominates the entry
    loop {
        let mut changed = false;
        for v in 0..n {
            if v == ENTRY || cfg.preds[v].is_empty() {
                continue;
            }
            let mut new = vec![u64::MAX; words];
            for &(p, _) in &cfg.preds[v] {
                for (w, bits) in new.iter_mut().enumerate() {
                    *bits &= dom[p][w];
                }
            }
            new[v / 64] |= 1u64 << (v % 64);
            if new != dom[v] {
                dom[v] = new;
                changed = true;
            }
        }
        if !changed {
            return dom;
        }
    }
}

/// Does node `a` dominate node `b` under `doms` = [`dominators`]?
pub fn dominates(doms: &[Vec<u64>], a: usize, b: usize) -> bool {
    doms[b][a / 64] >> (a % 64) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::file_model;
    use crate::scan::CleanSource;

    fn cfg_of(src: &str) -> Cfg {
        let m = file_model("crates/exec/src/t.rs", &CleanSource::new(src));
        build(&m.fns[0]).expect("fn has a body")
    }

    fn find(cfg: &Cfg, needle: &str) -> usize {
        cfg.nodes
            .iter()
            .position(|n| n.text.contains(needle))
            .unwrap_or_else(|| panic!("no node containing {needle:?}"))
    }

    #[test]
    fn straight_line_flows_entry_to_ok_exit() {
        let cfg = cfg_of("fn f() { a(); b(); }\n");
        let a = find(&cfg, "a()");
        let b = find(&cfg, "b()");
        assert!(cfg.succs[ENTRY].iter().any(|&(t, _)| t == a));
        assert!(cfg.succs[a].iter().any(|&(t, _)| t == b));
        // b -> scope end -> exit ok
        let doms = dominators(&cfg);
        assert!(dominates(&doms, a, EXIT_OK));
        assert!(dominates(&doms, b, EXIT_OK));
    }

    #[test]
    fn question_mark_adds_an_err_edge_with_in_minus_kill_semantics() {
        let cfg = cfg_of("fn f() -> Result<(), E> { let x = mk()?; use_it(x)?; Ok(()) }\n");
        let mk = find(&cfg, "mk()");
        let use_it = find(&cfg, "use_it");
        assert!(cfg.succs[mk].contains(&(EXIT_ERR, EdgeKind::Err)));
        // gen x at mk, kill at use_it
        let mut gen = vec![0u64; cfg.nodes.len()];
        let mut kill = vec![0u64; cfg.nodes.len()];
        gen[mk] = 1;
        kill[use_it] = 1;
        let r = reach(&cfg, &gen, &kill);
        // mk's own err edge does not carry the obligation it gens
        assert_eq!(edge_set(&r, &kill, mk, EdgeKind::Err), 0);
        // use_it's err edge has already consumed it
        assert_eq!(edge_set(&r, &kill, use_it, EdgeKind::Err), 0);
        // but it IS live on entry to use_it
        assert_eq!(r.ins[use_it], 1);
    }

    #[test]
    fn if_without_else_falls_through_and_joins() {
        let cfg = cfg_of("fn f(c: bool) { if c { a(); } tail(); }\n");
        let iff = find(&cfg, "if c");
        let a = find(&cfg, "a()");
        let tail = find(&cfg, "tail()");
        let doms = dominators(&cfg);
        assert!(dominates(&doms, iff, tail), "head dominates the join");
        assert!(!dominates(&doms, a, tail), "branch body does not");
    }

    #[test]
    fn exhaustive_if_else_has_no_fallthrough() {
        let cfg = cfg_of("fn f(c: bool) -> u32 { let v = if c { a() } else { b() }; v }\n");
        let iff = find(&cfg, "if c");
        // every successor of the head is a branch entry, not the join
        let branch_entries: Vec<usize> = cfg.succs[iff]
            .iter()
            .filter(|(t, _)| !matches!(t, &EXIT_ERR | &EXIT_PANIC))
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(branch_entries.len(), 2, "{branch_entries:?}");
        for t in branch_entries {
            assert!(cfg.nodes[t].text.contains("a()") || cfg.nodes[t].text.contains("b()"));
        }
    }

    #[test]
    fn match_arms_are_alternatives_and_merged_arms_fall_through() {
        // block-bodied arms: alternatives; `Ok(x) => x, Err(_) =>` keeps
        // a fallthrough for the merged expression arm
        let src = "\
fn f() -> u32 {
    let v = match mk() {
        Ok(x) => x,
        Err(_) => {
            return 0;
        }
    };
    use_it(v)
}
";
        let cfg = cfg_of(src);
        let arm = find(&cfg, "Ok(x)");
        let use_it = find(&cfg, "use_it");
        let doms = dominators(&cfg);
        assert!(
            dominates(&doms, arm, use_it),
            "the merged success arm is on every path to the tail"
        );
        // the return inside the Err block leaves via EXIT_OK
        let ret = find(&cfg, "return 0");
        assert!(cfg.succs[ret].iter().any(|&(t, _)| t == EXIT_OK));
    }

    #[test]
    fn loops_have_back_edges_and_breaks_reach_the_join() {
        let src = "\
fn f() {
    loop {
        if done() {
            break;
        }
        step();
    }
    after();
}
";
        let cfg = cfg_of(src);
        let brk = find(&cfg, "break");
        let after = find(&cfg, "after");
        assert_eq!(cfg.loops.len(), 1);
        let lp = &cfg.loops[0];
        // break flows to the loop join, which flows onward to after()
        let seen = cfg.reach_avoiding(&[brk], &vec![false; cfg.nodes.len()]);
        assert!(seen[lp.join] && seen[after]);
        // the body's scope end loops back to the header
        assert!(
            cfg.preds[lp.header]
                .iter()
                .any(|&(_, k)| k == EdgeKind::Back),
            "no back edge found"
        );
    }

    #[test]
    fn continue_binds_to_the_innermost_loop() {
        let src = "\
fn f() {
    while let Some(x) = src.next() {
        for y in x.parts() {
            if skip(y) {
                continue;
            }
            eat(y);
        }
        check();
    }
}
";
        let cfg = cfg_of(src);
        let inner = cfg
            .loops
            .iter()
            .find(|l| cfg.nodes[l.header].text.contains("for y"))
            .expect("inner loop");
        assert_eq!(inner.continues.len(), 1);
        let outer = cfg
            .loops
            .iter()
            .find(|l| cfg.nodes[l.header].text.contains("while let"))
            .expect("outer loop");
        assert!(outer.continues.is_empty());
    }

    #[test]
    fn reach_avoiding_stops_at_poll_nodes() {
        let src = "\
fn f(token: &CancelToken) {
    while let Some(r) = src.next() {
        if r.skip() {
            continue;
        }
        poll(Some(token), 1)?;
        eat(r);
    }
}
";
        let cfg = cfg_of(src);
        let lp = &cfg.loops[0];
        let poll = find(&cfg, "poll(Some(token)");
        let cont = find(&cfg, "continue");
        let mut stop = vec![false; cfg.nodes.len()];
        stop[poll] = true;
        let starts: Vec<usize> = cfg.succs[lp.header]
            .iter()
            .filter(|(_, k)| matches!(k, EdgeKind::Seq | EdgeKind::Back))
            .map(|&(t, _)| t)
            .collect();
        let seen = cfg.reach_avoiding(&starts, &stop);
        assert!(seen[cont], "the continue is reachable without the poll");
        let eat = find(&cfg, "eat(r)");
        assert!(!seen[eat], "past the poll is not");
    }

    #[test]
    fn return_err_routes_to_the_err_exit() {
        let cfg = cfg_of("fn f() -> Result<(), E> { if bad() { return Err(E::Bad); } Ok(()) }\n");
        let ret = find(&cfg, "return Err");
        assert!(cfg.succs[ret].iter().any(|&(t, _)| t == EXIT_ERR));
        assert!(!cfg.succs[ret].iter().any(|&(t, _)| t == EXIT_OK));
    }

    #[test]
    fn scope_end_kills_are_block_scoped() {
        // a binding made inside the if-block dies at that block's scope
        // end, not the function's
        let src = "\
fn f(c: bool) {
    if c {
        let x = mk();
        use_it();
    }
    tail();
}
";
        let cfg = cfg_of(src);
        let mk = find(&cfg, "mk()");
        let inner_block = cfg.nodes[mk].block_id;
        let scope_ends: Vec<usize> = cfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::ScopeEnd && n.block_id == inner_block)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(scope_ends.len(), 1);
        let mut gen = vec![0u64; cfg.nodes.len()];
        let mut kill = vec![0u64; cfg.nodes.len()];
        gen[mk] = 1;
        kill[scope_ends[0]] = 1;
        let r = reach(&cfg, &gen, &kill);
        assert_eq!(r.ins[scope_ends[0]], 1, "live at its scope end");
        let tail = find(&cfg, "tail()");
        assert_eq!(r.ins[tail], 0, "dead past the block");
    }

    #[test]
    fn panic_tokens_add_unwind_edges() {
        let cfg = cfg_of("fn f() { x.unwrap(); }\n");
        let u = find(&cfg, "unwrap");
        assert!(cfg.succs[u].contains(&(EXIT_PANIC, EdgeKind::Panic)));
    }
}
