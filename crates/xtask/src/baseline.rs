//! The lint baseline ratchet.
//!
//! The workspace predates the lints, so `lint-baseline.txt` records the
//! *allowed* number of findings per `(lint, file)`. New findings beyond
//! the recorded count fail the gate; dropping below it prints a nudge to
//! re-run with `--update-baseline`, which rewrites the file with the
//! current (lower) counts. Counts — not line numbers — so unrelated
//! edits don't churn the file.

use crate::lints::Finding;
use std::collections::BTreeMap;

/// Allowed findings per `(lint, file)`.
pub type Counts = BTreeMap<(String, String), usize>;

/// Aggregate findings into per-`(lint, file)` counts.
pub fn counts_of(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings {
        *counts
            .entry((f.lint.to_string(), f.file.clone()))
            .or_insert(0) += 1;
    }
    counts
}

/// Parse a baseline file. Lines are `lint<TAB>path<TAB>count`; `#`
/// comments and blank lines are skipped. Malformed lines are reported.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split('\t');
        let (lint, path, count) = match (it.next(), it.next(), it.next()) {
            (Some(l), Some(p), Some(c)) => (l, p, c),
            _ => {
                return Err(format!(
                    "baseline line {}: expected lint<TAB>path<TAB>count",
                    i + 1
                ))
            }
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count {count:?}", i + 1))?;
        counts.insert((lint.to_string(), path.to_string()), count);
    }
    Ok(counts)
}

/// Render counts back into the baseline file format.
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# Allowed lint-finding counts per (lint, file) — the ratchet floor.\n\
         # Regenerate (only ever downward!) with: cargo xtask analyze --update-baseline\n",
    );
    for ((lint, path), count) in counts {
        out.push_str(&format!("{lint}\t{path}\t{count}\n"));
    }
    out
}

/// A `(lint, file)` whose current count moved off its baseline.
#[derive(Debug, PartialEq, Eq)]
pub struct Delta {
    /// Lint identifier.
    pub lint: String,
    /// Workspace-relative path.
    pub file: String,
    /// Findings now.
    pub current: usize,
    /// Findings allowed by the baseline.
    pub allowed: usize,
}

/// Regressions (count above baseline — gate fails) and improvements
/// (count below — ratchet down) between a run and the baseline.
pub fn compare(current: &Counts, baseline: &Counts) -> (Vec<Delta>, Vec<Delta>) {
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    for ((lint, file), &cur) in current {
        let allowed = baseline
            .get(&(lint.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if cur > allowed {
            regressions.push(Delta {
                lint: lint.clone(),
                file: file.clone(),
                current: cur,
                allowed,
            });
        } else if cur < allowed {
            improvements.push(Delta {
                lint: lint.clone(),
                file: file.clone(),
                current: cur,
                allowed,
            });
        }
    }
    for ((lint, file), &allowed) in baseline {
        if !current.contains_key(&(lint.clone(), file.clone())) && allowed > 0 {
            improvements.push(Delta {
                lint: lint.clone(),
                file: file.clone(),
                current: 0,
                allowed,
            });
        }
    }
    (regressions, improvements)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        entries
            .iter()
            .map(|(l, f, c)| ((l.to_string(), f.to_string()), *c))
            .collect()
    }

    #[test]
    fn round_trips_through_text() {
        let c = counts(&[
            ("hot-path-panic", "crates/exec/src/sort.rs", 7),
            ("raw-io", "crates/bench/src/report.rs", 3),
        ]);
        assert_eq!(parse(&render(&c)).unwrap(), c);
    }

    #[test]
    fn regression_and_ratchet_detection() {
        let base = counts(&[("hot-path-panic", "a.rs", 5), ("raw-io", "b.rs", 2)]);
        let now = counts(&[("hot-path-panic", "a.rs", 6), ("hot-path-panic", "c.rs", 1)]);
        let (reg, imp) = compare(&now, &base);
        assert_eq!(reg.len(), 2); // a.rs grew, c.rs is brand new
        assert!(reg
            .iter()
            .any(|d| d.file == "a.rs" && d.current == 6 && d.allowed == 5));
        assert!(reg.iter().any(|d| d.file == "c.rs" && d.allowed == 0));
        assert_eq!(imp.len(), 1); // b.rs went to zero
        assert!(imp.iter().any(|d| d.file == "b.rs" && d.current == 0));
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("hot-path-panic\tonly-two-fields").is_err());
        assert!(parse("lint\tfile\tnot-a-number").is_err());
        assert!(parse("# comment\n\n").unwrap().is_empty());
    }
}
