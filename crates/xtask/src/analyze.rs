//! Dataflow lints over the parsed workspace model of [`crate::model`].
//!
//! Nine lint families that need statement order, scope, or paths, which
//! the token scan of [`crate::lints`] cannot express. Families 1, 8,
//! and 9 run on per-function control-flow graphs ([`crate::cfg`],
//! DESIGN.md §15); families 5–9 ride the workspace call graph of
//! [`crate::callgraph`] (DESIGN.md §13):
//!
//! 1. **page-leak** — CFG escape analysis over `HeapFile` creation. An
//!    *owned* (non-temp) heap file — a direct `HeapFile::create` or a
//!    temp binding that has been `persist()`ed — must reach a consumer
//!    (moved out, returned, `mark_temp`, `delete`) on every path. An
//!    error edge (`?`/`return Err`) while one is live, or reaching its
//!    scope end unconsumed on any path, orphans its pages: the static
//!    twin of the fault-injection `allocated_pages() == 0` check
//!    (DESIGN.md §9). Temp files are RAII-safe (`Drop` deletes them) and
//!    are deliberately not tracked.
//! 2. **result-discard** — no `let _ =` / `.ok();`-swallow of a call
//!    whose `Result` carries a typed storage/exec error in the hot
//!    paths. Propagate or handle; a swallowed transient `StorageError`
//!    turns a retryable fault into silent data loss.
//! 3. **hot-path-panic** — the statement-accurate replacement for the
//!    old token lint: panic-family calls in operator hot paths, with
//!    per-statement (not per-line) test/auditor exemption.
//! 4. **lock-order** / **lock-across-io** — every `lock(&…)` /
//!    `.lock()` acquisition feeds a workspace-wide lock-order graph;
//!    cycles are deadlock candidates and are flagged at each
//!    participating edge. A guard held across a `Disk` I/O call
//!    serializes the storage layer on that lock and is flagged
//!    separately. Interprocedurally, a held guard extends the order
//!    graph through resolvable callees that acquire `self.`-field
//!    locks, and `lock-across-io` fires when a uniquely-resolved
//!    callee is guaranteed to hit disk.
//! 5. **cancel-liveness** — every record-driven loop in a
//!    cancellation-aware function on the cancellable paths (external
//!    operators, the parallel filter, the exec crate) must poll
//!    `CancelToken` within a bounded stride, directly or via a callee
//!    that may poll (PR 2's "poll every 256 records" contract). A loop
//!    that fetches records but can never reach a poll starves
//!    cancellation. The CFG recheck also catches the path-sensitive
//!    variant: a `continue` edge that skips every poll in a loop that
//!    otherwise polls.
//! 6. **guard-into-spawn** / **blocking-under-lock** — thread-capture
//!    and blocking discipline: a `MutexGuard` held at a `spawn(` site,
//!    a condvar `wait(` that does not name (and hence cannot release)
//!    a held guard, a bounded `WorkQueue`/`Backpressure` method on a
//!    typed receiver, or a call into a uniquely-resolved callee that
//!    must block — all while a guard is held — are stall/deadlock
//!    findings.
//! 7. **counter-conservation** — every `SkylineMetrics` counter must
//!    survive the whole plumbing: a `MetricsSnapshot` field, the
//!    `snapshot`/`absorb`/`reset`/`plus` hops, and the downstream
//!    sinks (bench gate report, xtask report parser). A counter
//!    dropped at any hop is a silently-lost statistic.
//! 8. **resource-pairing** — path-sensitive pairing of acquire-shaped
//!    effects: a `Backpressure` credit (`.acquire(` /
//!    `.acquire_timeout(` / `.try_acquire(`) must be `.release()`d —
//!    directly, via a callee known to release it, or discharged by a
//!    failure match arm that never granted — on every error exit; a
//!    paired admission counter bump (`admitted`/`in_flight` `+=`) must
//!    be debited or rolled back (`unadmit`-style callees count) on
//!    every error exit; a `BufferPool` lease must be *bound*, not
//!    discarded in the statement that reserves it. Success exits are
//!    exempt: credits and books legitimately outlive the function
//!    (released by the worker that consumes the handed-off work), and
//!    `Drop` carriers discharge obligations on unwind.
//! 9. **books-before-visibility** — dominance ordering inside a
//!    function: verdict-counter settlement must dominate the terminal
//!    `Msg::End` publish, and admission bookkeeping must dominate
//!    queue insertion, so no observer (client draining results, stats
//!    snapshot) can see state the books don't yet account for — the
//!    ordering that fixed PR 7's underflow deadlock, as a ratchet.
//!
//! All findings flow into the same `lint-baseline.txt` ratchet as the
//! token lints, and `cargo xtask analyze --sarif` renders them as SARIF
//! for CI code-scanning annotations (`cargo xtask analyze --explain
//! <rule-id>` prints the per-rule help).

use crate::callgraph::{self, resolvable_calls, CallGraph, POLL_TOKENS};
use crate::cfg::{self, Cfg, EdgeKind, NodeKind, EXIT_ERR, EXIT_OK};
use crate::lints::{has_token, Finding, HOT_PATHS, PANIC_TOKENS};
use crate::model::{file_model, word_hits, Block, FileModel, FnModel};
use crate::scan::CleanSource;
use std::collections::{BTreeMap, BTreeSet};

/// Directories the page-leak lint watches: everywhere operators create
/// or hand off heap files.
const LEAK_DIRS: &[&str] = &[
    "crates/exec",
    "crates/core/src/external",
    "crates/core/src/planner.rs",
    "crates/core/src/strata.rs",
    "crates/core/src/par.rs",
    "crates/storage",
];

/// Error types whose `Result`s must not be swallowed.
const ERROR_TYPES: &[&str] = &[
    "StorageError",
    "ExecError",
    "AlgoError",
    "ParError",
    "BufferError",
];

/// Disk/file I/O calls a lock guard must not be held across.
pub(crate) const IO_TOKENS: &[&str] = &[
    ".read_page(",
    ".write_page(",
    ".num_pages(",
    ".create(",
    ".write_all(",
    ".read_exact(",
    ".seek(",
    ".sync_all(",
    ".set_len(",
    ".metadata(",
];

/// Directories under the cancellation contract: operator `next()`
/// paths, external-pass drivers, and the parallel workers. A function
/// here that has access to a cancel token (its signature or body
/// mentions one) must poll it from every record-driven loop.
const CANCEL_SCOPE: &[&str] = &[
    "crates/core/src/external",
    "crates/core/src/par.rs",
    "crates/exec/src",
    "crates/server/src",
];

/// A loop is *record-driven* — expected to run once per input record,
/// i.e. unbounded in the input size — when it advances a stream or
/// probes the window. Matched with plain `contains` (`.probe` covers
/// `.probe(`/`.probe_prefix(`).
const RECORD_TOKENS: &[&str] = &[".next()", ".next_record(", ".pop()", ".probe"];

/// Method calls that block when the receiver is a bounded
/// [`WorkQueue`]/[`Backpressure`]-typed binding.
const BLOCKING_METHODS: &[&str] = &[".push(", ".pop(", ".acquire("];

/// The metrics hub and the downstream sinks every counter must reach.
const METRICS_PATH: &str = "crates/core/src/metrics.rs";
const COUNTER_SINKS: &[&str] = &["crates/bench/src/gate.rs", "crates/xtask/src/bench.rs"];

/// Directories under the resource-pairing and books-before-visibility
/// contracts: everywhere credits, leases, and admission counters move.
const PAIR_DIRS: &[&str] = &[
    "crates/server/src",
    "crates/exec/src",
    "crates/core/src/external",
    "crates/core/src/planner.rs",
    "crates/core/src/par.rs",
    "crates/storage/src",
    "crates/query/src",
];

/// Admission counters that must pair a bump with a debit/rollback on
/// every error exit (the `SessionStats::conserved()` invariant).
pub(crate) const PAIRED_COUNTERS: &[&str] = &["admitted", "in_flight"];

/// Credit-granting method calls whose grant must reach a `.release()`.
const ACQUIRE_TOKENS: &[&str] = &[".acquire(", ".acquire_timeout(", ".try_acquire("];

/// Match-arm pattern fragments that mean the acquire did NOT grant —
/// the arm discharges the obligation. A pattern is only a failure arm
/// when it has one of these and none of [`SUCCESS_ARMS`].
const FAILURE_ARMS: &[&str] = &["Exhausted", "Closed", "TimedOut", "Err(", "None"];
const SUCCESS_ARMS: &[&str] = &["Granted", "Ok("];

/// Paths whose functions are all test/bench scaffolding.
pub(crate) fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("crates/testkit")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

fn under(path: &str, dirs: &[&str]) -> bool {
    dirs.iter().any(|d| path.starts_with(d))
}

/// Does `text` apply compound-assignment `op` to a field/binding named
/// `name`? (`st.admitted += 1` → `bumps(text, "admitted", "+=")`.)
pub(crate) fn bumps(text: &str, name: &str, op: &str) -> bool {
    word_hits(text, name)
        .iter()
        .any(|&at| text[at + name.len()..].trim_start().starts_with(op))
}

/// The paired admission counters `text` debits (`-=`). Feeds the call
/// graph's rollback summaries.
pub(crate) fn paired_counter_debits(text: &str) -> BTreeSet<String> {
    PAIRED_COUNTERS
        .iter()
        .filter(|c| bumps(text, c, "-="))
        .map(|c| (*c).to_string())
        .collect()
}

/// Receiver bases of every `method` call in `text`: the final
/// `.`-component of the identifier chain before it (`sh.gate.release()`
/// → `gate`).
pub(crate) fn method_bases(text: &str, method: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut from = 0;
    while let Some(p) = text[from..].find(method) {
        let at = from + p;
        from = at + method.len();
        let chain: String = text[..at]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
            .collect();
        let chain: String = chain.chars().rev().collect();
        let base = chain.rsplit('.').next().unwrap_or("");
        if !base.is_empty()
            && base
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            out.insert(base.to_string());
        }
    }
    out
}

/// Run every dataflow lint over the cleaned workspace files.
pub fn analyze_files(files: &[(String, CleanSource)]) -> Vec<Finding> {
    let models: Vec<FileModel> = files
        .iter()
        .filter(|(path, _)| !path.starts_with("crates/xtask"))
        .map(|(path, cs)| file_model(path, cs))
        .collect();

    // Workspace function index: which call names are fallible (return a
    // Result carrying one of our typed errors). Name collisions across
    // crates are merged conservatively.
    let mut fallible: BTreeSet<&str> = BTreeSet::new();
    for m in &models {
        for f in &m.fns {
            if let Some(ret) = f.ret() {
                if ret.contains("Result") && ERROR_TYPES.iter().any(|t| ret.contains(t)) {
                    fallible.insert(&f.name);
                }
            }
        }
    }

    let graph = callgraph::build(&models);

    let mut out = Vec::new();
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for m in &models {
        let file_is_test = is_test_path(&m.path);
        for f in &m.fns {
            let Some(body) = &f.body else { continue };
            if f.is_test || file_is_test {
                continue;
            }
            if under(&m.path, HOT_PATHS) {
                panic_lint(&m.path, body, &mut out);
                if !f.in_drop_impl {
                    discard_lint(&m.path, body, &fallible, &mut out);
                }
            }
            if under(&m.path, LEAK_DIRS) && !f.in_drop_impl {
                heap_pairing(&m.path, &f.name, f, body, &mut out);
            }
            if under(&m.path, PAIR_DIRS) && !f.in_drop_impl {
                pairing_lint(&m.path, &f.name, f, &graph, &mut out);
                books_lint(&m.path, &f.name, f, &mut out);
                reserve_discard(&m.path, &f.name, body, &mut out);
            }
            if under(&m.path, CANCEL_SCOPE) && cancel_aware(f, body) {
                cancel_liveness(&m.path, &f.name, body, &graph, &mut out);
                cancel_continue(&m.path, &f.name, f, &graph, &mut out);
            }
            let recv = blocking_receivers(f, body);
            let mut held = Vec::new();
            lock_scan(
                &m.path, &f.name, body, &recv, &graph, &mut held, &mut edges, &mut out,
            );
        }
    }
    lock_cycles(&edges, &mut out);
    counter_lint(files, &models, &mut out);
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    out
}

// ---------------------------------------------------------------- panic

/// Statement-accurate panic-family detection in hot paths.
fn panic_lint(path: &str, block: &Block, out: &mut Vec<Finding>) {
    for stmt in &block.stmts {
        if !stmt.exempt {
            for tok in PANIC_TOKENS {
                if has_token(&stmt.head, tok) {
                    out.push(Finding {
                        lint: "hot-path-panic",
                        file: path.to_string(),
                        line: stmt.line,
                        excerpt: (*tok).to_string(),
                    });
                }
            }
        }
        for b in &stmt.blocks {
            panic_lint(path, b, out);
        }
    }
}

// -------------------------------------------------------------- discard

/// `let _ = fallible(…);` and `fallible(…).ok();` swallow typed errors.
fn discard_lint(path: &str, block: &Block, fallible: &BTreeSet<&str>, out: &mut Vec<Finding>) {
    for stmt in &block.stmts {
        if !stmt.exempt {
            let head = stmt.head.trim_start();
            let discards = (head.starts_with("let _ =") || head.starts_with("let _:"))
                && !stmt.head.contains('?');
            let swallows = stmt.head.contains(".ok();") || stmt.head.trim_end().ends_with(".ok()");
            if discards || swallows {
                if let Some(name) = calls_in(&stmt.text_all())
                    .into_iter()
                    .find(|c| fallible.contains(c.as_str()))
                {
                    out.push(Finding {
                        lint: "result-discard",
                        file: path.to_string(),
                        line: stmt.line,
                        excerpt: format!(
                            "Result of fallible `{name}` is {} — propagate or handle the typed error",
                            if discards { "discarded with `let _ =`" } else { "swallowed with `.ok()`" }
                        ),
                    });
                }
            }
        }
        for b in &stmt.blocks {
            discard_lint(path, b, fallible, out);
        }
    }
}

/// Call names in `text`: every identifier directly followed by `(`.
pub(crate) fn calls_in(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_alphabetic() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let mut j = i;
            while j < chars.len() && chars[j] == ' ' {
                j += 1;
            }
            if j < chars.len() && chars[j] == '(' {
                out.push(chars[start..i].iter().collect());
            }
        } else {
            i += 1;
        }
    }
    out
}

// ------------------------------------------------------------ page-leak

/// Names `let`-bound to a temp heap file anywhere in the function —
/// a later `persist()` on one of these re-arms leak tracking.
fn temp_bindings_of(block: &Block) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    collect_temp_bindings(block, &mut set);
    set
}

fn collect_temp_bindings(block: &Block, set: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        if let Some(name) = let_binding(&stmt.head) {
            if has_token(&stmt.text_all(), "create_temp(") {
                set.insert(name);
            }
        }
        for b in &stmt.blocks {
            collect_temp_bindings(b, set);
        }
    }
}

/// One owned-heap-file obligation: `name` bound at `node`, owed a
/// consumer before the error exit / its scope end.
struct HeapOb {
    name: String,
    line: usize,
    block: usize,
}

/// CFG escape analysis over owned heap files (the PR 3 lint, upgraded
/// from statement heuristics to dataflow): gen an obligation at every
/// owned allocation (`HeapFile::create` / `Self::create`, or `persist()`
/// of a temp binding), kill it wherever [`consumes`] moves the binding
/// into a consumer and at its scope end; any obligation carried into
/// the error exit or still live at a scope end is a leak. Panic edges
/// are deliberately inert here for parity with the runtime contract:
/// the fault-injection suite checks `allocated_pages()==0` after
/// unwind via `Drop` carriers, and files a `Drop` can't see were
/// already flagged on the non-panic paths.
fn heap_pairing(path: &str, fn_name: &str, f: &FnModel, body: &Block, out: &mut Vec<Finding>) {
    let Some(cfg) = cfg::build(f) else { return };
    let temps = temp_bindings_of(body);
    let mut obs: Vec<HeapOb> = Vec::new();
    let mut gen = vec![0u64; cfg.nodes.len()];
    for (i, n) in cfg.nodes.iter().enumerate() {
        if n.kind != NodeKind::Stmt || obs.len() == 64 {
            continue;
        }
        if let Some(name) = let_binding(&n.text) {
            if (has_token(&n.text, "HeapFile::create(") || has_token(&n.text, "Self::create("))
                && !n.text.contains("create_temp(")
            {
                gen[i] |= 1 << obs.len();
                obs.push(HeapOb {
                    name,
                    line: n.line,
                    block: n.block_id,
                });
                continue;
            }
        }
        // persist() turns a temp binding into an owned one
        if let Some(name) = persist_target(&n.text) {
            if temps.contains(&name) {
                gen[i] |= 1 << obs.len();
                obs.push(HeapOb {
                    name,
                    line: n.line,
                    block: n.block_id,
                });
            }
        }
    }
    if obs.is_empty() {
        return;
    }
    let mut kill = vec![0u64; cfg.nodes.len()];
    for (i, n) in cfg.nodes.iter().enumerate() {
        for (b, ob) in obs.iter().enumerate() {
            match n.kind {
                NodeKind::Stmt if consumes(&n.text, &ob.name) => {
                    kill[i] |= 1 << b;
                }
                // the function-body scope end (block 0) is the
                // catch-all: obligations that escaped an inner scope
                // via a break/continue edge still die — and report —
                // here
                NodeKind::ScopeEnd if n.block_id == ob.block || n.block_id == 0 => {
                    kill[i] |= 1 << b;
                }
                _ => {}
            }
        }
    }
    let r = cfg::reach(&cfg, &gen, &kill);
    // hazard candidates: obligations carried into an exit edge
    let mut hazard: Vec<Option<usize>> = vec![None; obs.len()];
    let mut scoped = vec![false; obs.len()];
    for (p, n) in cfg.nodes.iter().enumerate() {
        for &(t, k) in &cfg.succs[p] {
            let set = match (t, k) {
                (EXIT_ERR, EdgeKind::Err) => cfg::edge_set(&r, &kill, p, k),
                // early `return` while live (scope ends never carry:
                // their kill already settled the books)
                (EXIT_OK | EXIT_ERR, EdgeKind::Seq) if n.kind == NodeKind::Stmt => r.outs[p],
                _ => continue,
            };
            for (b, h) in hazard.iter_mut().enumerate() {
                if set >> b & 1 == 1 && h.is_none_or(|line| n.line < line) {
                    *h = Some(n.line);
                }
            }
        }
        if n.kind == NodeKind::ScopeEnd {
            for (b, ob) in obs.iter().enumerate() {
                if (n.block_id == ob.block || n.block_id == 0) && r.ins[p] >> b & 1 == 1 {
                    scoped[b] = true;
                }
            }
        }
    }
    for (b, ob) in obs.iter().enumerate() {
        if let Some(at) = hazard[b] {
            out.push(Finding {
                lint: "page-leak",
                file: path.to_string(),
                line: ob.line,
                excerpt: format!(
                    "owned HeapFile `{}` in `{}` is live across a fallible `?`/return at line {} — its pages leak on the error path",
                    ob.name, fn_name, at
                ),
            });
        } else if scoped[b] {
            out.push(Finding {
                lint: "page-leak",
                file: path.to_string(),
                line: ob.line,
                excerpt: format!(
                    "owned HeapFile `{}` in `{}` is dropped at end of scope without persist/mark_temp/delete",
                    ob.name, fn_name
                ),
            });
        }
    }
}

/// The statement moves `name` into a consumer: `mark_temp`/`delete`/
/// `drop`, moved as a value (argument, struct field, `Ok(…)`, tail
/// expression), or returned.
fn consumes(text: &str, name: &str) -> bool {
    if text.trim() == name {
        return true; // block tail expression
    }
    for at in word_hits(text, name) {
        let after: String = text[at + name.len()..].chars().take(12).collect();
        if after.starts_with(".mark_temp(") || after.starts_with(".delete(") {
            return true;
        }
        // drop(name)
        let before = text[..at].trim_end();
        if before.ends_with("drop(") {
            return true;
        }
        // moved as a value: delimiters on both sides
        let prev = before.chars().next_back();
        let next = text[at + name.len()..].chars().find(|c| *c != ' ');
        let prev_moves = matches!(prev, Some('(' | ',' | '{' | '=' | ':'))
            || before.ends_with("return")
            || before.ends_with("break");
        let next_closes = matches!(next, Some(',' | ')' | '}' | ';') | None);
        if prev_moves && next_closes {
            return true;
        }
    }
    false
}

/// `let [mut] name = …` — the bound identifier, if the pattern is a
/// plain binding.
fn let_binding(head: &str) -> Option<String> {
    let t = head.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

/// `name.persist(` in a statement head → `name`.
fn persist_target(head: &str) -> Option<String> {
    let at = head.find(".persist(")?;
    let base: String = head[..at]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let name: String = base.chars().rev().collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

// ----------------------------------------------------- resource-pairing

/// One acquire-shaped obligation tracked by [`pairing_lint`].
enum PairOb {
    /// A `Backpressure`-style credit on receiver base `String`.
    Credit(String),
    /// A paired admission counter bump.
    Counter(&'static str),
}

/// Path-sensitive pairing of credits and admission counters: an
/// obligation gen'd at an acquire/bump must be killed — released,
/// debited, rolled back via a callee the call graph knows about, or
/// discharged by a non-granting failure arm — before every *error*
/// exit. Success exits are exempt (credits legitimately outlive the
/// function inside returned handles; the worker settles them), and
/// panic edges are exempt (`Drop` carriers discharge on unwind).
fn pairing_lint(path: &str, fn_name: &str, f: &FnModel, graph: &CallGraph, out: &mut Vec<Finding>) {
    let Some(cfg) = cfg::build(f) else { return };
    let mut obs: Vec<(PairOb, usize, usize)> = Vec::new(); // ob, line, gen node
    let mut gen = vec![0u64; cfg.nodes.len()];
    for (i, n) in cfg.nodes.iter().enumerate() {
        if n.kind != NodeKind::Stmt || n.exempt {
            continue;
        }
        let mut bases = BTreeSet::new();
        for tok in ACQUIRE_TOKENS {
            bases.extend(method_bases(&n.text, tok));
        }
        for base in bases {
            if obs.len() < 64 {
                gen[i] |= 1 << obs.len();
                obs.push((PairOb::Credit(base), n.line, i));
            }
        }
        for c in PAIRED_COUNTERS {
            if bumps(&n.text, c, "+=") && obs.len() < 64 {
                gen[i] |= 1 << obs.len();
                obs.push((PairOb::Counter(c), n.line, i));
            }
        }
    }
    if obs.is_empty() {
        return;
    }
    let mut kill = vec![0u64; cfg.nodes.len()];
    for (i, n) in cfg.nodes.iter().enumerate() {
        if n.kind != NodeKind::Stmt {
            continue;
        }
        let calls = resolvable_calls(&n.text);
        for (b, (ob, _, gen_node)) in obs.iter().enumerate() {
            let killed = match ob {
                PairOb::Credit(base) => {
                    method_bases(&n.text, ".release(").contains(base)
                        || calls
                            .iter()
                            .any(|c| graph.releases(c).is_some_and(|s| s.contains(base)))
                        || failure_arm(&cfg, i, *gen_node)
                }
                PairOb::Counter(c) => {
                    bumps(&n.text, c, "-=")
                        || calls
                            .iter()
                            .any(|c2| graph.rolls_back(c2).is_some_and(|s| s.contains(*c)))
                }
            };
            if killed {
                kill[i] |= 1 << b;
            }
        }
    }
    let r = cfg::reach(&cfg, &gen, &kill);
    let mut err_at: Vec<Option<usize>> = vec![None; obs.len()];
    for (p, n) in cfg.nodes.iter().enumerate() {
        if n.kind != NodeKind::Stmt {
            continue;
        }
        for &(t, k) in &cfg.succs[p] {
            if t != EXIT_ERR || k == EdgeKind::Panic {
                continue;
            }
            let set = cfg::edge_set(&r, &kill, p, k);
            for (b, h) in err_at.iter_mut().enumerate() {
                if set >> b & 1 == 1 && h.is_none_or(|line| n.line < line) {
                    *h = Some(n.line);
                }
            }
        }
    }
    for (b, (ob, line, _)) in obs.iter().enumerate() {
        let Some(at) = err_at[b] else { continue };
        let excerpt = match ob {
            PairOb::Credit(base) => format!(
                "credit acquired from `{base}` in `{fn_name}` is not released on the error path exiting at line {at} — pair it with `.release()` or a failure-arm discharge"
            ),
            PairOb::Counter(c) => format!(
                "counter `{c}` bumped in `{fn_name}` is not rolled back on the error path exiting at line {at} — admission books drift on shed/error"
            ),
        };
        out.push(Finding {
            lint: "resource-pairing",
            file: path.to_string(),
            line: *line,
            excerpt,
        });
    }
}

/// Is node `i` a match arm of the statement at `gen_node` whose pattern
/// can only mean the acquire did NOT grant? Such an arm discharges the
/// credit obligation — there is nothing to release.
fn failure_arm(cfg: &Cfg, i: usize, gen_node: usize) -> bool {
    let n = &cfg.nodes[i];
    if n.arm_of != Some(gen_node) {
        return false;
    }
    let Some(pat) = n.text.split("=>").next() else {
        return false;
    };
    FAILURE_ARMS.iter().any(|t| pat.contains(t)) && !SUCCESS_ARMS.iter().any(|t| pat.contains(t))
}

/// A `BufferPool::reserve` lease discarded in the statement that
/// created it returns the page charge immediately — the work it was
/// supposed to cover runs unaccounted. Flags `let _ = …reserve(…)` and
/// bare `pool.reserve(…)?;` statements; binding the lease (even to
/// `_lease`) keeps the charge alive and is clean.
fn reserve_discard(path: &str, fn_name: &str, block: &Block, out: &mut Vec<Finding>) {
    for stmt in &block.stmts {
        if !stmt.exempt {
            if let Some(at) = stmt.head.find(".reserve(") {
                let head = stmt.head.trim_start();
                let discards = head.starts_with("let _ =") || head.starts_with("let _:");
                let before = stmt.head[..at].trim_start();
                let bare = !before.is_empty()
                    && before
                        .chars()
                        .all(|c| c.is_alphanumeric() || c == '_' || c == '.');
                if discards || bare {
                    out.push(Finding {
                        lint: "resource-pairing",
                        file: path.to_string(),
                        line: stmt.line,
                        excerpt: format!(
                            "BufferPool lease reserved in `{fn_name}` is discarded by this statement — bind it so the page charge lives as long as the work it covers"
                        ),
                    });
                }
            }
        }
        for b in &stmt.blocks {
            reserve_discard(path, fn_name, b, out);
        }
    }
}

// ----------------------------------------------- books-before-visibility

/// Dominance ordering of bookkeeping against visibility: in any
/// function that both settles verdict counters and publishes a terminal
/// `Msg::End`, every publish must be dominated by a settlement (a
/// client that saw the end-of-stream must find settled books); in any
/// function that both bumps `admitted` and inserts into the work queue,
/// every insertion must be dominated by a bump (a worker that popped
/// the job must find it admitted). Exactly the ordering whose violation
/// produced PR 7's underflow deadlock.
fn books_lint(path: &str, fn_name: &str, f: &FnModel, out: &mut Vec<Finding>) {
    let Some(cfg) = cfg::build(f) else { return };
    let stmts: Vec<usize> = cfg
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.kind == NodeKind::Stmt && !n.exempt)
        .map(|(i, _)| i)
        .collect();
    let settles: Vec<usize> = stmts
        .iter()
        .copied()
        .filter(|&i| {
            let t = &cfg.nodes[i].text;
            bumps(t, "completed", "+=")
                || bumps(t, "cancelled", "+=")
                || bumps(t, "failed", "+=")
                || bumps(t, "in_flight", "-=")
        })
        .collect();
    let publishes: Vec<usize> = stmts
        .iter()
        .copied()
        .filter(|&i| cfg.nodes[i].text.contains("Msg::End"))
        .collect();
    let admits: Vec<usize> = stmts
        .iter()
        .copied()
        .filter(|&i| bumps(&cfg.nodes[i].text, "admitted", "+="))
        .collect();
    let enqueues: Vec<usize> = stmts
        .iter()
        .copied()
        .filter(|&i| cfg.nodes[i].text.contains("jobs.push"))
        .collect();
    let r1 = !settles.is_empty() && !publishes.is_empty();
    let r2 = !admits.is_empty() && !enqueues.is_empty();
    if !r1 && !r2 {
        return;
    }
    let doms = cfg::dominators(&cfg);
    if r1 {
        for &p in &publishes {
            if !settles.iter().any(|&s| cfg::dominates(&doms, s, p)) {
                out.push(Finding {
                    lint: "books-before-visibility",
                    file: path.to_string(),
                    line: cfg.nodes[p].line,
                    excerpt: format!(
                        "terminal `Msg::End` publish in `{fn_name}` is not dominated by counter settlement — a client can observe end-of-stream before the books settle"
                    ),
                });
            }
        }
    }
    if r2 {
        for &e in &enqueues {
            if !admits.iter().any(|&a| cfg::dominates(&doms, a, e)) {
                out.push(Finding {
                    lint: "books-before-visibility",
                    file: path.to_string(),
                    line: cfg.nodes[e].line,
                    excerpt: format!(
                        "queue insertion in `{fn_name}` is not dominated by the `admitted` bump — a worker can settle books that were never opened"
                    ),
                });
            }
        }
    }
}

// ----------------------------------------------------------------- lock

struct Held {
    lock: String,
    guard: Option<String>,
}

/// Walk one block tracking held guards; record acquisition-order edges
/// (direct and through uniquely-resolved callees), guards held across
/// I/O or blocking calls, and guards held at thread-spawn sites.
#[allow(clippy::too_many_arguments)]
fn lock_scan(
    path: &str,
    fn_name: &str,
    block: &Block,
    recv: &BTreeSet<String>,
    graph: &CallGraph,
    held: &mut Vec<Held>,
    edges: &mut BTreeMap<(String, String), (String, usize)>,
    out: &mut Vec<Finding>,
) {
    for stmt in &block.stmts {
        let acqs = acquisitions(&stmt.head);
        for a in &acqs {
            for h in held.iter() {
                if h.lock != *a {
                    edges
                        .entry((h.lock.clone(), a.clone()))
                        .or_insert_with(|| (path.to_string(), stmt.line));
                }
            }
        }
        let text = stmt.text_all();
        if !held.is_empty() {
            // interprocedural lock-order: a resolvable callee that
            // acquires `self.`-field locks extends the order graph
            for c in resolvable_calls(&text) {
                if let Some(acq) = graph.acquires(&c) {
                    for l2 in acq {
                        for h in held.iter() {
                            if h.lock != *l2 {
                                edges
                                    .entry((h.lock.clone(), l2.clone()))
                                    .or_insert_with(|| (path.to_string(), stmt.line));
                            }
                        }
                    }
                }
            }
            if !stmt.exempt {
                blocking_checks(path, fn_name, stmt.line, &text, held, recv, graph, out);
            }
        }
        if (!held.is_empty() || !acqs.is_empty()) && IO_TOKENS.iter().any(|t| has_token(&text, t)) {
            let lock = held
                .first()
                .map(|h| h.lock.clone())
                .unwrap_or_else(|| acqs[0].clone());
            let dup = out.iter().any(|f| {
                f.lint == "lock-across-io" && f.file == path && f.excerpt.contains(fn_name)
            });
            if !dup {
                out.push(Finding {
                    lint: "lock-across-io",
                    file: path.to_string(),
                    line: stmt.line,
                    excerpt: format!(
                        "guard of `{lock}` is held across disk I/O in `{fn_name}` — I/O serializes on the lock"
                    ),
                });
            }
        }
        // release explicitly dropped guards
        held.retain(|h| match &h.guard {
            Some(g) => !text.contains(&format!("drop({g})")),
            None => true,
        });
        // a let-bound acquisition holds until end of this block — but
        // only when the guard itself is bound (`let g = lock(&x);`,
        // possibly via `.unwrap()`); a longer chain (`let v =
        // lock(&x).values().collect();`) drops the temporary guard at
        // the end of the statement
        if let Some(guard) = let_binding(&stmt.head) {
            if let Some((lock, after)) = acqs.first().zip(acquisition_end(&stmt.head)) {
                if guard_bound_directly(&stmt.head[after..]) {
                    held.push(Held {
                        lock: lock.clone(),
                        guard: Some(guard),
                    });
                }
            }
        }
        for b in &stmt.blocks {
            let depth = held.len();
            lock_scan(path, fn_name, b, recv, graph, held, edges, out);
            held.truncate(depth);
        }
    }
}

/// One statement with guards held: is it a stall/deadlock hazard?
#[allow(clippy::too_many_arguments)]
fn blocking_checks(
    path: &str,
    fn_name: &str,
    line: usize,
    text: &str,
    held: &[Held],
    recv: &BTreeSet<String>,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    // thread-capture discipline: a guard held at a spawn site either
    // moves into the closure (keeping the lock on another thread) or
    // stays held while workers contend on it — both are findings
    if has_token(text, "spawn(") {
        for h in held {
            out.push(Finding {
                lint: "guard-into-spawn",
                file: path.to_string(),
                line,
                excerpt: format!(
                    "guard of `{}` is held at a thread spawn in `{fn_name}` — workers contending on the lock stall or deadlock",
                    h.lock
                ),
            });
        }
        return; // the spawn finding subsumes blocking checks on this stmt
    }
    // condvar protocol: `st = wait(&cv, st)` (or its deadline-bounded
    // twin `st = wait_timeout(&cv, st, dur).0`) releases exactly the
    // guard it names; any *other* held guard stays locked through the
    // sleep
    let waits = has_token(text, "wait(") || has_token(text, "wait_timeout(");
    for h in held {
        let releases_this = waits
            && h.guard
                .as_ref()
                .is_some_and(|g| !word_hits(text, g).is_empty());
        if waits && !releases_this {
            push_blocking(
                out,
                path,
                line,
                fn_name,
                &h.lock,
                "a condvar wait that cannot release it",
            );
        }
    }
    if held.is_empty() {
        return;
    }
    let lock = &held[0].lock;
    for tok in &["::sleep(", ".join()", "park("] {
        if text.contains(*tok) {
            push_blocking(out, path, line, fn_name, lock, "a sleep/join/park");
            break;
        }
    }
    // bounded-queue / admission-gate methods on typed receivers
    'recv: for r in recv {
        for m in BLOCKING_METHODS {
            if has_token(text, &format!("{r}{m}")) {
                push_blocking(
                    out,
                    path,
                    line,
                    fn_name,
                    lock,
                    &format!("blocking `{r}{m}…)`"),
                );
                break 'recv;
            }
        }
    }
    // uniquely-resolved callees that are guaranteed to block or hit disk
    for c in resolvable_calls(text) {
        if matches!(
            c.as_str(),
            "wait" | "wait_timeout" | "lock" | "sleep" | "park" | "spawn"
        ) {
            continue; // direct tokens above already judged these
        }
        if graph.must_block(&c) {
            push_blocking(
                out,
                path,
                line,
                fn_name,
                lock,
                &format!("a call to blocking `{c}`"),
            );
        } else if graph.must_io(&c) {
            let dup = out.iter().any(|f| {
                f.lint == "lock-across-io" && f.file == path && f.excerpt.contains(fn_name)
            });
            if !dup {
                out.push(Finding {
                    lint: "lock-across-io",
                    file: path.to_string(),
                    line,
                    excerpt: format!(
                        "guard of `{lock}` is held across disk I/O in `{fn_name}` (via callee `{c}`) — I/O serializes on the lock"
                    ),
                });
            }
        }
    }
}

/// Emit a deduplicated blocking-under-lock finding.
fn push_blocking(
    out: &mut Vec<Finding>,
    path: &str,
    line: usize,
    fn_name: &str,
    lock: &str,
    what: &str,
) {
    let excerpt =
        format!("guard of `{lock}` is held across {what} in `{fn_name}` — stall/deadlock risk");
    if !out
        .iter()
        .any(|f| f.lint == "blocking-under-lock" && f.file == path && f.excerpt == excerpt)
    {
        out.push(Finding {
            lint: "blocking-under-lock",
            file: path.to_string(),
            line,
            excerpt,
        });
    }
}

/// Lock names acquired in a statement head: `lock(&EXPR)` helper calls
/// and `EXPR.lock()` method calls, normalized (`self.`/`&` stripped).
fn acquisitions(head: &str) -> Vec<String> {
    let mut out = Vec::new();
    // helper form: lock(&self.files)
    let mut from = 0;
    while let Some(p) = head[from..].find("lock(") {
        let at = from + p;
        from = at + 5;
        let before = head[..at].chars().next_back();
        if before.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.') {
            continue; // method call or suffix of another identifier
        }
        let inner: String = head[at + 5..]
            .chars()
            .take_while(|c| *c != ')' && *c != ',')
            .collect();
        out.push(normalize_lock(&inner));
    }
    // method form: self.ledger.lock()
    let mut from = 0;
    while let Some(p) = head[from..].find(".lock(") {
        let at = from + p;
        from = at + 6;
        let base: String = head[..at]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.' || *c == ':')
            .collect();
        let base: String = base.chars().rev().collect();
        out.push(normalize_lock(&base));
    }
    out.retain(|s| !s.is_empty());
    out
}

fn normalize_lock(expr: &str) -> String {
    let e: String = expr.chars().filter(|c| !c.is_whitespace()).collect();
    let e = e.trim_start_matches('&');
    let e = e.strip_prefix("self.").unwrap_or(e);
    e.trim_matches('.').to_string()
}

/// Index just past the closing paren of the first lock-acquisition call
/// in `head` — `lock(…)` helper or `.lock(…)` method form, whichever
/// comes first.
fn acquisition_end(head: &str) -> Option<usize> {
    let helper = {
        let mut from = 0;
        let mut found = None;
        while let Some(p) = head[from..].find("lock(") {
            let at = from + p;
            from = at + 5;
            let before = head[..at].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.') {
                continue; // method call or suffix of another identifier
            }
            found = Some(at + 4); // index of the '('
            break;
        }
        found
    };
    let method = head.find(".lock(").map(|p| p + 5);
    let open = match (helper, method) {
        (Some(a), Some(b)) => a.min(b),
        (a, b) => a.or(b)?,
    };
    let mut depth = 0usize;
    for (i, c) in head[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// After an acquisition expression, does the statement bind the guard
/// itself? True when nothing (or only `.unwrap()`/`.expect(…)`
/// wrappers) follows before the end of the head; any other method
/// chain consumes the temporary guard within the statement.
fn guard_bound_directly(rest: &str) -> bool {
    let mut s = rest.trim_start();
    loop {
        if let Some(r) = s.strip_prefix(".unwrap()") {
            s = r.trim_start();
        } else if let Some(r) = s.strip_prefix(".expect(") {
            let mut depth = 1usize;
            let mut cut = None;
            for (i, c) in r.char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = Some(i + 1);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            match cut {
                Some(i) => s = r[i..].trim_start(),
                None => return false,
            }
        } else {
            break;
        }
    }
    s.is_empty() || s == ";"
}

// --------------------------------------------------- cancel-liveness

/// Does this function have a cancellation token in reach? Only such
/// functions are held to the polling contract — a helper with no token
/// cannot poll, and demanding it would force an API change the lint has
/// no business mandating (documented false-negative boundary).
fn cancel_aware(f: &FnModel, body: &Block) -> bool {
    let full = format!("{} {}", f.sig, callgraph::block_text(body));
    full.contains("cancel") || full.contains("Cancel")
}

/// Every record-driven loop in a cancel-aware scope function must poll
/// the token — directly (`poll(`/`.check(`/`is_cancelled(`) or through
/// a callee that may poll. Stride boundedness comes from the poll
/// helpers themselves (`CANCEL_CHECK_INTERVAL` is a compile-time
/// constant), so presence is the static contract.
fn cancel_liveness(
    path: &str,
    fn_name: &str,
    block: &Block,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    for stmt in &block.stmts {
        let looping = !stmt.blocks.is_empty()
            && ["loop", "while", "for"]
                .iter()
                .any(|k| !word_hits(&stmt.head, k).is_empty());
        if looping && !stmt.exempt {
            let text = stmt.text_all();
            let fetches = RECORD_TOKENS.iter().any(|t| text.contains(t));
            let polls = POLL_TOKENS.iter().any(|t| has_token(&text, t))
                || calls_in(&text).iter().any(|c| graph.may_poll(c));
            if fetches && !polls {
                out.push(Finding {
                    lint: "cancel-liveness",
                    file: path.to_string(),
                    line: stmt.line,
                    excerpt: format!(
                        "record-driven loop in `{fn_name}` never polls CancelToken (directly or via a callee) — cancellation can starve"
                    ),
                });
            }
        }
        for b in &stmt.blocks {
            cancel_liveness(path, fn_name, b, graph, out);
        }
    }
}

/// The CFG recheck of cancel-liveness: in a record-driven loop that
/// *does* contain a poll (so the flat lint is satisfied), a `continue`
/// reachable from the loop header without passing any poll node starves
/// cancellation on that path — records keep flowing while every
/// iteration short-circuits around the poll.
fn cancel_continue(
    path: &str,
    fn_name: &str,
    f: &FnModel,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    let Some(cfg) = cfg::build(f) else { return };
    let is_poll = |n: &cfg::Node| {
        POLL_TOKENS.iter().any(|t| has_token(&n.text, t))
            || calls_in(&n.text).iter().any(|c| graph.may_poll(c))
    };
    for lp in &cfg.loops {
        let header = &cfg.nodes[lp.header];
        if header.exempt || lp.continues.is_empty() || is_poll(header) {
            continue;
        }
        let body_text: String = (lp.body.0..lp.body.1)
            .map(|i| cfg.nodes[i].text.as_str())
            .chain([header.text.as_str()])
            .collect::<Vec<_>>()
            .join(" ");
        if !RECORD_TOKENS.iter().any(|t| body_text.contains(t)) {
            continue;
        }
        let stop: Vec<bool> = cfg
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (lp.body.0..lp.body.1).contains(&i) && is_poll(n))
            .collect();
        let any_poll = stop.iter().any(|&s| s);
        if !any_poll {
            continue; // the flat lint already owns the no-poll case
        }
        let starts: Vec<usize> = cfg.succs[lp.header]
            .iter()
            .filter(|&&(t, k)| t != lp.join && matches!(k, EdgeKind::Seq | EdgeKind::Back))
            .map(|&(t, _)| t)
            .collect();
        let seen = cfg.reach_avoiding(&starts, &stop);
        for &c in &lp.continues {
            if seen[c] && !stop[c] && !cfg.nodes[c].exempt {
                out.push(Finding {
                    lint: "cancel-liveness",
                    file: path.to_string(),
                    line: cfg.nodes[c].line,
                    excerpt: format!(
                        "`continue` in a record-driven loop in `{fn_name}` skips every CancelToken poll — cancellation starves on that path"
                    ),
                });
            }
        }
    }
}

/// Bindings in this function whose type is a bounded [`crate`]-side
/// blocking primitive (`WorkQueue`/`Backpressure`): parameters plus
/// `let` bindings whose head names the type. An alias (`let q2 =
/// Arc::clone(&q);`) escapes tracking — documented false negative.
fn blocking_receivers(f: &FnModel, body: &Block) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for seg in f.sig.split(',') {
        if seg.contains("WorkQueue") || seg.contains("Backpressure") {
            if let Some((name_part, _)) = seg.split_once(':') {
                let name: String = name_part
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                let name: String = name.chars().rev().collect();
                if !name.is_empty() {
                    set.insert(name);
                }
            }
        }
    }
    collect_blocking_lets(body, &mut set);
    set
}

fn collect_blocking_lets(block: &Block, set: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        if stmt.head.contains("WorkQueue") || stmt.head.contains("Backpressure") {
            if let Some(name) = let_binding(&stmt.head) {
                set.insert(name);
            }
        }
        for b in &stmt.blocks {
            collect_blocking_lets(b, set);
        }
    }
}

// ------------------------------------------------ counter-conservation

/// Every `SkylineMetrics` counter must survive the whole statistics
/// pipeline: a `MetricsSnapshot` field, the `snapshot`/`absorb`/`reset`
/// plumbing, snapshot `plus`, and the downstream sinks (`bench` gate
/// report and the xtask report parser). A counter added in core but
/// dropped anywhere downstream is a silently-lost statistic.
fn counter_lint(files: &[(String, CleanSource)], models: &[FileModel], out: &mut Vec<Finding>) {
    let Some((_, metrics_cs)) = files.iter().find(|(p, _)| p == METRICS_PATH) else {
        return;
    };
    let counters = struct_fields(metrics_cs, "SkylineMetrics");
    let snap: Vec<(String, usize)> = struct_fields(metrics_cs, "MetricsSnapshot");
    let snap_names: BTreeSet<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
    for (c, line) in &counters {
        if !snap_names.contains(c.as_str()) {
            out.push(Finding {
                lint: "counter-conservation",
                file: METRICS_PATH.to_string(),
                line: *line,
                excerpt: format!(
                    "counter `{c}` has no MetricsSnapshot field — it vanishes at snapshot()"
                ),
            });
        }
    }
    // intra-hub plumbing: snapshot/absorb/reset must touch every
    // counter, snapshot plus() every snapshot field
    if let Some(m) = models.iter().find(|m| m.path == METRICS_PATH) {
        let body_of = |name: &str| -> Option<String> {
            m.fns
                .iter()
                .find(|f| f.name == name)
                .and_then(|f| f.body.as_ref())
                .map(callgraph::block_text)
        };
        for (fn_name, fields) in [
            ("snapshot", &counters),
            ("absorb", &counters),
            ("reset", &counters),
            ("plus", &snap),
        ] {
            let Some(body) = body_of(fn_name) else {
                continue;
            };
            for (c, line) in fields {
                if word_hits(&body, c).is_empty() {
                    out.push(Finding {
                        lint: "counter-conservation",
                        file: METRICS_PATH.to_string(),
                        line: *line,
                        excerpt: format!(
                            "counter `{c}` is missing from `{fn_name}` — conservation breaks at that hop"
                        ),
                    });
                }
            }
        }
    }
    // downstream sinks: gate report and report parser
    for sink in COUNTER_SINKS {
        let Some((_, cs)) = files.iter().find(|(p, _)| p == sink) else {
            continue;
        };
        // raw text: in the sinks a counter travels as a JSON key string
        // (`"passes": {}` / `"passes"` parser lookups), which lexical
        // cleaning would blank out. When the sink has a model with a
        // `report_json` fn, scope the check to that fn's lines — else
        // struct fields and aggregation code elsewhere in the file mask
        // a counter dropped from the rendered report. (The xtask parser
        // sink has no model — xtask is excluded — and keeps the
        // whole-file check.)
        let text = models
            .iter()
            .find(|m| m.path == *sink)
            .and_then(|m| fn_raw_lines(cs, m, "report_json"))
            .unwrap_or_else(|| cs.raw.join("\n"));
        for (c, _) in &snap {
            if word_hits(&text, c).is_empty() {
                out.push(Finding {
                    lint: "counter-conservation",
                    file: (*sink).to_string(),
                    line: 1,
                    excerpt: format!(
                        "SkylineMetrics counter `{c}` is not plumbed through this sink — the statistic is silently dropped"
                    ),
                });
            }
        }
    }
}

/// The raw source lines spanned by fn `name`'s body, `None` when the
/// file has no such fn with a body.
fn fn_raw_lines(cs: &CleanSource, m: &FileModel, name: &str) -> Option<String> {
    let f = m.fns.iter().find(|f| f.name == name)?;
    let body = f.body.as_ref()?;
    let mut last = f.line;
    last_stmt_line(body, &mut last);
    let lo = f.line.saturating_sub(1);
    let hi = last.min(cs.raw.len());
    Some(cs.raw[lo..hi].join("\n"))
}

fn last_stmt_line(block: &Block, last: &mut usize) {
    for stmt in &block.stmts {
        if stmt.line > *last {
            *last = stmt.line;
        }
        for b in &stmt.blocks {
            last_stmt_line(b, last);
        }
    }
}

/// `(field, line)` pairs of a one-field-per-line struct definition.
fn struct_fields(cs: &CleanSource, name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.code.len() {
        let l = &cs.code[i];
        if !word_hits(l, "struct").is_empty() && !word_hits(l, name).is_empty() {
            break;
        }
        i += 1;
    }
    if i == cs.code.len() {
        return out;
    }
    i += 1;
    while i < cs.code.len() {
        let t = cs.code[i].trim();
        if t.starts_with('}') {
            break;
        }
        let t = t.strip_prefix("pub ").unwrap_or(t);
        if let Some((field, _)) = t.split_once(':') {
            let f = field.trim();
            if !f.is_empty() && f.chars().all(|c| c.is_alphanumeric() || c == '_') {
                out.push((f.to_string(), i + 1));
            }
        }
        i += 1;
    }
    out
}

/// DFS cycle detection over the lock-order graph; every edge on a cycle
/// is a finding at its acquisition site.
fn lock_cycles(edges: &BTreeMap<(String, String), (String, usize)>, out: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    // an edge (a, b) is cyclic iff b can reach a
    for ((from, to), (file, line)) in edges {
        let mut seen = BTreeSet::new();
        let mut stack = vec![to.as_str()];
        let mut cyclic = false;
        while let Some(n) = stack.pop() {
            if n == from {
                cyclic = true;
                break;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        if cyclic {
            out.push(Finding {
                lint: "lock-order",
                file: file.clone(),
                line: *line,
                excerpt: format!(
                    "`{to}` acquired while `{from}` is held, but the reverse order also exists — lock-order cycle (deadlock candidate)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let cleaned: Vec<(String, CleanSource)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), CleanSource::new(s)))
            .collect();
        analyze_files(&cleaned)
    }

    fn lints<'a>(findings: &'a [Finding], lint: &str) -> Vec<&'a Finding> {
        findings.iter().filter(|f| f.lint == lint).collect()
    }

    // ------------------------------------------------------- page-leak

    #[test]
    fn seeded_page_leak_is_detected() {
        // the acceptance-criteria seed: an owned HeapFile live across `?`
        let src = "\
fn spill_all(disk: Arc<dyn Disk>, rs: &[Record]) -> Result<HeapFile, StorageError> {
    let mut out = HeapFile::create(disk, 100)?;
    let mut w = HeapWriter::new(&mut out);
    for r in rs {
        w.push(r)?;
    }
    w.finish()?;
    Ok(out)
}
";
        let hits = run(&[("crates/exec/src/seeded.rs", src)]);
        let leaks = lints(&hits, "page-leak");
        assert_eq!(leaks.len(), 1, "{hits:?}");
        assert_eq!(leaks[0].line, 2, "reported at the allocation site");
        assert!(leaks[0].excerpt.contains("`out`"));
    }

    #[test]
    fn end_of_scope_drop_without_consumer_is_a_leak() {
        let src = "\
fn orphan(disk: Arc<dyn Disk>) -> Result<(), StorageError> {
    let out = HeapFile::create(disk, 100);
    Ok(())
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        assert_eq!(lints(&hits, "page-leak").len(), 1, "{hits:?}");
    }

    #[test]
    fn temp_create_then_persist_then_return_is_clean() {
        let src = "\
fn load(disk: Arc<dyn Disk>) -> Result<HeapFile, StorageError> {
    let mut heap = HeapFile::create_temp(disk, 100)?;
    heap.append_all(records)?;
    heap.persist();
    Ok(heap)
}
";
        let hits = run(&[("crates/core/src/planner.rs", src)]);
        assert!(lints(&hits, "page-leak").is_empty(), "{hits:?}");
    }

    #[test]
    fn persist_too_early_re_arms_tracking() {
        let src = "\
fn eager(disk: Arc<dyn Disk>) -> Result<HeapFile, StorageError> {
    let mut heap = HeapFile::create_temp(disk, 100)?;
    heap.persist();
    heap.append_all(records)?;
    Ok(heap)
}
";
        let hits = run(&[("crates/core/src/planner.rs", src)]);
        assert_eq!(lints(&hits, "page-leak").len(), 1, "{hits:?}");
    }

    #[test]
    fn temp_files_are_raii_safe_and_untracked() {
        let src = "\
fn spill(disk: Arc<dyn Disk>) -> Result<HeapFile, StorageError> {
    let mut run = HeapFile::create_temp(disk, 100)?;
    run.append_all(records)?;
    Ok(run)
}
";
        let hits = run(&[("crates/core/src/external/spill.rs", src)]);
        assert!(lints(&hits, "page-leak").is_empty(), "{hits:?}");
    }

    #[test]
    fn moving_into_a_consumer_resolves_tracking() {
        let src = "\
fn hand_off(disk: Arc<dyn Disk>) -> Result<(), StorageError> {
    let out = HeapFile::create(disk, 100)?;
    registry.adopt(out);
    fallible()?;
    Ok(())
}
";
        let hits = run(&[("crates/exec/src/seeded.rs", src)]);
        assert!(lints(&hits, "page-leak").is_empty(), "{hits:?}");
    }

    #[test]
    fn leak_inside_nested_block_scope() {
        let src = "\
fn branchy(disk: Arc<dyn Disk>, c: bool) -> Result<(), StorageError> {
    if c {
        let out = HeapFile::create(disk, 100)?;
        out.append_all(records)?;
    }
    Ok(())
}
";
        let hits = run(&[("crates/exec/src/seeded.rs", src)]);
        assert_eq!(lints(&hits, "page-leak").len(), 1, "{hits:?}");
    }

    #[test]
    fn test_gated_code_is_not_leak_checked() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(disk: Arc<dyn Disk>) -> Result<(), StorageError> {
        let out = HeapFile::create(disk, 100)?;
        other()?;
        Ok(())
    }
}
";
        let hits = run(&[("crates/exec/src/seeded.rs", src)]);
        assert!(lints(&hits, "page-leak").is_empty(), "{hits:?}");
    }

    // -------------------------------------------------- result-discard

    #[test]
    fn let_underscore_discard_of_typed_error_is_flagged() {
        let src = "\
fn flush_page(&mut self) -> Result<(), StorageError> { Ok(()) }
fn sloppy(w: &mut W) {
    let _ = w.flush_page();
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        let d = lints(&hits, "result-discard");
        assert_eq!(d.len(), 1, "{hits:?}");
        assert!(d[0].excerpt.contains("flush_page"));
    }

    #[test]
    fn ok_swallow_is_flagged_but_propagation_is_not() {
        let src = "\
fn flush_page(&mut self) -> Result<(), StorageError> { Ok(()) }
fn swallows(w: &mut W) {
    w.flush_page().ok();
}
fn propagates(w: &mut W) -> Result<(), StorageError> {
    let _ = w.flush_page()?;
    Ok(())
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        let d = lints(&hits, "result-discard");
        assert_eq!(d.len(), 1, "{hits:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn drop_impls_may_discard_results() {
        let src = "\
fn flush_page(&mut self) -> Result<(), StorageError> { Ok(()) }
impl Drop for HeapWriter {
    fn drop(&mut self) {
        let _ = self.flush_page();
    }
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        assert!(lints(&hits, "result-discard").is_empty(), "{hits:?}");
    }

    #[test]
    fn infallible_discards_are_fine() {
        let src = "\
fn observe(&self) -> usize { 1 }
fn f(x: &X) {
    let _ = x.observe();
}
";
        let hits = run(&[("crates/exec/src/seeded.rs", src)]);
        assert!(lints(&hits, "result-discard").is_empty(), "{hits:?}");
    }

    // --------------------------------------------------- hot-path-panic

    #[test]
    fn seeded_unwrap_in_hot_path_is_flagged() {
        let src = "fn pull(&mut self) { self.child.next().unwrap(); }\n";
        let hits = run(&[("crates/exec/src/seeded.rs", src)]);
        let p = lints(&hits, "hot-path-panic");
        assert_eq!(p.len(), 1, "{hits:?}");
        assert_eq!(p[0].line, 1);
        // identical code outside a hot path: no finding
        let hits = run(&[("crates/core/src/algo.rs", src)]);
        assert!(lints(&hits, "hot-path-panic").is_empty());
    }

    #[test]
    fn block_kernel_file_is_a_hot_path() {
        // the batched dominance kernel sits directly under crates/core/src
        // but is hot-path code: the single-file HOT_PATHS entry must
        // cover it
        let src = "fn probe(&self) { self.blocks.last().unwrap(); }\n";
        let hits = run(&[("crates/core/src/dominance_block.rs", src)]);
        assert_eq!(lints(&hits, "hot-path-panic").len(), 1, "{hits:?}");
    }

    #[test]
    fn panic_macro_and_expect_are_flagged() {
        let src = "fn f() { g().expect(\"boom\"); panic!(\"no\"); }\n";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        let toks: Vec<_> = lints(&hits, "hot-path-panic")
            .iter()
            .map(|f| f.excerpt.clone())
            .collect();
        assert!(toks.contains(&".expect(".to_string()), "{hits:?}");
        assert!(toks.contains(&"panic!(".to_string()), "{hits:?}");
    }

    #[test]
    fn gated_statement_inside_live_fn_is_exempt() {
        let src = "\
fn hot(&mut self) {
    work();
    #[cfg(feature = \"check-invariants\")]
    self.auditor.check().unwrap();
    more();
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        let hits = run(&[("crates/core/src/external/seeded.rs", src)]);
        assert!(lints(&hits, "hot-path-panic").is_empty(), "{hits:?}");
    }

    #[test]
    fn strings_and_comments_cannot_fake_findings() {
        let src = "fn f() { log(\"don't panic!(\"); } // .unwrap() in a comment\n";
        let hits = run(&[("crates/exec/src/seeded.rs", src)]);
        assert!(lints(&hits, "hot-path-panic").is_empty(), "{hits:?}");
    }

    // ------------------------------------------------------------ locks

    #[test]
    fn seeded_lock_order_inversion_is_detected() {
        // the acceptance-criteria seed: AB in one function, BA in another
        let src = "\
fn transfer(&self) {
    let a = lock(&self.accounts);
    let b = lock(&self.audit_log);
    a.push(b.len());
}
fn report(&self) {
    let b = lock(&self.audit_log);
    let a = lock(&self.accounts);
    b.push(a.len());
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        let cycles = lints(&hits, "lock-order");
        assert_eq!(cycles.len(), 2, "both edges of the cycle: {hits:?}");
        assert!(cycles.iter().any(|f| f.excerpt.contains("`audit_log`")));
        assert!(cycles.iter().any(|f| f.excerpt.contains("`accounts`")));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "\
fn one(&self) {
    let a = lock(&self.accounts);
    let b = lock(&self.audit_log);
    a.push(b.len());
}
fn two(&self) {
    let a = lock(&self.accounts);
    let b = lock(&self.audit_log);
    b.push(a.len());
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        assert!(lints(&hits, "lock-order").is_empty(), "{hits:?}");
    }

    #[test]
    fn guard_held_across_disk_io_is_flagged() {
        let src = "\
fn write(&self, page: &Page) -> Result<(), StorageError> {
    let mut files = lock(&self.files);
    let f = files.get_mut(&id).unwrap();
    f.write_all(page)?;
    Ok(())
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        let io = lints(&hits, "lock-across-io");
        assert_eq!(io.len(), 1, "{hits:?}");
        assert!(io[0].excerpt.contains("`files`"));
    }

    #[test]
    fn dropping_the_guard_before_io_is_clean() {
        let src = "\
fn write(&self, page: &Page) -> Result<(), StorageError> {
    let f = {
        let files = lock(&self.files);
        files.get(&id).cloned()
    };
    drop_placeholder();
    f.write_all(page)?;
    Ok(())
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        assert!(lints(&hits, "lock-across-io").is_empty(), "{hits:?}");
    }

    #[test]
    fn collecting_through_a_lock_releases_the_guard() {
        // `let v = lock(&x).values().collect();` binds the vector, not
        // the guard — I/O on the next line is lock-free
        let src = "\
fn allocated_pages(&self) -> u64 {
    let handles: Vec<Arc<File>> = lock(&self.files).values().cloned().collect();
    handles.iter().map(|f| f.metadata().map_or(0, |m| m.len())).sum()
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        assert!(lints(&hits, "lock-across-io").is_empty(), "{hits:?}");
    }

    #[test]
    fn method_lock_form_is_recognized() {
        let src = "\
fn nested(&self) {
    let g = self.ledger.lock().unwrap();
    let h = lock(&self.stats);
    g.push(h.len());
}
fn inverse(&self) {
    let h = lock(&self.stats);
    let g = self.ledger.lock().unwrap();
    h.push(g.len());
}
";
        let hits = run(&[("crates/core/src/par.rs", src)]);
        assert_eq!(lints(&hits, "lock-order").len(), 2, "{hits:?}");
    }

    #[test]
    fn lock_without_io_or_nesting_is_clean() {
        let src = "\
fn bump(&self) {
    let mut ledger = lock(&self.ledger);
    ledger.used += 1;
}
";
        let hits = run(&[("crates/storage/src/seeded.rs", src)]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    // -------------------------------------------------------- plumbing

    #[test]
    fn xtask_and_test_files_are_skipped() {
        let leaky = "\
fn t(disk: Arc<dyn Disk>) -> Result<(), StorageError> {
    let out = HeapFile::create(disk, 100)?;
    other()?;
    Ok(())
}
";
        assert!(run(&[("crates/xtask/src/seeded.rs", leaky)]).is_empty());
        assert!(run(&[("tests/seeded.rs", leaky)]).is_empty());
        assert!(run(&[("crates/storage/tests/seeded.rs", leaky)]).is_empty());
    }

    #[test]
    fn acquisition_extraction_normalizes() {
        assert_eq!(
            acquisitions("let a = lock(&self.files);"),
            vec!["files".to_string()]
        );
        assert_eq!(
            acquisitions("let g = self.ledger.lock().unwrap();"),
            vec!["ledger".to_string()]
        );
        assert!(acquisitions("unlock(&x); relock(&y);").is_empty());
    }
}
