//! `cargo xtask` — repo automation gate.
//!
//! Subcommands:
//! * `analyze [--update-baseline] [--sarif PATH]` — the full static
//!   pass: the token lints of [`lints`] plus the dataflow lints of
//!   [`analyze`] over the parsed model of [`model`], ratcheted against
//!   `lint-baseline.txt`; `--sarif` additionally writes a SARIF 2.1.0
//!   report for CI code-scanning annotations.
//! * `lint` — alias for `analyze` (the historical name).
//! * `audit` — run the crates under the `check-invariants` feature so
//!   the dominance auditors watch every operator test.
//! * `oracle` — the differential gate of [`oracle`]: every algorithm
//!   against the naive O(n²) oracle across the paper's workload grid.
//! * `bench [--gate] [--smoke]` — run the parallel-SFS bench gate.
//!   Without `--gate`, (re)writes the committed `BENCH_pr9.json`
//!   baseline; with `--gate`, writes a fresh report to `target/` and
//!   diffs it against the committed one via [`bench::compare`]
//!   (deterministic counters exactly, wall time within 20%), then
//!   checks [`bench::improvement`] (the committed `BENCH_pr5.json`
//!   must beat the retained scalar-era `BENCH_pr4.json` by ≥1.3× in
//!   model comparison cost with a bit-identical skyline) and
//!   [`bench::batch_beats_row`] (in `BENCH_pr9.json` the columnar
//!   sections must reproduce their row twins' skylines bit-for-bit
//!   while strictly reducing rows materialized and bytes moved) and
//!   [`bench::shard_beats_naive`] (in `BENCH_pr10.json` the grid and
//!   representative exchanges must reproduce the single-node skyline
//!   bit-for-bit while strictly reducing bytes exchanged and
//!   coordinator comparisons vs the naive exchange at every shard
//!   count). `--smoke` runs only the small sections — the CI
//!   configuration.
//! * `ratchet --base PATH` — monotonicity check: the committed
//!   `lint-baseline.txt` must be ≤ the snapshot at PATH entry-wise (CI
//!   passes the PR base branch's copy), so allowances only ever shrink.
//! * `check` — analyze + audit + oracle; the CI entry point (the bench
//!   gate is a separate CI job: it needs a release build).

mod analyze;
mod baseline;
mod bench;
mod callgraph;
mod cfg;
mod lints;
mod model;
mod oracle;
mod sarif;
mod scan;
#[cfg(test)]
mod seeded_tests;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

const BASELINE_FILE: &str = "lint-baseline.txt";

fn workspace_root() -> PathBuf {
    // compiled into the binary: crates/xtask → ../../ is the workspace
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace two levels up")
        .to_path_buf()
}

/// Every `.rs` file the lints look at, as workspace-relative paths.
fn source_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src"), root.join("tests")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                // `seeded-violations` holds deliberate lint violations
                // for the self-tests; scanning them would seed the
                // baseline with intentional findings
                if name != "target" && name != "seeded-violations" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

fn run_analysis(root: &Path, update_baseline: bool, sarif_out: Option<&str>) -> Result<(), String> {
    let mut cleaned = Vec::new();
    for rel in source_files(root) {
        let src =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        cleaned.push((rel, scan::CleanSource::new(&src)));
    }
    let mut findings = Vec::new();
    for (rel, cs) in &cleaned {
        findings.extend(lints::lint_file(rel, cs));
    }
    findings.extend(analyze::analyze_files(&cleaned));
    if let Some(path) = sarif_out {
        std::fs::write(root.join(path), sarif::render(&findings))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("analyze: SARIF report written to {path}");
    }
    let current = baseline::counts_of(&findings);
    let baseline_path = root.join(BASELINE_FILE);

    if update_baseline {
        std::fs::write(&baseline_path, baseline::render(&current))
            .map_err(|e| format!("write {BASELINE_FILE}: {e}"))?;
        println!(
            "analyze: baseline rewritten with {} findings across {} (lint, file) pairs",
            findings.len(),
            current.len()
        );
        return Ok(());
    }

    let base_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let base = baseline::parse(&base_text)?;
    let (regressions, improvements) = baseline::compare(&current, &base);

    for d in &improvements {
        println!(
            "analyze: {}:{} improved {} → {} — ratchet down with `cargo xtask analyze --update-baseline`",
            d.lint, d.file, d.allowed, d.current
        );
    }
    if regressions.is_empty() {
        println!(
            "analyze: ok — {} findings, all within the ratchet ({} files scanned)",
            findings.len(),
            cleaned.len()
        );
        return Ok(());
    }
    let mut msg = String::new();
    for d in &regressions {
        msg.push_str(&format!(
            "analyze regression: {} in {} — {} findings, baseline allows {}\n",
            d.lint, d.file, d.current, d.allowed
        ));
        for f in findings
            .iter()
            .filter(|f| f.lint == d.lint && f.file == d.file)
        {
            msg.push_str(&format!("    {}:{}  {}\n", f.file, f.line, f.excerpt));
        }
    }
    msg.push_str(
        "fix the new findings (or, for accepted debt, run `cargo xtask analyze --update-baseline`)",
    );
    Err(msg)
}

/// Monotonicity check for the ratchet itself: the committed
/// `lint-baseline.txt` may only ever shrink. Compares it against an
/// older baseline snapshot (CI passes the merge-base's copy) and fails
/// if any `(lint, file)` count grew or a new pair appeared — catching
/// a `--update-baseline` run that laundered new findings into the
/// allowance.
fn run_ratchet(root: &Path, base_path: &str) -> Result<(), String> {
    let current_text = std::fs::read_to_string(root.join(BASELINE_FILE))
        .map_err(|e| format!("read {BASELINE_FILE}: {e}"))?;
    let base_text = std::fs::read_to_string(base_path)
        .map_err(|e| format!("read base baseline {base_path}: {e}"))?;
    let current = baseline::parse(&current_text)?;
    let base = baseline::parse(&base_text)?;
    let (regressions, improvements) = baseline::compare(&current, &base);
    if regressions.is_empty() {
        println!(
            "ratchet: ok — {} allowance(s) lowered, none raised",
            improvements.len()
        );
        return Ok(());
    }
    let mut msg = String::new();
    for d in &regressions {
        msg.push_str(&format!(
            "ratchet violation: {} in {} — allowance raised {} → {}\n",
            d.lint, d.file, d.allowed, d.current
        ));
    }
    msg.push_str("the lint baseline may only shrink; fix the findings instead of re-baselining");
    Err(msg)
}

fn run_cargo(root: &Path, args: &[&str]) -> Result<(), String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    println!("xtask: running `cargo {}`", args.join(" "));
    let status = Command::new(cargo)
        .args(args)
        .current_dir(root)
        .status()
        .map_err(|e| format!("spawn cargo: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("`cargo {}` failed ({status})", args.join(" ")))
    }
}

fn run_audit(root: &Path) -> Result<(), String> {
    run_cargo(
        root,
        &[
            "test",
            "-q",
            "-p",
            "skyline-core",
            "--features",
            "check-invariants",
        ],
    )
}

fn run_oracle() -> Result<(), String> {
    match oracle::run(false) {
        Ok(cases) => {
            println!("oracle: ok — {cases} algorithm/workload cases agree with the naive oracle");
            Ok(())
        }
        Err(mismatches) => {
            let mut msg = String::new();
            for m in mismatches.iter().take(5) {
                msg.push_str(&format!(
                    "oracle mismatch: {} on {}\n  expected {:?}\n  got      {:?}\n",
                    m.algo, m.workload, m.expected, m.got
                ));
            }
            if mismatches.len() > 5 {
                msg.push_str(&format!("… and {} more\n", mismatches.len() - 5));
            }
            Err(msg)
        }
    }
}

/// Run the bench-gate and shard-gate binaries; with `gate`, diff their
/// fresh reports against the committed `BENCH_pr9.json` /
/// `BENCH_pr10.json` (deterministic fields must match exactly, wall
/// time within [`bench::MAX_WALL_REGRESSION`]), check the committed
/// `BENCH_pr5.json` improves on the scalar-era `BENCH_pr4.json` by
/// [`bench::MIN_COST_IMPROVEMENT`], check the committed `BENCH_pr9.json`
/// batch sections beat their row twins via [`bench::batch_beats_row`],
/// and check the committed `BENCH_pr10.json` grid/representative runs
/// beat the naive exchange via [`bench::shard_beats_naive`].
fn run_bench(root: &Path, gate: bool, smoke: bool) -> Result<(), String> {
    let out_rel = if gate {
        "target/bench_gate_fresh.json"
    } else {
        "BENCH_pr9.json"
    };
    let mut args = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "skyline-bench",
        "--bin",
        "bench_gate",
        "--",
    ];
    if smoke {
        args.push("--smoke");
    }
    args.extend(["--out", out_rel]);
    run_cargo(root, &args)?;
    let shard_out_rel = if gate {
        "target/shard_gate_fresh.json"
    } else {
        "BENCH_pr10.json"
    };
    let mut shard_args = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "skyline-bench",
        "--bin",
        "shard_gate",
        "--",
    ];
    if smoke {
        shard_args.push("--smoke");
    }
    shard_args.extend(["--out", shard_out_rel]);
    run_cargo(root, &shard_args)?;
    if !gate {
        return Ok(());
    }
    let committed = std::fs::read_to_string(root.join("BENCH_pr9.json")).map_err(|e| {
        format!("read BENCH_pr9.json: {e} — regenerate the baseline with `cargo xtask bench`")
    })?;
    let fresh =
        std::fs::read_to_string(root.join(out_rel)).map_err(|e| format!("read {out_rel}: {e}"))?;
    for note in bench::compare(&committed, &fresh)? {
        println!("bench: {note}");
    }
    println!("bench: gate ok — fresh run agrees with the committed BENCH_pr9.json");
    let scalar_era = std::fs::read_to_string(root.join("BENCH_pr4.json"))
        .map_err(|e| format!("read BENCH_pr4.json (scalar-era baseline): {e}"))?;
    let block_era = std::fs::read_to_string(root.join("BENCH_pr5.json"))
        .map_err(|e| format!("read BENCH_pr5.json (block-era baseline): {e}"))?;
    for note in bench::improvement(&scalar_era, &block_era)? {
        println!("bench: {note}");
    }
    println!(
        "bench: improvement ok — block kernel beats the scalar-era baseline by ≥{:.1}×",
        bench::MIN_COST_IMPROVEMENT
    );
    for note in bench::batch_beats_row(&committed)? {
        println!("bench: {note}");
    }
    println!(
        "bench: batch ok — columnar sections beat their row twins on data movement \
         (wall within {:.0}% at t=1)",
        (bench::BATCH_WALL_SLACK - 1.0) * 100.0
    );
    let committed_shard = std::fs::read_to_string(root.join("BENCH_pr10.json")).map_err(|e| {
        format!("read BENCH_pr10.json: {e} — regenerate the baseline with `cargo xtask bench`")
    })?;
    let fresh_shard = std::fs::read_to_string(root.join(shard_out_rel))
        .map_err(|e| format!("read {shard_out_rel}: {e}"))?;
    for note in bench::shard_compare(&committed_shard, &fresh_shard)? {
        println!("bench: {note}");
    }
    println!("bench: shard gate ok — fresh run agrees with the committed BENCH_pr10.json");
    for note in bench::shard_beats_naive(&committed_shard)? {
        println!("bench: {note}");
    }
    println!(
        "bench: shard ok — grid and representative strictly reduce bytes exchanged and \
         coordinator comparisons vs naive at every shard count"
    );
    Ok(())
}

fn usage() -> String {
    "usage: cargo xtask <check|analyze|lint|audit|oracle|bench|ratchet> \
     [--update-baseline] [--sarif PATH] [--explain RULE-ID] [--gate] [--smoke] [--base PATH]"
        .to_string()
}

/// `cargo xtask analyze --explain <rule-id>`: print the SARIF help text
/// for one rule, or list every rule id.
fn run_explain(rule: &str) -> Result<(), String> {
    if sarif::RULE_IDS.contains(&rule) {
        println!("{rule}: {}", sarif::rule_help(rule));
        return Ok(());
    }
    let mut msg = format!("unknown rule id `{rule}` — known rules:\n");
    for id in sarif::RULE_IDS {
        msg.push_str(&format!("  {id}: {}\n", sarif::rule_help(id)));
    }
    Err(msg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    let update = args.iter().any(|a| a == "--update-baseline");
    let sarif = args
        .iter()
        .position(|a| a == "--sarif")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let gate = args.iter().any(|a| a == "--gate");
    let smoke = args.iter().any(|a| a == "--smoke");
    let base = args
        .iter()
        .position(|a| a == "--base")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let explain = args
        .iter()
        .position(|a| a == "--explain")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let result = match (args.first().map(String::as_str), explain) {
        (Some("analyze" | "lint"), Some(rule)) => run_explain(rule),
        (first, _) => match first {
            Some("analyze") | Some("lint") => run_analysis(&root, update, sarif),
            Some("ratchet") => match base {
                Some(b) => run_ratchet(&root, b),
                None => Err(
                    "ratchet needs --base PATH (the older baseline to compare against)".to_string(),
                ),
            },
            Some("audit") => run_audit(&root),
            Some("oracle") => run_oracle(),
            Some("bench") => run_bench(&root, gate, smoke),
            Some("check") => run_analysis(&root, false, sarif)
                .and_then(|()| run_audit(&root))
                .and_then(|()| run_oracle()),
            _ => Err(usage()),
        },
    };
    match result {
        Ok(()) => {
            println!("xtask: all good");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
