//! Workspace-wide call graph over the AST-lite model of [`crate::model`].
//!
//! Each non-test function with a body gets a [`FnFacts`] summary: the
//! call names it makes (via `calls_in`), whether it directly polls the
//! cancellation token, directly blocks (condvar wait / join / sleep /
//! park), directly performs disk I/O, and which `self.`-field locks it
//! acquires. Two fixpoints then lift the direct facts to transitive
//! capabilities, with deliberately asymmetric name resolution:
//!
//! * **`may_poll`** — used to *suppress* cancel-liveness findings — is
//!   an OR-merge over name collisions: if *any* workspace function named
//!   `next` polls, a call to `next(` counts as possibly polling. A
//!   wrongly-suppressed finding is the cost; a false finding on a loop
//!   that genuinely polls through its iterator would be worse for the
//!   ratchet. Propagation between functions still only follows
//!   *resolvable* calls (free and `self.`-method); otherwise one
//!   polling `next` would transitively mark most of the workspace
//!   may-poll and the lint would be vacuous.
//! * **`must_block` / `must_io` / callee lock acquisitions** — used to
//!   *generate* blocking-under-lock findings — propagate only through
//!   *uniquely named* workspace functions: a call name with two or more
//!   definitions is treated as opaque. Both asymmetries err toward
//!   silence, so a baseline regression is always a real change.
//!
//! The graph is name-based (no receiver types), which DESIGN.md §13
//! documents as the model's main approximation.

use crate::analyze::{is_test_path, method_bases, paired_counter_debits, IO_TOKENS};
use crate::lints::has_token;
use crate::model::{Block, FileModel};
use std::collections::{BTreeMap, BTreeSet};

/// Tokens that poll the cancellation token directly: the free/assoc
/// `poll(` helper, `CancelToken::check(`, and the raw flag read.
pub const POLL_TOKENS: &[&str] = &["poll(", ".check(", "is_cancelled("];

/// Tokens that block the calling thread: condvar waits (helper or
/// method form), thread joins, sleeps, parks.
pub const BLOCK_TOKENS: &[&str] = &["wait(", "wait_timeout(", ".join()", "::sleep(", "park("];

/// Call names that the interprocedural summaries may resolve: free
/// calls (`helper(…)`, `Type::assoc(…)`) and `self.`-method calls.
/// Method calls on any other receiver are opaque — the text model has
/// no receiver types, and names like `next`/`pop`/`push` collide with
/// std containers and every operator impl. Propagating capabilities
/// through those would poison the summaries (one polling `next` would
/// mark half the workspace may-poll).
pub fn resolvable_calls(text: &str) -> Vec<String> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_alphabetic() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let mut j = i;
            while j < chars.len() && chars[j] == ' ' {
                j += 1;
            }
            if j < chars.len() && chars[j] == '(' {
                let resolvable = if start > 0 && chars[start - 1] == '.' {
                    // `self.helper(…)` — same-impl dispatch
                    start >= 5
                        && chars[start - 5..start - 1].iter().collect::<String>() == "self"
                        && (start == 5
                            || !(chars[start - 6].is_alphanumeric() || chars[start - 6] == '_'))
                } else {
                    true
                };
                if resolvable {
                    out.push(chars[start..i].iter().collect());
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// One function's direct facts.
struct FnFacts {
    name: String,
    calls: BTreeSet<String>,
    polls: bool,
    blocks: bool,
    does_io: bool,
    /// `self.`-field locks acquired anywhere in the body. Field names
    /// are stable across call sites of the same impl, unlike parameter
    /// locks, so only these propagate to callers.
    field_acquires: BTreeSet<String>,
    /// Paired admission counters the body debits (`admitted -= 1` …).
    rollbacks: BTreeSet<String>,
    /// Receiver bases the body calls `.release()` on (`gate` …).
    releases: BTreeSet<String>,
}

/// The workspace call graph plus its transitive capability sets.
pub struct CallGraph {
    /// Call names that may (somewhere, under some collision) reach a
    /// cancellation poll.
    may_poll: BTreeSet<String>,
    /// Uniquely-defined call names guaranteed to block.
    must_block: BTreeSet<String>,
    /// Uniquely-defined call names guaranteed to perform disk I/O.
    must_io: BTreeSet<String>,
    /// Uniquely-defined call names → `self.`-field locks they (or their
    /// unique callees) acquire.
    call_acquires: BTreeMap<String, BTreeSet<String>>,
    /// Call names → paired admission counters they (or their callees)
    /// debit. Used to *discharge* resource-pairing obligations, so like
    /// `may_poll` it OR-merges across name collisions.
    counter_rollbacks: BTreeMap<String, BTreeSet<String>>,
    /// Call names → credit receivers they (or their callees) call
    /// `.release()` on. Suppression-only, OR-merged like `may_poll`.
    credit_releases: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Does a call to `name` possibly poll the cancel token?
    pub fn may_poll(&self, name: &str) -> bool {
        self.may_poll.contains(name)
    }

    /// Is a call to `name` guaranteed to block (unique definition)?
    pub fn must_block(&self, name: &str) -> bool {
        self.must_block.contains(name)
    }

    /// Is a call to `name` guaranteed to hit disk (unique definition)?
    pub fn must_io(&self, name: &str) -> bool {
        self.must_io.contains(name)
    }

    /// Field locks a call to `name` acquires (unique definition only).
    pub fn acquires(&self, name: &str) -> Option<&BTreeSet<String>> {
        self.call_acquires.get(name)
    }

    /// Paired counters a call to `name` may debit (OR over collisions).
    pub fn rolls_back(&self, name: &str) -> Option<&BTreeSet<String>> {
        self.counter_rollbacks.get(name)
    }

    /// Credit receivers a call to `name` may release (OR over collisions).
    pub fn releases(&self, name: &str) -> Option<&BTreeSet<String>> {
        self.credit_releases.get(name)
    }
}

/// Build the call graph over every non-test function in the models.
pub fn build(models: &[FileModel]) -> CallGraph {
    let mut fns: Vec<FnFacts> = Vec::new();
    for m in models {
        let file_is_test = is_test_path(&m.path);
        for f in &m.fns {
            let Some(body) = &f.body else { continue };
            if f.is_test || file_is_test {
                continue;
            }
            let text = block_text(body);
            let mut field_acquires = BTreeSet::new();
            collect_field_acquires(body, &mut field_acquires);
            fns.push(FnFacts {
                name: f.name.clone(),
                calls: resolvable_calls(&text).into_iter().collect(),
                polls: POLL_TOKENS.iter().any(|t| has_token(&text, t)),
                blocks: BLOCK_TOKENS.iter().any(|t| has_token(&text, t)),
                does_io: IO_TOKENS.iter().any(|t| has_token(&text, t)),
                field_acquires,
                rollbacks: paired_counter_debits(&text),
                releases: method_bases(&text, ".release("),
            });
        }
    }

    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(i);
    }
    let unique = |name: &str| -> Option<usize> {
        match by_name.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    };

    // may_poll: OR over collisions, transitive through any call.
    let mut may_poll: BTreeSet<String> = fns
        .iter()
        .filter(|f| f.polls)
        .map(|f| f.name.clone())
        .collect();
    loop {
        let mut changed = false;
        for f in &fns {
            if !may_poll.contains(&f.name) && f.calls.iter().any(|c| may_poll.contains(c)) {
                may_poll.insert(f.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // must_block / must_io / acquires: per-definition fixpoints that
    // look through uniquely named callees only. The direct block
    // tokens (`wait(` …) are excluded from propagation *sources* at the
    // lint site, not here: a function whose body waits is blocking from
    // its caller's perspective regardless of the condvar protocol.
    let mut blocks: Vec<bool> = fns.iter().map(|f| f.blocks).collect();
    let mut io: Vec<bool> = fns.iter().map(|f| f.does_io).collect();
    let mut acq: Vec<BTreeSet<String>> = fns.iter().map(|f| f.field_acquires.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for c in &fns[i].calls {
                let Some(j) = unique(c) else { continue };
                if blocks[j] && !blocks[i] {
                    blocks[i] = true;
                    changed = true;
                }
                if io[j] && !io[i] {
                    io[i] = true;
                    changed = true;
                }
                if !acq[j].is_empty() && i != j {
                    let extra: Vec<String> = acq[j]
                        .iter()
                        .filter(|l| !acq[i].contains(*l))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        acq[i].extend(extra);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // counter rollbacks / credit releases: these *discharge* pairing
    // obligations at call sites, so like may_poll they are suppression
    // maps — OR-merged across name collisions and propagated through
    // any resolvable call. A spurious discharge only silences.
    let counter_rollbacks = or_merge(&fns, |f| &f.rollbacks);
    let credit_releases = or_merge(&fns, |f| &f.releases);

    let mut must_block = BTreeSet::new();
    let mut must_io = BTreeSet::new();
    let mut call_acquires = BTreeMap::new();
    for (name, defs) in &by_name {
        let [only] = defs.as_slice() else { continue };
        if blocks[*only] {
            must_block.insert((*name).to_string());
        }
        if io[*only] {
            must_io.insert((*name).to_string());
        }
        if !acq[*only].is_empty() {
            call_acquires.insert((*name).to_string(), acq[*only].clone());
        }
    }

    CallGraph {
        may_poll,
        must_block,
        must_io,
        call_acquires,
        counter_rollbacks,
        credit_releases,
    }
}

/// OR-merge fixpoint for a suppression set-map: seed each call name
/// with the union of its definitions' direct facts, then propagate
/// through resolvable calls until stable.
fn or_merge(
    fns: &[FnFacts],
    direct: fn(&FnFacts) -> &BTreeSet<String>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in fns {
        if !direct(f).is_empty() {
            map.entry(f.name.clone())
                .or_default()
                .extend(direct(f).iter().cloned());
        }
    }
    loop {
        let mut changed = false;
        for f in fns {
            let mut extra: Vec<String> = Vec::new();
            for c in &f.calls {
                if let Some(s) = map.get(c) {
                    extra.extend(
                        s.iter()
                            .filter(|v| !map.get(&f.name).is_some_and(|m| m.contains(*v)))
                            .cloned(),
                    );
                }
            }
            if !extra.is_empty() {
                map.entry(f.name.clone()).or_default().extend(extra);
                changed = true;
            }
        }
        if !changed {
            return map;
        }
    }
}

/// Full body text of a block, nested blocks included.
pub fn block_text(block: &Block) -> String {
    let mut out = String::new();
    for s in &block.stmts {
        out.push_str(&s.text_all());
        out.push(' ');
    }
    out
}

/// `self.`-field lock acquisitions anywhere in the block:
/// `lock(&self.X)` helper form and `self.X.lock()` method form. Local
/// and parameter locks are deliberately excluded — their names mean
/// nothing outside the function.
fn collect_field_acquires(block: &Block, set: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        field_acquisitions(&stmt.head, set);
        for b in &stmt.blocks {
            collect_field_acquires(b, set);
        }
    }
}

fn field_acquisitions(head: &str, set: &mut BTreeSet<String>) {
    // helper form: lock(&self.files)
    let mut from = 0;
    while let Some(p) = head[from..].find("lock(&self.") {
        let at = from + p;
        from = at + 11;
        let before = head[..at].chars().next_back();
        if before.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.') {
            continue; // method call or suffix of another identifier
        }
        let name: String = head[at + 11..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            set.insert(name);
        }
    }
    // method form: self.ledger.lock()
    let mut from = 0;
    while let Some(p) = head[from..].find(".lock(") {
        let at = from + p;
        from = at + 6;
        let base: String = head[..at]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
            .collect();
        let base: String = base.chars().rev().collect();
        if let Some(field) = base.strip_prefix("self.") {
            let field = field.trim_matches('.');
            if !field.is_empty() && !field.contains('.') {
                set.insert(field.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::file_model;
    use crate::scan::CleanSource;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(p, s)| file_model(p, &CleanSource::new(s)))
            .collect();
        build(&models)
    }

    #[test]
    fn transitive_poll_through_helper_chain() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn raw(t: &CancelToken) -> bool { t.is_cancelled() }\n\
             fn relay(t: &CancelToken) { raw(t); }\n\
             fn driver(t: &CancelToken) { relay(t); }\n\
             fn bystander() { work(); }\n",
        )]);
        assert!(g.may_poll("raw"));
        assert!(g.may_poll("relay"));
        assert!(g.may_poll("driver"));
        assert!(!g.may_poll("bystander"));
    }

    #[test]
    fn poll_merges_or_wise_across_name_collisions() {
        // two `next` definitions; one polls — calls to `next` count as
        // possibly polling (suppression is conservative)
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "fn next(&mut self) { poll(self.cancel, self.n); }\n",
            ),
            ("crates/core/src/b.rs", "fn next(&mut self) { step(); }\n"),
        ]);
        assert!(g.may_poll("next"));
    }

    #[test]
    fn must_block_requires_a_unique_definition() {
        let g = graph(&[
            (
                "crates/exec/src/a.rs",
                "fn push(&self) { let st = lock(&self.state); wait(&self.cv, st); }\n",
            ),
            (
                "crates/exec/src/b.rs",
                "fn push(&mut self) { self.v.extend(x); }\n",
            ),
        ]);
        // collision: two `push` defs, one blocking — treated as opaque
        assert!(!g.must_block("push"));
        let g = graph(&[(
            "crates/exec/src/a.rs",
            "fn admit(&self) { let st = lock(&self.state); wait(&self.cv, st); }\n\
             fn outer(&self) { self.admit(); }\n",
        )]);
        assert!(g.must_block("admit"));
        assert!(
            g.must_block("outer"),
            "blocking propagates through unique callees"
        );
    }

    #[test]
    fn io_and_field_locks_propagate_through_unique_callees() {
        let g = graph(&[(
            "crates/storage/src/a.rs",
            "fn flush_raw(&self) { self.file.write_all(buf); }\n\
             fn flush(&self) { let g = lock(&self.ledger); drop(g); self.flush_raw(); }\n",
        )]);
        assert!(g.must_io("flush_raw"));
        assert!(g.must_io("flush"), "I/O propagates through unique callees");
        assert!(g.acquires("flush").is_some_and(|s| s.contains("ledger")));
        assert!(g.acquires("flush_raw").is_none());
    }

    #[test]
    fn parameter_locks_do_not_propagate() {
        // sync_util::lock's own `m.lock()` is parameter-relative; callers
        // must not inherit a phantom `m` lock
        let g = graph(&[(
            "crates/exec/src/sync_util.rs",
            "fn lock<T>(m: &Mutex<T>) -> MutexGuard<T> { m.lock().unwrap_or_else(|e| e.into_inner()) }\n",
        )]);
        assert!(g.acquires("lock").is_none());
    }

    #[test]
    fn counter_rollbacks_propagate_or_wise() {
        let g = graph(&[(
            "crates/server/src/a.rs",
            "fn unadmit(&self) { let mut st = lock(&self.stats); st.admitted -= 1; st.in_flight -= 1; }\n\
             fn shed(&self) { self.unadmit(); }\n\
             fn bystander(&self) { work(); }\n",
        )]);
        let r = g.rolls_back("unadmit").expect("direct debits");
        assert!(r.contains("admitted") && r.contains("in_flight"));
        assert!(
            g.rolls_back("shed").is_some_and(|s| s.contains("admitted")),
            "rollback propagates through the call"
        );
        assert!(g.rolls_back("bystander").is_none());
    }

    #[test]
    fn credit_releases_track_receiver_bases() {
        let g = graph(&[(
            "crates/server/src/a.rs",
            "fn finish(&self) { self.shared.gate.release(); }\n\
             fn outer(&self) { self.finish(); }\n",
        )]);
        assert!(g.releases("finish").is_some_and(|s| s.contains("gate")));
        assert!(g.releases("outer").is_some_and(|s| s.contains("gate")));
    }

    #[test]
    fn test_functions_stay_out_of_the_graph() {
        let g = graph(&[(
            "crates/exec/tests/t.rs",
            "fn helper(t: &CancelToken) { t.is_cancelled(); }\n",
        )]);
        assert!(!g.may_poll("helper"));
    }
}
