//! Session-layer contract tests: happy-path streaming, typed quota and
//! deadline errors, both admission watermarks, shutdown, and counter
//! conservation.

use skyline_query::{catalog::Catalog, execute, QueryError, SkylineAlgo};
use skyline_relation::samples::good_eats;
use skyline_server::{QueryOptions, ServerConfig, ServerError, SkylineServer};
use std::time::Duration;

const SKYLINE_SQL: &str =
    "SELECT restaurant FROM GoodEats SKYLINE OF S MAX, F MAX, D MAX, price MIN";

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register("GoodEats", good_eats());
    cat
}

#[test]
fn completed_query_matches_the_direct_executor() {
    let server = SkylineServer::new(catalog(), ServerConfig::default());
    let session = server.session();
    let rows = session.submit(SKYLINE_SQL).unwrap().collect().unwrap();
    let oracle = execute(SKYLINE_SQL, &catalog()).unwrap();
    assert_eq!(rows, oracle.rows().to_vec());
    server.shutdown();
    let snap = server.snapshot();
    assert!(snap.totals.conserved(), "{snap:?}");
    assert_eq!(snap.totals.completed, 1);
    assert_eq!(snap.totals.in_flight, 0);
    assert_eq!(server.inflight_pages(), 0, "admission charges returned");
}

#[test]
fn every_algorithm_serves_the_same_skyline() {
    let server = SkylineServer::new(catalog(), ServerConfig::default());
    let session = server.session();
    let oracle = execute(SKYLINE_SQL, &catalog()).unwrap().into_rows();
    for algo in [
        SkylineAlgo::Auto,
        SkylineAlgo::Sfs,
        SkylineAlgo::Bnl,
        SkylineAlgo::DivideAndConquer,
        SkylineAlgo::Parallel,
        SkylineAlgo::Strata,
    ] {
        let handle = session
            .submit_with(SKYLINE_SQL, &QueryOptions::default().with_algo(algo))
            .unwrap();
        assert_eq!(handle.collect().unwrap(), oracle, "{algo:?}");
    }
}

#[test]
fn zero_quota_surfaces_typed_quota_error() {
    let server = SkylineServer::new(catalog(), ServerConfig::default());
    let session = server.session();
    let err = session
        .submit_with(SKYLINE_SQL, &QueryOptions::default().with_quota_pages(0))
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(err.is_quota(), "{err:?}");
    server.shutdown();
    let snap = server.snapshot();
    assert!(snap.totals.conserved());
    assert_eq!(snap.totals.failed, 1);
    assert_eq!(server.inflight_pages(), 0);
}

#[test]
fn elapsed_deadline_surfaces_typed_cancellation() {
    let server = SkylineServer::new(catalog(), ServerConfig::default());
    let session = server.session();
    let err = session
        .submit_with(
            SKYLINE_SQL,
            &QueryOptions::default().with_deadline(Duration::ZERO),
        )
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(err.is_cancelled(), "{err:?}");
    let stats = session.stats();
    assert!(stats.conserved());
    assert_eq!(stats.cancelled, 1);
}

#[test]
fn explicit_cancel_reaches_a_queued_query() {
    let server = SkylineServer::new(catalog(), ServerConfig::default());
    let session = server.session();
    let handle = session.submit(SKYLINE_SQL).unwrap();
    handle.cancel();
    // the worker may already have finished: either outcome is typed
    match handle.collect() {
        Ok(rows) => assert!(!rows.is_empty()),
        Err(e) => assert!(e.is_cancelled(), "{e:?}"),
    }
    assert!(session.stats().conserved());
}

#[test]
fn page_watermark_sheds_oversized_quotas() {
    let cfg = ServerConfig {
        pool_pages: 16,
        ..ServerConfig::default()
    };
    let server = SkylineServer::new(catalog(), cfg);
    let session = server.session();
    let err = session
        .submit_with(SKYLINE_SQL, &QueryOptions::default().with_quota_pages(32))
        .unwrap_err();
    assert!(err.is_overloaded(), "{err:?}");
    let stats = session.stats();
    assert!(stats.conserved());
    assert_eq!(stats.rejected, 1);
    assert_eq!(server.inflight_pages(), 0);
}

#[test]
fn queue_watermark_sheds_load_with_retry_hint() {
    // one worker wedged behind an unread result channel; the queue and
    // gate then fill deterministically.
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        batch_rows: 1,
        result_batches: 1,
        admission_timeout: Duration::from_millis(5),
        stream_grace: Duration::from_secs(30),
        retry_after_ms: 7,
        ..ServerConfig::default()
    };
    let server = SkylineServer::new(catalog(), cfg);
    let session = server.session();
    // GoodEats' skyline has 4 rows: with 1-row batches into a 1-batch
    // channel the worker cannot finish the first query while its handle
    // goes unread, so both gate credits (queue 1 + worker 1) stay held.
    let wedged = session.submit(SKYLINE_SQL).unwrap();
    let queued = session.submit(SKYLINE_SQL).unwrap();
    let overflow = session.submit(SKYLINE_SQL).unwrap_err();
    assert!(overflow.is_overloaded(), "{overflow:?}");
    assert_eq!(
        overflow,
        ServerError::Overloaded { retry_after_ms: 7 },
        "the configured retry hint is carried"
    );
    drop(wedged);
    drop(queued);
    server.shutdown();
    assert!(server.snapshot().totals.conserved());
    assert_eq!(server.inflight_pages(), 0);
}

#[test]
fn shutdown_answers_queued_queries_and_joins_workers() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    };
    let server = SkylineServer::new(catalog(), cfg);
    let session = server.session();
    let handles: Vec<_> = (0..4)
        .filter_map(|_| session.submit(SKYLINE_SQL).ok())
        .collect();
    server.shutdown(); // joins: returning at all proves no deadlock
    for h in handles {
        match h.collect() {
            Ok(rows) => assert!(!rows.is_empty(), "completed before the cancel"),
            Err(e) => assert!(
                e.is_cancelled() || matches!(e, ServerError::Shutdown | ServerError::Stalled),
                "typed shutdown outcome, got {e:?}"
            ),
        }
    }
    let snap = server.snapshot();
    assert!(snap.totals.conserved(), "{snap:?}");
    assert_eq!(snap.totals.in_flight, 0);
    assert_eq!(server.inflight_pages(), 0);
    // post-shutdown submissions are refused typed
    let err = session.submit(SKYLINE_SQL).unwrap_err();
    assert!(matches!(err, ServerError::Shutdown), "{err:?}");
}

#[test]
fn dropping_a_handle_never_wedges_the_worker() {
    let cfg = ServerConfig {
        workers: 1,
        batch_rows: 1,
        result_batches: 1,
        stream_grace: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = SkylineServer::new(catalog(), cfg);
    let session = server.session();
    drop(session.submit(SKYLINE_SQL).unwrap());
    // the worker must come back for the next query
    let rows = session.submit(SKYLINE_SQL).unwrap().collect().unwrap();
    assert!(!rows.is_empty());
    assert!(session.stats().conserved());
}

#[test]
fn parse_errors_stream_as_typed_query_errors() {
    let server = SkylineServer::new(catalog(), ServerConfig::default());
    let session = server.session();
    let err = session
        .submit("SELECT FROM WHERE")
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(
        matches!(err, ServerError::Query(QueryError::Parse { .. })),
        "{err:?}"
    );
    assert_eq!(session.stats().failed, 1);
}
