//! Shed-path bookkeeping contracts: every admission rejection and
//! quota failure must leave the books *exactly* restored — `admitted`
//! and `in_flight` back where they were, the page ledger at zero —
//! not merely conserved in aggregate. These are the runtime twins of
//! the `resource-pairing` lint: the static analysis proves the
//! rollback code is on every error path, these tests prove it runs.

use skyline_query::catalog::Catalog;
use skyline_relation::samples::good_eats;
use skyline_server::{QueryOptions, ServerConfig, ServerError, SkylineServer};
use std::time::Duration;

const SKYLINE_SQL: &str =
    "SELECT restaurant FROM GoodEats SKYLINE OF S MAX, F MAX, D MAX, price MIN";

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register("GoodEats", good_eats());
    cat
}

#[test]
fn watermark_shed_restores_books_exactly() {
    let cfg = ServerConfig {
        pool_pages: 16,
        ..ServerConfig::default()
    };
    let server = SkylineServer::new(catalog(), cfg);
    let session = server.session();
    let err = session
        .submit_with(SKYLINE_SQL, &QueryOptions::default().with_quota_pages(32))
        .unwrap_err();
    assert!(matches!(err, ServerError::Overloaded { .. }), "{err:?}");
    let stats = session.stats();
    assert!(stats.conserved(), "{stats:?}");
    // the shed opened no books: the submission is counted, rejected,
    // and nothing else moved
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.admitted, 0, "no admitted bump may survive a shed");
    assert_eq!(stats.in_flight, 0, "no in-flight bump may survive a shed");
    assert_eq!(server.inflight_pages(), 0, "page ledger exactly restored");
}

#[test]
fn repeated_sheds_do_not_drift_the_books() {
    let cfg = ServerConfig {
        pool_pages: 16,
        retry_after_ms: 3,
        ..ServerConfig::default()
    };
    let server = SkylineServer::new(catalog(), cfg);
    let session = server.session();
    for _ in 0..5 {
        let err = session
            .submit_with(SKYLINE_SQL, &QueryOptions::default().with_quota_pages(32))
            .unwrap_err();
        assert_eq!(err, ServerError::Overloaded { retry_after_ms: 3 });
    }
    let stats = session.stats();
    assert!(stats.conserved(), "{stats:?}");
    assert_eq!((stats.submitted, stats.rejected), (5, 5));
    assert_eq!((stats.admitted, stats.in_flight), (0, 0));
    assert_eq!(server.inflight_pages(), 0);
    // a query sized within the pool is admitted and completes on the
    // same server — the shed left no residue behind
    let rows = session
        .submit_with(SKYLINE_SQL, &QueryOptions::default().with_quota_pages(8))
        .unwrap()
        .collect()
        .unwrap();
    assert!(!rows.is_empty());
    server.shutdown();
    let snap = server.snapshot();
    assert!(snap.totals.conserved(), "{snap:?}");
    assert_eq!(snap.totals.completed, 1);
    assert_eq!(server.inflight_pages(), 0);
}

#[test]
fn queue_full_shed_releases_credit_and_counters() {
    // wedge the single worker behind an unread result channel so the
    // gate fills deterministically, then shed and verify the rejected
    // submission returned its credit: after draining, the books close.
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        batch_rows: 1,
        result_batches: 1,
        admission_timeout: Duration::from_millis(5),
        stream_grace: Duration::from_secs(30),
        retry_after_ms: 9,
        ..ServerConfig::default()
    };
    let server = SkylineServer::new(catalog(), cfg);
    let session = server.session();
    let wedged = session.submit(SKYLINE_SQL).unwrap();
    let queued = session.submit(SKYLINE_SQL).unwrap();
    let err = session.submit(SKYLINE_SQL).unwrap_err();
    assert_eq!(err, ServerError::Overloaded { retry_after_ms: 9 });
    let mid = session.stats();
    assert!(mid.conserved(), "{mid:?}");
    assert_eq!(mid.rejected, 1);
    assert_eq!(mid.admitted, 2, "only the two accepted queries hold books");
    drop(wedged);
    drop(queued);
    server.shutdown();
    let snap = server.snapshot();
    assert!(snap.totals.conserved(), "{snap:?}");
    assert_eq!(snap.totals.in_flight, 0, "every admitted query settled");
    assert_eq!(server.inflight_pages(), 0, "every page charge returned");
}

#[test]
fn quota_failure_settles_books_and_drains_ledger() {
    let server = SkylineServer::new(catalog(), ServerConfig::default());
    let session = server.session();
    let err = session
        .submit_with(SKYLINE_SQL, &QueryOptions::default().with_quota_pages(0))
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(err.is_quota(), "{err:?}");
    let stats = session.stats();
    assert!(stats.conserved(), "{stats:?}");
    // the query was admitted, then failed — and settled completely
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.in_flight, 0, "quota failure must settle in_flight");
    assert_eq!(
        server.inflight_pages(),
        0,
        "quota failure drains the ledger"
    );
    // the failure is not sticky: the same session still serves queries
    let rows = session.submit(SKYLINE_SQL).unwrap().collect().unwrap();
    assert!(!rows.is_empty());
    let stats = session.stats();
    assert!(stats.conserved(), "{stats:?}");
    assert_eq!((stats.admitted, stats.completed, stats.failed), (2, 1, 1));
}
