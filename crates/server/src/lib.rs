#![warn(missing_docs)]

//! An in-process session server for skyline queries.
//!
//! [`SkylineServer`] accepts the `SKYLINE OF` SQL dialect of
//! `skyline-query`, runs each query on a bounded worker pool, and
//! enforces per-session execution contracts:
//!
//! - **Admission control** — a credit gate bounds queue depth and a
//!   shared page ledger bounds in-flight quota pages; crossing either
//!   watermark sheds load with the typed [`ServerError::Overloaded`]
//!   (carrying a retry-after hint) instead of queuing without bound.
//! - **Page quotas** — every admitted query gets a private
//!   [`skyline_storage::BufferPool`] sized to its quota; a pass that
//!   does not fit surfaces as the typed
//!   [`skyline_query::QueryError::QuotaExceeded`] with zero pages
//!   leaked, never a panic.
//! - **Deadlines** — each query's [`skyline_exec::CancelToken`] is a
//!   child of the server's root token (so shutdown fans out) with an
//!   optional per-query deadline; a trip surfaces as the typed
//!   [`skyline_query::QueryError::Cancelled`] carrying partial
//!   progress.
//! - **Streaming with backpressure** — results flow to the client in
//!   row batches through a bounded channel; a consumer slower than the
//!   stream grace has its query cancelled ([`ServerError::Stalled`])
//!   rather than wedging a worker forever.
//!
//! Per-session [`SessionStats`] counters obey a conservation law
//! (`submitted = admitted + rejected`, `admitted = completed +
//! cancelled + failed + in-flight`) and aggregate into a
//! [`ServerSnapshot`]. The storm harness in the repository's `tests/`
//! drives hundreds of queries through fault-injected disks, random
//! cancels, starved quotas and deadline storms, gating on exactly-one-
//! outcome per query, zero leaked pages, and clean worker shutdown.

pub mod config;
pub mod error;
pub mod server;
pub mod stats;

pub use config::ServerConfig;
pub use error::ServerError;
pub use server::{QueryHandle, QueryOptions, Session, SkylineServer};
pub use stats::{ServerSnapshot, SessionStats};
