//! The session server: admission, workers, streaming, shutdown.
//!
//! Concurrency contract (checked by `cargo xtask analyze`):
//!
//! - No queue/backpressure call is ever made while a mutex guard is
//!   live — stats updates happen in their own tight scopes.
//! - The worker loop is cancel-live: every job run begins with a token
//!   check, and the streaming loop re-checks between batches.
//! - Every resource is lease-shaped. The admission credit and the
//!   shared-pool page charge travel *inside* the job, so whichever
//!   thread drops the job (worker, or the queue drain at shutdown)
//!   returns them; result channels are closed by the worker on every
//!   path and by [`QueryHandle`]'s drop on the client side.

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::stats::{ServerSnapshot, SessionStats};
use skyline_exec::{Backpressure, CancelToken, PushTimeout, TryAcquire, WorkQueue};
use skyline_query::{
    catalog::Catalog, execute_query_with, parse, ExecOptions, QueryError, SkylineAlgo,
};
use skyline_relation::Tuple;
use skyline_storage::{BufferLease, BufferPool};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-recovering lock: the ledger data stays usable even if a
/// worker panicked mid-update.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Per-submission contract overrides; the config supplies defaults.
#[derive(Clone, Default)]
pub struct QueryOptions {
    /// Page quota for this query (`None` = the config default).
    pub quota_pages: Option<usize>,
    /// Deadline for this query (`None` = the config default).
    pub deadline: Option<Duration>,
    /// Skyline algorithm to run.
    pub algo: SkylineAlgo,
}

impl QueryOptions {
    /// Override the page quota.
    #[must_use]
    pub fn with_quota_pages(mut self, pages: usize) -> Self {
        self.quota_pages = Some(pages);
        self
    }

    /// Set a deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Select the skyline algorithm.
    #[must_use]
    pub fn with_algo(mut self, algo: SkylineAlgo) -> Self {
        self.algo = algo;
        self
    }
}

/// One message on a query's result channel.
enum Msg {
    /// A batch of result rows, in order.
    Rows(Vec<Tuple>),
    /// Terminal marker: how the query ended. Exactly one per query
    /// unless the channel was severed.
    End(Result<(), ServerError>),
}

/// A query in flight: everything the worker needs, including the
/// admission credit's page charge (returned when the job drops).
struct Job {
    sql: String,
    algo: SkylineAlgo,
    token: CancelToken,
    quota: BufferPool,
    _charge: BufferLease,
    results: Arc<WorkQueue<Msg>>,
    stats: Arc<Mutex<SessionStats>>,
    submitted_at: Instant,
}

impl Drop for Job {
    /// Sever the result channel on every exit — including a worker
    /// unwinding mid-job — so an abandoned client observes
    /// [`ServerError::Stalled`] instead of blocking forever. Closing is
    /// idempotent; the normal path has already closed after its `End`.
    fn drop(&mut self) {
        self.results.close();
    }
}

/// State shared between sessions and workers.
struct Shared {
    catalog: Catalog,
    cfg: ServerConfig,
    /// In-flight page ledger: each admitted query charges its quota
    /// here, so admission itself is the pages watermark.
    pool: BufferPool,
    /// Queue-depth watermark: one credit per job from admission to
    /// completion.
    gate: Backpressure,
    jobs: WorkQueue<Job>,
    /// Root of every query token: shutdown fans out through children.
    root: CancelToken,
}

/// The in-process session server.
///
/// Dropping the server shuts it down: the root token cancels (fanning
/// out to every in-flight query), the queues close, and the workers are
/// joined.
pub struct SkylineServer {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    sessions: Mutex<Vec<Arc<Mutex<SessionStats>>>>,
}

impl SkylineServer {
    /// Start a server over `catalog` with `cfg` workers and watermarks.
    #[must_use]
    pub fn new(catalog: Catalog, cfg: ServerConfig) -> Self {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            pool: BufferPool::new(cfg.pool_pages),
            gate: Backpressure::new(cfg.queue_capacity + workers),
            jobs: WorkQueue::bounded(cfg.queue_capacity.max(1)),
            root: CancelToken::new(),
            catalog,
            cfg,
        });
        let handles = (0..workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        SkylineServer {
            shared,
            workers: Mutex::new(handles),
            sessions: Mutex::new(Vec::new()),
        }
    }

    /// Open a session: an independent stats ledger over the shared
    /// worker pool. Sessions are cheap handles; clone freely.
    pub fn session(&self) -> Session {
        let stats = Arc::new(Mutex::new(SessionStats::default()));
        lock(&self.sessions).push(Arc::clone(&stats));
        Session {
            shared: Arc::clone(&self.shared),
            stats,
        }
    }

    /// Aggregate every session's counters into one snapshot.
    pub fn snapshot(&self) -> ServerSnapshot {
        let sessions = lock(&self.sessions);
        let mut totals = SessionStats::default();
        for s in sessions.iter() {
            totals.absorb(&lock(s));
        }
        ServerSnapshot {
            sessions: sessions.len(),
            totals,
        }
    }

    /// Pages currently charged to in-flight queries on the shared
    /// ledger.
    pub fn inflight_pages(&self) -> usize {
        self.shared.pool.used()
    }

    /// Stop accepting work, cancel every in-flight query, and join the
    /// workers. Queued jobs are still drained by the workers — their
    /// tokens are children of the root, so each one reports the typed
    /// cancellation to its client at token-check speed. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        self.shared.root.cancel();
        self.shared.jobs.close();
        self.shared.gate.close();
        let handles = {
            let mut guard = lock(&self.workers);
            std::mem::take(&mut *guard)
        };
        for h in handles {
            if h.join().is_err() {
                // a worker panicked; its job's leases were reclaimed by
                // unwinding drops, so shutdown still converges
            }
        }
    }
}

impl Drop for SkylineServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client's handle for submitting queries and reading its own
/// counters.
#[derive(Clone)]
pub struct Session {
    shared: Arc<Shared>,
    stats: Arc<Mutex<SessionStats>>,
}

impl Session {
    /// Submit `sql` under the config's default contract.
    ///
    /// # Errors
    /// Everything [`Session::submit_with`] reports.
    pub fn submit(&self, sql: &str) -> Result<QueryHandle, ServerError> {
        self.submit_with(sql, &QueryOptions::default())
    }

    /// Submit `sql` under an explicit per-query contract. Admission
    /// either grants a queue credit and charges the quota against the
    /// in-flight page ledger, or sheds the query typed — it never
    /// blocks past the admission timeout.
    ///
    /// # Errors
    /// [`ServerError::Overloaded`] when a watermark is crossed,
    /// [`ServerError::Shutdown`] when the server is stopping.
    /// Execution-time errors stream through the returned handle.
    pub fn submit_with(&self, sql: &str, q: &QueryOptions) -> Result<QueryHandle, ServerError> {
        {
            lock(&self.stats).submitted += 1;
        }
        let sh = &self.shared;
        if sh.root.is_cancelled() {
            return Err(self.reject(ServerError::Shutdown));
        }
        // Pages watermark: the query's whole quota is charged up front,
        // so admitted quotas can never oversubscribe the server pool.
        let quota_pages = q.quota_pages.unwrap_or(sh.cfg.quota_pages);
        let charge = match sh.pool.reserve(quota_pages) {
            Ok(lease) => lease,
            Err(_) => {
                return Err(self.reject(ServerError::Overloaded {
                    retry_after_ms: sh.cfg.retry_after_ms,
                }))
            }
        };
        // Queue-depth watermark: waiting is bounded by the admission
        // timeout, then the query is shed.
        match sh.gate.acquire_timeout(sh.cfg.admission_timeout) {
            TryAcquire::Granted => {}
            TryAcquire::Exhausted => {
                drop(charge);
                return Err(self.reject(ServerError::Overloaded {
                    retry_after_ms: sh.cfg.retry_after_ms,
                }));
            }
            TryAcquire::Closed => {
                drop(charge);
                return Err(self.reject(ServerError::Shutdown));
            }
        }
        let deadline = q.deadline.or(sh.cfg.deadline);
        let token = match deadline {
            Some(d) => sh.root.child_with_deadline(d),
            None => sh.root.child(),
        };
        let results: Arc<WorkQueue<Msg>> =
            Arc::new(WorkQueue::bounded(sh.cfg.result_batches.max(1)));
        let job = Job {
            sql: sql.to_string(),
            algo: q.algo,
            token: token.clone(),
            quota: BufferPool::new(quota_pages),
            _charge: charge,
            results: Arc::clone(&results),
            stats: Arc::clone(&self.stats),
            submitted_at: Instant::now(),
        };
        // Count the admission *before* the job becomes visible to
        // workers: a fast worker could otherwise finish the query (and
        // decrement `in_flight`) before we ever incremented it. A
        // failed enqueue rolls the admission back into a rejection.
        {
            let mut st = lock(&self.stats);
            st.admitted += 1;
            st.in_flight += 1;
        }
        let enqueue_by = Instant::now() + sh.cfg.admission_timeout;
        match sh.jobs.push_deadline(job, enqueue_by) {
            Ok(()) => {}
            Err(PushTimeout::TimedOut(job)) => {
                drop(job); // returns the page charge
                sh.gate.release();
                self.unadmit();
                return Err(self.reject(ServerError::Overloaded {
                    retry_after_ms: sh.cfg.retry_after_ms,
                }));
            }
            Err(PushTimeout::Closed(job)) => {
                drop(job);
                sh.gate.release();
                self.unadmit();
                return Err(self.reject(ServerError::Shutdown));
            }
        }
        Ok(QueryHandle {
            results,
            token,
            done: false,
        })
    }

    /// This session's counters, copied at this instant.
    pub fn stats(&self) -> SessionStats {
        *lock(&self.stats)
    }

    fn reject(&self, err: ServerError) -> ServerError {
        lock(&self.stats).rejected += 1;
        err
    }

    /// Roll back a provisional admission whose enqueue failed.
    fn unadmit(&self) {
        let mut st = lock(&self.stats);
        st.admitted -= 1;
        st.in_flight -= 1;
    }
}

/// The client side of one submitted query: a bounded stream of row
/// batches ending in a typed verdict.
///
/// Dropping the handle severs the channel and cancels the query — an
/// abandoned client never wedges a worker.
pub struct QueryHandle {
    results: Arc<WorkQueue<Msg>>,
    token: CancelToken,
    done: bool,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("done", &self.done)
            .field("cancelled", &self.token.is_cancelled())
            .finish()
    }
}

impl QueryHandle {
    /// Cancel the query. The worker observes the trip at its next
    /// check and reports the typed cancellation with partial progress.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Next batch of rows, blocking while the worker is ahead. `None`
    /// after the final batch of a completed query.
    ///
    /// # Errors
    /// `Some(Err(…))` exactly once for a query that ended in a typed
    /// error — the terminal [`ServerError`], or [`ServerError::Stalled`]
    /// when the channel was severed without a verdict.
    pub fn next_batch(&mut self) -> Option<Result<Vec<Tuple>, ServerError>> {
        if self.done {
            return None;
        }
        match self.results.pop() {
            Some(Msg::Rows(rows)) => Some(Ok(rows)),
            Some(Msg::End(Ok(()))) => {
                self.done = true;
                None
            }
            Some(Msg::End(Err(e))) => {
                self.done = true;
                Some(Err(e))
            }
            // Severed without a verdict: the worker declared us stalled.
            None => {
                self.done = true;
                Some(Err(ServerError::Stalled))
            }
        }
    }

    /// Drain the stream into one row set.
    ///
    /// # Errors
    /// The query's terminal [`ServerError`], if it did not complete.
    pub fn collect(mut self) -> Result<Vec<Tuple>, ServerError> {
        let mut rows = Vec::new();
        while let Some(batch) = self.next_batch() {
            rows.append(&mut batch?);
        }
        Ok(rows)
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        self.results.close();
        self.token.cancel();
    }
}

/// How a job ended, for the stats ledger.
enum Verdict {
    Completed,
    Cancelled,
    Failed,
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.jobs.pop() {
        let waited = job.submitted_at.elapsed();
        let started = Instant::now();
        let outcome = run_query(shared, &job);
        let (verdict, terminal) = stream_batches(shared, &job, outcome);
        let pages_peak = job.quota.peak();
        {
            let mut st = lock(&job.stats);
            st.in_flight -= 1;
            match verdict {
                Verdict::Completed => st.completed += 1,
                Verdict::Cancelled => st.cancelled += 1,
                Verdict::Failed => st.failed += 1,
            }
            st.pages_peak = st.pages_peak.max(pages_peak);
            st.wall_ms += u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            st.queue_wait_ms += u64::try_from(waited.as_millis()).unwrap_or(u64::MAX);
        }
        // Publish the verdict only after the books are settled, so a
        // client that has seen its terminal message can trust the
        // counters. Bounded by the stream grace like every other push.
        let grace_until = Instant::now() + shared.cfg.stream_grace;
        if job
            .results
            .push_deadline(Msg::End(terminal), grace_until)
            .is_err()
        {
            // client gone or stalled; closing the channel severs it
        }
        job.results.close();
        drop(job); // returns the shared-pool page charge
        shared.gate.release();
    }
}

/// Parse and execute one job under its contract. The token is checked
/// before any work so a cancelled or deadline-stormed queue drains at
/// token-check speed.
fn run_query(shared: &Shared, job: &Job) -> Result<Vec<Tuple>, ServerError> {
    job.token
        .check(0)
        .map_err(|e| ServerError::Query(QueryError::from_exec(e)))?;
    let query = parse(&job.sql).map_err(ServerError::Query)?;
    let mut opts = ExecOptions::default()
        .with_algo(job.algo)
        .with_pool(job.quota.clone())
        .with_cancel(job.token.clone())
        .with_threads(shared.cfg.threads)
        .with_sort_pages(shared.cfg.sort_pages)
        .with_external_threshold(shared.cfg.external_threshold);
    if let Some(disk) = &shared.cfg.disk {
        opts = opts.with_disk(Arc::clone(disk));
    }
    execute_query_with(&query, &shared.catalog, &opts)
        .map(skyline_relation::Table::into_rows)
        .map_err(ServerError::Query)
}

/// Stream the row batches to the client through the bounded channel and
/// decide the verdict. Between batches the token is re-checked; a
/// consumer slower than the stream grace has the query cancelled
/// instead of wedging the worker. The terminal message is returned, not
/// pushed: the worker loop publishes it after the stats ledger settles,
/// so a client that has read its verdict always sees consistent books.
fn stream_batches(
    shared: &Shared,
    job: &Job,
    outcome: Result<Vec<Tuple>, ServerError>,
) -> (Verdict, Result<(), ServerError>) {
    let rows = match outcome {
        Ok(rows) => rows,
        Err(e) => {
            let verdict = if e.is_cancelled() {
                Verdict::Cancelled
            } else {
                Verdict::Failed
            };
            return (verdict, Err(e));
        }
    };
    let batch_rows = shared.cfg.batch_rows.max(1);
    let mut sent = 0u64;
    for chunk in rows.chunks(batch_rows) {
        if job.token.is_cancelled() {
            let err = ServerError::Query(QueryError::Cancelled {
                records_processed: sent,
            });
            return (Verdict::Cancelled, Err(err));
        }
        let grace_until = Instant::now() + shared.cfg.stream_grace;
        match job
            .results
            .push_deadline(Msg::Rows(chunk.to_vec()), grace_until)
        {
            Ok(()) => sent += chunk.len() as u64,
            // client gone; the verdict still lands in the stats
            Err(PushTimeout::Closed(_)) => return (Verdict::Cancelled, Err(ServerError::Stalled)),
            Err(PushTimeout::TimedOut(_)) => {
                // stalled consumer: cancel so any in-engine work (none,
                // at this point) and the client both observe it
                job.token.cancel();
                return (Verdict::Cancelled, Err(ServerError::Stalled));
            }
        }
    }
    (Verdict::Completed, Ok(()))
}
