//! The server's typed error taxonomy.

use skyline_query::QueryError;
use std::fmt;

/// Everything a submitted query can report instead of rows.
///
/// The execution-contract errors — quota exhaustion, cancellation,
/// parse and semantic failures — arrive wrapped in
/// [`ServerError::Query`]; the admission and streaming layers add their
/// own variants on top.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Admission control shed this query: queue depth or in-flight
    /// quota pages crossed a watermark. Nothing ran; retry after the
    /// hinted backoff.
    Overloaded {
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
    /// The server is shutting down (or already has); no new work is
    /// accepted.
    Shutdown,
    /// The query layer failed: parse/semantic errors, the typed
    /// [`QueryError::QuotaExceeded`], the typed
    /// [`QueryError::Cancelled`], or an execution fault.
    Query(QueryError),
    /// The consumer failed to drain its result batches within the
    /// stream grace; the server cancelled the query rather than wedge a
    /// worker behind the full channel.
    Stalled,
}

impl ServerError {
    /// The query ended through its cancel token (explicit cancel,
    /// deadline, or server shutdown mid-run).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ServerError::Query(QueryError::Cancelled { .. }))
    }

    /// The query's page quota could not cover a pass.
    #[must_use]
    pub fn is_quota(&self) -> bool {
        matches!(self, ServerError::Query(QueryError::QuotaExceeded { .. }))
    }

    /// Admission control rejected the query before it ran.
    #[must_use]
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ServerError::Overloaded { .. })
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms} ms")
            }
            ServerError::Shutdown => write!(f, "server is shutting down"),
            ServerError::Query(e) => write!(f, "query failed: {e}"),
            ServerError::Stalled => {
                write!(f, "consumer stalled past the stream grace; query cancelled")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<QueryError> for ServerError {
    fn from(e: QueryError) -> Self {
        ServerError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let quota = ServerError::Query(QueryError::QuotaExceeded {
            requested: 8,
            available: 2,
        });
        assert!(quota.is_quota() && !quota.is_cancelled() && !quota.is_overloaded());
        let cancelled = ServerError::Query(QueryError::Cancelled {
            records_processed: 5,
        });
        assert!(cancelled.is_cancelled());
        let over = ServerError::Overloaded { retry_after_ms: 10 };
        assert!(over.is_overloaded());
        assert!(over.to_string().contains("10 ms"));
    }
}
