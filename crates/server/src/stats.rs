//! Session counters and their conservation law.
//!
//! Every submission increments exactly one of `admitted`/`rejected`,
//! and every admitted query later lands in exactly one of
//! `completed`/`cancelled`/`failed` (being `in_flight` in between), so
//! at every quiescent point:
//!
//! ```text
//! submitted = admitted + rejected
//! admitted  = completed + cancelled + failed + in_flight
//! ```
//!
//! The same discipline as the engine's metrics counters: sums are
//! conserved hop by hop, and the server snapshot is the plain sum of
//! its sessions — there is no second bookkeeping to drift.

/// Counters for one session (and, summed, for the whole server).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries handed to `submit`.
    pub submitted: u64,
    /// Queries that passed admission control.
    pub admitted: u64,
    /// Queries shed at admission (overload or shutdown).
    pub rejected: u64,
    /// Admitted queries that streamed a full result.
    pub completed: u64,
    /// Admitted queries ended by their cancel token (explicit cancel,
    /// deadline, shutdown) or a stalled consumer.
    pub cancelled: u64,
    /// Admitted queries ended by a typed non-cancel error (quota,
    /// parse/semantic, storage fault).
    pub failed: u64,
    /// Admitted queries not yet finished.
    pub in_flight: u64,
    /// Highest per-query quota-pool peak observed, in pages.
    pub pages_peak: usize,
    /// Total execution wall time across finished queries, in
    /// milliseconds.
    pub wall_ms: u64,
    /// Total time finished queries spent waiting in the admission
    /// queue, in milliseconds.
    pub queue_wait_ms: u64,
}

impl SessionStats {
    /// Both conservation identities hold. `in_flight` makes this true
    /// at *every* moment, not just after a drain.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.submitted == self.admitted + self.rejected
            && self.admitted == self.completed + self.cancelled + self.failed + self.in_flight
    }

    /// Fold another session's counters into this one (sums; peak is a
    /// max).
    pub fn absorb(&mut self, other: &SessionStats) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.cancelled += other.cancelled;
        self.failed += other.failed;
        self.in_flight += other.in_flight;
        self.pages_peak = self.pages_peak.max(other.pages_peak);
        self.wall_ms += other.wall_ms;
        self.queue_wait_ms += other.queue_wait_ms;
    }
}

/// Point-in-time aggregate over all of a server's sessions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Sessions ever opened on the server.
    pub sessions: usize,
    /// Sum of every session's counters (peak is a max).
    pub totals: SessionStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_holds_through_absorb() {
        let a = SessionStats {
            submitted: 5,
            admitted: 4,
            rejected: 1,
            completed: 2,
            cancelled: 1,
            failed: 0,
            in_flight: 1,
            pages_peak: 64,
            wall_ms: 10,
            queue_wait_ms: 3,
        };
        let b = SessionStats {
            submitted: 2,
            admitted: 1,
            rejected: 1,
            completed: 1,
            pages_peak: 128,
            ..SessionStats::default()
        };
        assert!(a.conserved() && b.conserved());
        let mut sum = a;
        sum.absorb(&b);
        assert!(sum.conserved());
        assert_eq!(sum.submitted, 7);
        assert_eq!(sum.pages_peak, 128, "peak is a max, not a sum");
    }

    #[test]
    fn broken_books_are_detected() {
        let s = SessionStats {
            submitted: 1,
            ..SessionStats::default()
        };
        assert!(!s.conserved());
    }
}
