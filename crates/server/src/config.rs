//! Server sizing and contract defaults.

use skyline_query::ExecOptions;
use skyline_storage::Disk;
use std::sync::Arc;
use std::time::Duration;

/// Sizing and default-contract knobs for a [`crate::SkylineServer`].
///
/// The admission watermarks are derived from these: queue depth is
/// bounded by `queue_capacity` credits plus one per worker (a query
/// holds its credit from admission to completion), and in-flight pages
/// are bounded by `pool_pages` (each admitted query charges its quota
/// against the shared ledger up front).
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries (minimum 1).
    pub workers: usize,
    /// Jobs that may wait in the queue beyond the ones being executed.
    pub queue_capacity: usize,
    /// Shared in-flight page ledger: the sum of admitted queries'
    /// quotas may not exceed this.
    pub pool_pages: usize,
    /// Default per-query page quota (overridable per submission).
    pub quota_pages: usize,
    /// Default per-query deadline (`None` = unbounded; overridable per
    /// submission).
    pub deadline: Option<Duration>,
    /// How long a submission may wait for a queue credit before it is
    /// shed with [`crate::ServerError::Overloaded`].
    pub admission_timeout: Duration,
    /// Rows per streamed result batch.
    pub batch_rows: usize,
    /// Bounded depth of each query's result channel, in batches; a full
    /// channel backpressures the worker.
    pub result_batches: usize,
    /// How long a worker waits on a full result channel before it
    /// declares the consumer stalled and cancels the query.
    pub stream_grace: Duration,
    /// Backoff hint carried by [`crate::ServerError::Overloaded`].
    pub retry_after_ms: u64,
    /// Row count at which queries leave the in-memory executor for the
    /// paged external engine (see [`ExecOptions::external_threshold`]).
    pub external_threshold: usize,
    /// Pages granted to an external presort pass. Must fit inside
    /// `quota_pages`, or every external query fails its quota on the
    /// very first reservation.
    pub sort_pages: usize,
    /// Worker threads for the parallel skyline algorithm (0 = one per
    /// core).
    pub threads: usize,
    /// Disk receiving external spills (`None` = a private in-memory
    /// disk per query). A harness passes its fault-injected disk here.
    pub disk: Option<Arc<dyn Disk>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            pool_pages: 4096,
            quota_pages: 512,
            deadline: None,
            admission_timeout: Duration::from_millis(50),
            batch_rows: 64,
            result_batches: 8,
            stream_grace: Duration::from_secs(1),
            retry_after_ms: 10,
            external_threshold: ExecOptions::default().external_threshold,
            sort_pages: 64,
            threads: 0,
            disk: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let cfg = ServerConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.quota_pages <= cfg.pool_pages);
        assert!(cfg.sort_pages <= cfg.quota_pages);
        assert!(cfg.batch_rows >= 1 && cfg.result_batches >= 1);
    }
}
