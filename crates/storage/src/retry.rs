//! Bounded, deterministic retries for transient storage failures.
//!
//! [`RetryDisk`] wraps any [`Disk`] and re-attempts reads and writes that
//! fail with a *transient* [`StorageError`], up to a bounded number of
//! attempts with a deterministic backoff schedule. Permanent errors pass
//! through untouched on the first attempt — retrying a missing file is
//! pointless. Every re-attempt is counted in the disk's [`IoStats`]
//! retry counter. Because page writes are idempotent full-page stores,
//! retrying a torn write converges to the intended page contents.

use crate::disk::{Disk, FileId};
use crate::error::StorageError;
use crate::io_stats::IoStats;
use std::sync::Arc;
use std::time::Duration;

/// When and how often to retry a transient failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = never retry).
    pub max_attempts: u32,
    /// Sleep before the first retry. Zero disables sleeping entirely —
    /// the deterministic choice for tests and simulations.
    pub base_delay: Duration,
    /// Each subsequent retry multiplies the delay by this factor.
    pub multiplier: u32,
}

impl RetryPolicy {
    /// Three attempts, no sleeping: deterministic and fast, suitable for
    /// simulations and the fault-injection suite.
    pub fn fast() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            multiplier: 2,
        }
    }

    /// `max_attempts` attempts, no sleeping.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::ZERO,
            multiplier: 2,
        }
    }

    /// The deterministic backoff before retry number `retry` (1-based):
    /// `base_delay * multiplier^(retry-1)`.
    pub fn delay_for(&self, retry: u32) -> Duration {
        if self.base_delay.is_zero() || retry == 0 {
            return Duration::ZERO;
        }
        self.base_delay
            .saturating_mul(self.multiplier.saturating_pow(retry - 1))
    }

    /// Run `op` under this policy: re-attempt while it fails transiently
    /// and attempts remain, sleeping `delay_for` between attempts and
    /// counting each re-attempt in `stats`.
    ///
    /// # Errors
    /// The final [`StorageError`] once attempts are exhausted, or the
    /// first permanent error.
    pub fn run<T>(
        &self,
        stats: &IoStats,
        mut op: impl FnMut() -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let attempts = self.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = self.delay_for(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                stats.record_retry();
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        // attempts >= 1, so the loop ran and last_err is set on this path.
        Err(last_err.unwrap_or_else(|| {
            StorageError::new(
                crate::error::IoOp::Read,
                0,
                crate::error::ErrorKind::Permanent,
                "retry loop exhausted without an error",
            )
        }))
    }
}

/// A [`Disk`] decorator retrying transient read/write failures under a
/// [`RetryPolicy`]. Create, delete, and stat pass through unretried.
pub struct RetryDisk {
    inner: Arc<dyn Disk>,
    policy: RetryPolicy,
}

impl RetryDisk {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: Arc<dyn Disk>, policy: RetryPolicy) -> Self {
        RetryDisk { inner, policy }
    }

    /// Shareable handle around `inner` with `policy`.
    pub fn shared(inner: Arc<dyn Disk>, policy: RetryPolicy) -> Arc<Self> {
        Arc::new(RetryDisk::new(inner, policy))
    }
}

impl Disk for RetryDisk {
    fn create(&self) -> Result<FileId, StorageError> {
        self.inner.create()
    }

    fn delete(&self, file: FileId) {
        self.inner.delete(file);
    }

    fn write_page(&self, file: FileId, page_no: u64, data: &[u8]) -> Result<(), StorageError> {
        self.policy.run(self.inner.stats(), || {
            self.inner.write_page(file, page_no, data)
        })
    }

    fn read_page(&self, file: FileId, page_no: u64, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        self.policy.run(self.inner.stats(), || {
            self.inner.read_page(file, page_no, buf)
        })
    }

    fn num_pages(&self, file: FileId) -> Result<u64, StorageError> {
        self.inner.num_pages(file)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn allocated_pages(&self) -> u64 {
        self.inner.allocated_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::error::{ErrorKind, IoOp};
    use crate::fault::{FaultDisk, FaultSchedule};
    use crate::PAGE_SIZE;

    #[test]
    fn backoff_schedule_is_deterministic() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            multiplier: 3,
        };
        assert_eq!(p.delay_for(1), Duration::from_millis(10));
        assert_eq!(p.delay_for(2), Duration::from_millis(30));
        assert_eq!(p.delay_for(3), Duration::from_millis(90));
        assert_eq!(RetryPolicy::fast().delay_for(2), Duration::ZERO);
    }

    #[test]
    fn transient_fault_is_retried_and_counted() {
        // One transient write fault; policy allows 3 attempts, so the
        // retry recovers and the page lands intact.
        let inner = MemDisk::shared();
        let schedule = FaultSchedule {
            seed: 0,
            read_period: 0,
            write_period: 1, // one-shot (seed 0)
            transient_pct: 100,
            torn_writes: false,
            arm_after: 0,
        };
        let faulty = FaultDisk::shared(Arc::clone(&inner) as Arc<dyn Disk>, schedule);
        let d = RetryDisk::new(faulty, RetryPolicy::fast());
        let f = d.create().unwrap();
        d.write_page(f, 0, b"recovered").unwrap();
        let mut buf = Vec::new();
        d.read_page(f, 0, &mut buf).unwrap();
        assert_eq!(&buf[..9], b"recovered");
        assert_eq!(d.stats().retries(), 1, "one re-attempt recorded");
    }

    #[test]
    fn torn_write_recovers_via_retry() {
        let inner = MemDisk::shared();
        let schedule = FaultSchedule {
            seed: 0,
            read_period: 0,
            write_period: 1,
            transient_pct: 100,
            torn_writes: true,
            arm_after: 0,
        };
        let faulty = FaultDisk::shared(Arc::clone(&inner) as Arc<dyn Disk>, schedule);
        let d = RetryDisk::new(faulty, RetryPolicy::fast());
        let f = d.create().unwrap();
        let page = vec![0x5Au8; PAGE_SIZE];
        d.write_page(f, 0, &page).unwrap();
        let mut buf = Vec::new();
        d.read_page(f, 0, &mut buf).unwrap();
        assert_eq!(buf, page, "full-page rewrite must overwrite the torn half");
    }

    #[test]
    fn permanent_errors_pass_through_unretried() {
        let d = RetryDisk::new(MemDisk::shared(), RetryPolicy::fast());
        let mut buf = Vec::new();
        let err = d.read_page(123, 0, &mut buf).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Permanent);
        assert_eq!(d.stats().retries(), 0, "permanent errors are not retried");
    }

    #[test]
    fn attempts_exhausted_returns_last_transient_error() {
        let always_transient = FaultSchedule {
            seed: 7, // non-zero: periodic, fires every write
            read_period: 0,
            write_period: 1,
            transient_pct: 100,
            torn_writes: false,
            arm_after: 0,
        };
        let faulty = FaultDisk::shared(MemDisk::shared(), always_transient);
        let d = RetryDisk::new(faulty, RetryPolicy::attempts(3));
        let f = d.create().unwrap();
        let err = d.write_page(f, 0, b"x").unwrap_err();
        assert_eq!(err.op, IoOp::Write);
        assert!(err.is_transient());
        assert_eq!(
            d.stats().retries(),
            2,
            "two re-attempts after the first try"
        );
    }
}
