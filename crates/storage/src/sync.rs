//! Small locking helper shared by the storage primitives.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Acquire `m`, recovering the data on poison.
///
/// Storage structures guard plain bookkeeping maps and counters; a panic
/// while holding the lock cannot leave them in a torn state, so poisoning
/// carries no information here and is deliberately ignored.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
