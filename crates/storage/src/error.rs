//! Typed storage-layer errors.
//!
//! Every page-I/O failure the storage layer can surface is a
//! [`StorageError`]: which operation failed, on which file (and page, when
//! there is one), and whether the failure is *transient* — worth retrying
//! under a bounded [`crate::RetryPolicy`] — or *permanent*. Logic bugs
//! (reading past EOF on [`crate::MemDisk`], size mismatches) remain
//! panics: they indicate a broken operator, not a failing device.

use crate::disk::FileId;
use std::fmt;

/// The I/O operation that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Creating a new file on the disk.
    Create,
    /// Reading a page.
    Read,
    /// Writing a page.
    Write,
    /// Stat-ing a file (size / page count).
    Stat,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoOp::Create => "create",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Stat => "stat",
        };
        f.write_str(s)
    }
}

/// Whether a failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The device hiccupped (interrupted syscall, timeout, injected
    /// transient fault); an identical retry may succeed. Page writes are
    /// idempotent full-page stores, so retrying also recovers torn writes.
    Transient,
    /// The failure will recur (file missing, disk full, corrupted state);
    /// retrying is pointless.
    Permanent,
}

/// A typed failure from the page-storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError {
    /// The operation that failed.
    pub op: IoOp,
    /// The file it targeted.
    pub file: FileId,
    /// The page it targeted, when the operation is page-granular.
    pub page: Option<u64>,
    /// Transient (retryable) or permanent.
    pub kind: ErrorKind,
    /// Human-readable detail (the underlying OS error, fault-injection
    /// note, …). Owned text: OS error values are not cloneable.
    pub detail: String,
}

impl StorageError {
    /// Build an error for `op` on `file`.
    pub fn new(op: IoOp, file: FileId, kind: ErrorKind, detail: impl Into<String>) -> Self {
        StorageError {
            op,
            file,
            page: None,
            kind,
            detail: detail.into(),
        }
    }

    /// Attach the page number the operation targeted.
    #[must_use]
    pub fn at_page(mut self, page_no: u64) -> Self {
        self.page = Some(page_no);
        self
    }

    /// A permanent "no such file" error — the id was never created or has
    /// been deleted.
    pub fn unknown_file(op: IoOp, file: FileId) -> Self {
        StorageError::new(op, file, ErrorKind::Permanent, "unknown or deleted file")
    }

    /// True when a bounded retry of the same operation may succeed.
    pub fn is_transient(&self) -> bool {
        self.kind == ErrorKind::Transient
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ErrorKind::Transient => "transient",
            ErrorKind::Permanent => "permanent",
        };
        match self.page {
            Some(p) => write!(
                f,
                "{kind} storage error: {} page {p} of file {}: {}",
                self.op, self.file, self.detail
            ),
            None => write!(
                f,
                "{kind} storage error: {} file {}: {}",
                self.op, self.file, self.detail
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = StorageError::new(IoOp::Read, 7, ErrorKind::Transient, "injected").at_page(3);
        let s = e.to_string();
        assert!(s.contains("transient"), "{s}");
        assert!(s.contains("read"), "{s}");
        assert!(s.contains("page 3"), "{s}");
        assert!(s.contains("file 7"), "{s}");
        assert!(e.is_transient());
    }

    #[test]
    fn unknown_file_is_permanent() {
        let e = StorageError::unknown_file(IoOp::Write, 9);
        assert!(!e.is_transient());
        assert!(e.to_string().contains("permanent"));
        assert_eq!(e.page, None);
    }
}
