//! Page devices: the in-memory simulator and a real-file implementation.

use crate::io_stats::IoStats;
use crate::sync::lock;
use crate::PAGE_SIZE;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifier of a file on a [`Disk`].
pub type FileId = u64;

/// A page-granular storage device. All I/O is in whole [`PAGE_SIZE`] pages
/// and every transfer is counted in the disk's shared [`IoStats`].
pub trait Disk: Send + Sync {
    /// Create a new empty file and return its id.
    fn create(&self) -> FileId;

    /// Delete a file, releasing its pages. Deleting an unknown id is a
    /// no-op (files may be deleted once by owner and once by a manager).
    fn delete(&self, file: FileId);

    /// Write one page. `data` may be shorter than a page; it is
    /// zero-padded. Writing page `n` of a file with fewer than `n` pages
    /// extends it (intervening pages become zero pages, each counted as a
    /// write).
    fn write_page(&self, file: FileId, page_no: u64, data: &[u8]);

    /// Read one page into `buf` (resized to [`PAGE_SIZE`]).
    ///
    /// # Panics
    /// Panics if the page does not exist — reading past EOF is a logic bug
    /// in an operator, not a recoverable condition.
    fn read_page(&self, file: FileId, page_no: u64, buf: &mut Vec<u8>);

    /// Number of pages currently in the file.
    fn num_pages(&self, file: FileId) -> u64;

    /// The disk-wide I/O counters.
    fn stats(&self) -> &IoStats;
}

/// Deterministic in-memory disk. The default device for experiments: page
/// traffic is still counted, but wall-clock is dominated by the algorithms'
/// CPU work — mirroring the paper's observation that skyline computation is
/// CPU-bound.
#[derive(Default)]
pub struct MemDisk {
    files: Mutex<HashMap<FileId, Vec<Box<[u8]>>>>,
    next_id: AtomicU64,
    stats: IoStats,
}

impl MemDisk {
    /// Fresh empty disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Convenience: a shareable handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(MemDisk::new())
    }

    /// Total pages currently allocated across all files (for leak checks).
    pub fn allocated_pages(&self) -> u64 {
        lock(&self.files).values().map(|f| f.len() as u64).sum()
    }
}

fn padded(data: &[u8]) -> Box<[u8]> {
    assert!(
        data.len() <= PAGE_SIZE,
        "page overflow: {} bytes",
        data.len()
    );
    let mut page = vec![0u8; PAGE_SIZE].into_boxed_slice();
    page[..data.len()].copy_from_slice(data);
    page
}

impl Disk for MemDisk {
    fn create(&self) -> FileId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        lock(&self.files).insert(id, Vec::new());
        id
    }

    fn delete(&self, file: FileId) {
        lock(&self.files).remove(&file);
    }

    fn write_page(&self, file: FileId, page_no: u64, data: &[u8]) {
        let mut files = lock(&self.files);
        let pages = files.get_mut(&file).expect("write to deleted file");
        let idx = usize::try_from(page_no).expect("page number overflow");
        while pages.len() < idx {
            pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
            self.stats.record_write();
        }
        if idx == pages.len() {
            pages.push(padded(data));
        } else {
            pages[idx] = padded(data);
        }
        self.stats.record_write();
    }

    fn read_page(&self, file: FileId, page_no: u64, buf: &mut Vec<u8>) {
        let files = lock(&self.files);
        let pages = files.get(&file).expect("read from deleted file");
        let idx = usize::try_from(page_no).expect("page number overflow");
        let page = pages
            .get(idx)
            .unwrap_or_else(|| panic!("read past EOF: page {page_no} of {} pages", pages.len()));
        buf.clear();
        buf.extend_from_slice(page);
        self.stats.record_read();
    }

    fn num_pages(&self, file: FileId) -> u64 {
        lock(&self.files).get(&file).map_or(0, |p| p.len() as u64)
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

/// A disk backed by real files in a directory (one file per [`FileId`]).
/// Useful for runs whose temp data exceeds memory; accounting is identical
/// to [`MemDisk`].
pub struct FileDisk {
    dir: PathBuf,
    files: Mutex<HashMap<FileId, File>>,
    next_id: AtomicU64,
    stats: IoStats,
}

impl FileDisk {
    /// Create a disk rooted at `dir` (created if missing). Files are named
    /// `skyline-<id>.pages` and removed on [`Disk::delete`].
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileDisk {
            dir,
            files: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            stats: IoStats::new(),
        })
    }

    fn path(&self, id: FileId) -> PathBuf {
        self.dir.join(format!("skyline-{id}.pages"))
    }
}

impl Disk for FileDisk {
    fn create(&self) -> FileId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(self.path(id))
            .expect("create page file");
        lock(&self.files).insert(id, f);
        id
    }

    fn delete(&self, file: FileId) {
        if lock(&self.files).remove(&file).is_some() {
            let _ = std::fs::remove_file(self.path(file));
        }
    }

    fn write_page(&self, file: FileId, page_no: u64, data: &[u8]) {
        let page = padded(data);
        let mut files = lock(&self.files);
        let f = files.get_mut(&file).expect("write to deleted file");
        let len = f.metadata().expect("stat page file").len();
        let existing = len / PAGE_SIZE as u64;
        for gap in existing..page_no {
            f.seek(SeekFrom::Start(gap * PAGE_SIZE as u64)).unwrap();
            f.write_all(&vec![0u8; PAGE_SIZE]).unwrap();
            self.stats.record_write();
        }
        f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64)).unwrap();
        f.write_all(&page).unwrap();
        self.stats.record_write();
    }

    fn read_page(&self, file: FileId, page_no: u64, buf: &mut Vec<u8>) {
        let mut files = lock(&self.files);
        let f = files.get_mut(&file).expect("read from deleted file");
        buf.clear();
        buf.resize(PAGE_SIZE, 0);
        f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64)).unwrap();
        f.read_exact(buf).expect("read past EOF");
        self.stats.record_read();
    }

    fn num_pages(&self, file: FileId) -> u64 {
        let files = lock(&self.files);
        let f = files.get(&file).expect("stat deleted file");
        f.metadata().expect("stat page file").len() / PAGE_SIZE as u64
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

impl Drop for FileDisk {
    fn drop(&mut self) {
        let ids: Vec<FileId> = lock(&self.files).keys().copied().collect();
        for id in ids {
            self.delete(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        let f = disk.create();
        assert_eq!(disk.num_pages(f), 0);
        disk.write_page(f, 0, b"hello");
        disk.write_page(f, 1, &[7u8; PAGE_SIZE]);
        assert_eq!(disk.num_pages(f), 2);

        let mut buf = Vec::new();
        disk.read_page(f, 0, &mut buf);
        assert_eq!(&buf[..5], b"hello");
        assert!(buf[5..].iter().all(|&b| b == 0), "padding must be zero");
        disk.read_page(f, 1, &mut buf);
        assert_eq!(buf, vec![7u8; PAGE_SIZE]);

        // overwrite
        disk.write_page(f, 0, b"bye");
        disk.read_page(f, 0, &mut buf);
        assert_eq!(&buf[..3], b"bye");

        // gap-extending write
        disk.write_page(f, 4, b"far");
        assert_eq!(disk.num_pages(f), 5);
        disk.read_page(f, 3, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));

        let snap = disk.stats().snapshot();
        // writes: p0, p1, p0 again, gap p2, gap p3, p4 = 6; reads: 4
        assert_eq!(snap.writes, 6);
        assert_eq!(snap.reads, 4);

        disk.delete(f);
        disk.delete(f); // idempotent
    }

    #[test]
    fn memdisk_behaviour() {
        let d = MemDisk::new();
        exercise(&d);
        assert_eq!(d.allocated_pages(), 0);
    }

    #[test]
    fn filedisk_behaviour() {
        let dir = std::env::temp_dir().join(format!("skyline-disk-test-{}", std::process::id()));
        let d = FileDisk::new(&dir).unwrap();
        exercise(&d);
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "read past EOF")]
    fn memdisk_read_past_eof_panics() {
        let d = MemDisk::new();
        let f = d.create();
        let mut buf = Vec::new();
        d.read_page(f, 0, &mut buf);
    }

    #[test]
    fn files_are_independent() {
        let d = MemDisk::new();
        let a = d.create();
        let b = d.create();
        d.write_page(a, 0, b"aaa");
        d.write_page(b, 0, b"bbb");
        let mut buf = Vec::new();
        d.read_page(a, 0, &mut buf);
        assert_eq!(&buf[..3], b"aaa");
        d.read_page(b, 0, &mut buf);
        assert_eq!(&buf[..3], b"bbb");
    }
}
