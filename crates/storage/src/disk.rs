//! Page devices: the in-memory simulator and a real-file implementation.
//!
//! This is the only module allowed to touch `std::fs` — every page that
//! moves through here is counted in [`IoStats`], and every failure —
//! including reading past EOF — surfaces as a typed [`StorageError`]
//! instead of a panic, so multipass operators can always unwind their
//! temp files.
//!
//! [`FileDisk`] does *positioned* I/O (`pread`/`pwrite`): the file-handle
//! map lock is only held long enough to clone out an `Arc<File>`, never
//! across a syscall, so page I/O on different files proceeds in parallel
//! (and the `lock-across-io` lint of `cargo xtask analyze` stays clean).

use crate::error::{ErrorKind, IoOp, StorageError};
use crate::io_stats::IoStats;
use crate::sync::lock;
use crate::PAGE_SIZE;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifier of a file on a [`Disk`].
pub type FileId = u64;

/// A page-granular storage device. All I/O is in whole [`PAGE_SIZE`] pages
/// and every transfer is counted in the disk's shared [`IoStats`].
pub trait Disk: Send + Sync {
    /// Create a new empty file and return its id.
    ///
    /// # Errors
    /// [`StorageError`] when the device cannot create the file.
    fn create(&self) -> Result<FileId, StorageError>;

    /// Delete a file, releasing its pages. Deleting an unknown id is a
    /// no-op (files may be deleted once by owner and once by a manager);
    /// deletion is best-effort and infallible so `Drop` cleanup paths can
    /// always run.
    fn delete(&self, file: FileId);

    /// Write one page. `data` may be shorter than a page; it is
    /// zero-padded. Writing page `n` of a file with fewer than `n` pages
    /// extends it (intervening pages become zero pages, each counted as a
    /// write).
    ///
    /// # Errors
    /// [`StorageError`] when the device rejects the write or the file does
    /// not exist.
    fn write_page(&self, file: FileId, page_no: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Read one page into `buf` (resized to [`PAGE_SIZE`]).
    ///
    /// # Errors
    /// [`StorageError`] when the device fails the read, the file does
    /// not exist, or `page_no` is past EOF (a `Permanent` error on every
    /// device — retrying a structurally out-of-range read cannot help).
    fn read_page(&self, file: FileId, page_no: u64, buf: &mut Vec<u8>) -> Result<(), StorageError>;

    /// Number of pages currently in the file.
    ///
    /// # Errors
    /// [`StorageError`] when the file cannot be stat-ed.
    fn num_pages(&self, file: FileId) -> Result<u64, StorageError>;

    /// The disk-wide I/O counters.
    fn stats(&self) -> &IoStats;

    /// Total pages currently allocated across all live files — the leak
    /// check: after every temp file is dropped this must return to its
    /// pre-run value. Best-effort (stat failures count as zero pages).
    fn allocated_pages(&self) -> u64;
}

/// Deterministic in-memory disk. The default device for experiments: page
/// traffic is still counted, but wall-clock is dominated by the algorithms'
/// CPU work — mirroring the paper's observation that skyline computation is
/// CPU-bound.
#[derive(Default)]
pub struct MemDisk {
    files: Mutex<HashMap<FileId, Vec<Box<[u8]>>>>,
    next_id: AtomicU64,
    stats: IoStats,
}

impl MemDisk {
    /// Fresh empty disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Convenience: a shareable handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(MemDisk::new())
    }
}

fn padded(data: &[u8]) -> Box<[u8]> {
    assert!(
        data.len() <= PAGE_SIZE,
        "page overflow: {} bytes",
        data.len()
    );
    let mut page = vec![0u8; PAGE_SIZE].into_boxed_slice();
    page[..data.len()].copy_from_slice(data);
    page
}

fn page_index(op: IoOp, file: FileId, page_no: u64) -> Result<usize, StorageError> {
    usize::try_from(page_no).map_err(|_| {
        StorageError::new(op, file, ErrorKind::Permanent, "page number overflow").at_page(page_no)
    })
}

impl Disk for MemDisk {
    fn create(&self) -> Result<FileId, StorageError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        lock(&self.files).insert(id, Vec::new());
        Ok(id)
    }

    fn delete(&self, file: FileId) {
        lock(&self.files).remove(&file);
    }

    fn write_page(&self, file: FileId, page_no: u64, data: &[u8]) -> Result<(), StorageError> {
        let mut files = lock(&self.files);
        let pages = files
            .get_mut(&file)
            .ok_or_else(|| StorageError::unknown_file(IoOp::Write, file).at_page(page_no))?;
        let idx = page_index(IoOp::Write, file, page_no)?;
        while pages.len() < idx {
            pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
            self.stats.record_write();
        }
        if idx == pages.len() {
            pages.push(padded(data));
        } else {
            pages[idx] = padded(data);
        }
        self.stats.record_write();
        Ok(())
    }

    fn read_page(&self, file: FileId, page_no: u64, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        let files = lock(&self.files);
        let pages = files
            .get(&file)
            .ok_or_else(|| StorageError::unknown_file(IoOp::Read, file).at_page(page_no))?;
        let idx = page_index(IoOp::Read, file, page_no)?;
        let page = pages.get(idx).ok_or_else(|| {
            StorageError::new(
                IoOp::Read,
                file,
                ErrorKind::Permanent,
                format!("read past EOF: page {page_no} of {} pages", pages.len()),
            )
            .at_page(page_no)
        })?;
        buf.clear();
        buf.extend_from_slice(page);
        self.stats.record_read();
        Ok(())
    }

    fn num_pages(&self, file: FileId) -> Result<u64, StorageError> {
        Ok(lock(&self.files).get(&file).map_or(0, |p| p.len() as u64))
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn allocated_pages(&self) -> u64 {
        lock(&self.files).values().map(|f| f.len() as u64).sum()
    }
}

/// How many zero pages one syscall covers while gap-extending a file.
const GAP_CHUNK_PAGES: usize = 16;

/// A disk backed by real files in a directory (one file per [`FileId`]).
/// Useful for runs whose temp data exceeds memory; accounting is identical
/// to [`MemDisk`]. The directory is owned exclusively: construction sweeps
/// stale `skyline-*.pages` files left behind by a crashed prior process.
///
/// Handles are `Arc<File>` and all transfers are positioned
/// (`pread`/`pwrite`), so the map lock is released before any syscall and
/// concurrent page I/O never serializes on it. Writers to the *same* file
/// are expected to be exclusive (heap writers take `&mut`); concurrent
/// gap-extensions of one file would double-count gap pages in [`IoStats`].
pub struct FileDisk {
    dir: PathBuf,
    files: Mutex<HashMap<FileId, Arc<File>>>,
    next_id: AtomicU64,
    stats: IoStats,
    /// One zeroed gap-write buffer, shared by every gap-extending write.
    zeros: Box<[u8]>,
}

/// Positioned write of the whole buffer at `offset` — no shared cursor,
/// no lock. The non-unix fallback seeks on a borrowed handle and is not
/// cursor-safe under concurrency; unix (the supported platform) is.
fn write_all_at(f: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    return std::os::unix::fs::FileExt::write_all_at(f, buf, offset);
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = f;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }
}

/// Positioned read filling the whole buffer from `offset`.
fn read_exact_at(f: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    return std::os::unix::fs::FileExt::read_exact_at(f, buf, offset);
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = f;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }
}

/// Write a text artifact to `path` verbatim, creating any missing
/// parent directories first.
///
/// This is the typed doorway for non-page file output — bench CSVs,
/// JSON baselines, rendered reports. Every other crate is barred from
/// `std::fs` by the `raw-io` lint, so artifact writes funnel through
/// the one module that already owns file I/O.
///
/// # Errors
/// Propagates directory-creation and write failures.
pub fn write_text(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

impl FileDisk {
    /// Create a disk rooted at `dir` (created if missing). Files are named
    /// `skyline-<id>.pages` and removed on [`Disk::delete`]; any such file
    /// already present — an orphan from a crashed prior process — is
    /// removed first.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Self::sweep_stale(&dir);
        Ok(FileDisk {
            dir,
            files: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            stats: IoStats::new(),
            zeros: vec![0u8; GAP_CHUNK_PAGES * PAGE_SIZE].into_boxed_slice(),
        })
    }

    /// Best-effort removal of `skyline-*.pages` orphans in `dir`.
    fn sweep_stale(dir: &PathBuf) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("skyline-") && name.ends_with(".pages") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    fn path(&self, id: FileId) -> PathBuf {
        self.dir.join(format!("skyline-{id}.pages"))
    }

    fn io_err(op: IoOp, file: FileId, e: &std::io::Error) -> StorageError {
        use std::io::ErrorKind as Io;
        let kind = match e.kind() {
            Io::Interrupted | Io::TimedOut | Io::WouldBlock => ErrorKind::Transient,
            _ => ErrorKind::Permanent,
        };
        StorageError::new(op, file, kind, e.to_string())
    }

    /// Clone the handle for `file` out of the map — the lock is held for
    /// this lookup only, never across I/O.
    fn handle(&self, op: IoOp, file: FileId) -> Result<Arc<File>, StorageError> {
        lock(&self.files)
            .get(&file)
            .cloned()
            .ok_or_else(|| StorageError::unknown_file(op, file))
    }
}

impl Disk for FileDisk {
    fn create(&self) -> Result<FileId, StorageError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(self.path(id))
            .map_err(|e| Self::io_err(IoOp::Create, id, &e))?;
        lock(&self.files).insert(id, Arc::new(f));
        Ok(id)
    }

    fn delete(&self, file: FileId) {
        if lock(&self.files).remove(&file).is_some() {
            let _ = std::fs::remove_file(self.path(file));
        }
    }

    fn write_page(&self, file: FileId, page_no: u64, data: &[u8]) -> Result<(), StorageError> {
        let page = padded(data);
        let f = self
            .handle(IoOp::Write, file)
            .map_err(|e| e.at_page(page_no))?;
        let err = |e: &std::io::Error| Self::io_err(IoOp::Write, file, e).at_page(page_no);
        let len = f
            .metadata()
            .map_err(|e| Self::io_err(IoOp::Stat, file, &e))?
            .len();
        let existing = len / PAGE_SIZE as u64;
        if existing < page_no {
            // Gap-extend with zero pages: contiguous positioned chunk
            // writes from the shared zero buffer (still one counted write
            // per gap page — accounting is page-granular, syscalls are not).
            let mut at = existing * PAGE_SIZE as u64;
            let mut remaining = page_no - existing;
            while remaining > 0 {
                let chunk = remaining.min(GAP_CHUNK_PAGES as u64);
                write_all_at(&f, &self.zeros[..chunk as usize * PAGE_SIZE], at)
                    .map_err(|e| err(&e))?;
                for _ in 0..chunk {
                    self.stats.record_write();
                }
                at += chunk * PAGE_SIZE as u64;
                remaining -= chunk;
            }
        }
        write_all_at(&f, &page, page_no * PAGE_SIZE as u64).map_err(|e| err(&e))?;
        self.stats.record_write();
        Ok(())
    }

    fn read_page(&self, file: FileId, page_no: u64, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        let f = self
            .handle(IoOp::Read, file)
            .map_err(|e| e.at_page(page_no))?;
        let err = |e: &std::io::Error| Self::io_err(IoOp::Read, file, e).at_page(page_no);
        buf.clear();
        buf.resize(PAGE_SIZE, 0);
        read_exact_at(&f, buf, page_no * PAGE_SIZE as u64).map_err(|e| err(&e))?;
        self.stats.record_read();
        Ok(())
    }

    fn num_pages(&self, file: FileId) -> Result<u64, StorageError> {
        let f = self.handle(IoOp::Stat, file)?;
        let len = f
            .metadata()
            .map_err(|e| Self::io_err(IoOp::Stat, file, &e))?
            .len();
        Ok(len / PAGE_SIZE as u64)
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn allocated_pages(&self) -> u64 {
        let handles: Vec<Arc<File>> = lock(&self.files).values().cloned().collect();
        handles
            .iter()
            .map(|f| f.metadata().map_or(0, |m| m.len() / PAGE_SIZE as u64))
            .sum()
    }
}

impl Drop for FileDisk {
    fn drop(&mut self) {
        let ids: Vec<FileId> = lock(&self.files).keys().copied().collect();
        for id in ids {
            self.delete(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        let f = disk.create().unwrap();
        assert_eq!(disk.num_pages(f).unwrap(), 0);
        disk.write_page(f, 0, b"hello").unwrap();
        disk.write_page(f, 1, &[7u8; PAGE_SIZE]).unwrap();
        assert_eq!(disk.num_pages(f).unwrap(), 2);

        let mut buf = Vec::new();
        disk.read_page(f, 0, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"hello");
        assert!(buf[5..].iter().all(|&b| b == 0), "padding must be zero");
        disk.read_page(f, 1, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; PAGE_SIZE]);

        // overwrite
        disk.write_page(f, 0, b"bye").unwrap();
        disk.read_page(f, 0, &mut buf).unwrap();
        assert_eq!(&buf[..3], b"bye");

        // gap-extending write
        disk.write_page(f, 4, b"far").unwrap();
        assert_eq!(disk.num_pages(f).unwrap(), 5);
        disk.read_page(f, 3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));

        let snap = disk.stats().snapshot();
        // writes: p0, p1, p0 again, gap p2, gap p3, p4 = 6; reads: 4
        assert_eq!(snap.writes, 6);
        assert_eq!(snap.reads, 4);

        disk.delete(f);
        disk.delete(f); // idempotent
    }

    #[test]
    fn memdisk_behaviour() {
        let d = MemDisk::new();
        exercise(&d);
        assert_eq!(d.allocated_pages(), 0);
    }

    #[test]
    fn filedisk_behaviour() {
        let dir = std::env::temp_dir().join(format!("skyline-disk-test-{}", std::process::id()));
        let d = FileDisk::new(&dir).unwrap();
        exercise(&d);
        assert_eq!(d.allocated_pages(), 0);
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filedisk_long_gap_is_zero_filled() {
        let dir = std::env::temp_dir().join(format!("skyline-gap-test-{}", std::process::id()));
        let d = FileDisk::new(&dir).unwrap();
        let f = d.create().unwrap();
        // gap longer than one zero chunk: exercises the chunked loop
        let far = GAP_CHUNK_PAGES as u64 * 2 + 3;
        d.write_page(f, far, b"tail").unwrap();
        assert_eq!(d.num_pages(f).unwrap(), far + 1);
        assert_eq!(d.stats().writes(), far + 1, "each gap page counted");
        let mut buf = Vec::new();
        for p in 0..far {
            d.read_page(f, p, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0), "page {p} must be zero");
        }
        d.read_page(f, far, &mut buf).unwrap();
        assert_eq!(&buf[..4], b"tail");
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filedisk_sweeps_stale_page_files_at_startup() {
        let dir = std::env::temp_dir().join(format!("skyline-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // simulate a crashed prior process: an orphaned page file plus an
        // unrelated file that must survive the sweep
        std::fs::write(dir.join("skyline-17.pages"), vec![1u8; PAGE_SIZE]).unwrap();
        std::fs::write(dir.join("keep.txt"), b"unrelated").unwrap();
        let d = FileDisk::new(&dir).unwrap();
        assert!(
            !dir.join("skyline-17.pages").exists(),
            "stale page file must be swept"
        );
        assert!(dir.join("keep.txt").exists(), "unrelated files survive");
        // the fresh disk reuses low ids without tripping over the orphan
        let f = d.create().unwrap();
        d.write_page(f, 0, b"fresh").unwrap();
        let mut buf = Vec::new();
        d.read_page(f, 0, &mut buf).unwrap();
        assert_eq!(&buf[..5], b"fresh");
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memdisk_read_past_eof_is_typed_error() {
        let d = MemDisk::new();
        let f = d.create().unwrap();
        d.write_page(f, 0, b"only").unwrap();
        let mut buf = Vec::new();
        let err = d.read_page(f, 1, &mut buf).unwrap_err();
        assert_eq!(err.page, Some(1));
        assert!(!err.is_transient(), "past-EOF reads will recur");
        assert!(err.to_string().contains("read past EOF"), "{err}");
    }

    #[test]
    fn filedisk_concurrent_io_on_distinct_files() {
        let dir = std::env::temp_dir().join(format!("skyline-par-test-{}", std::process::id()));
        let d = Arc::new(FileDisk::new(&dir).unwrap());
        let files: Vec<FileId> = (0..4).map(|_| d.create().unwrap()).collect();
        std::thread::scope(|s| {
            for (i, &f) in files.iter().enumerate() {
                let d = Arc::clone(&d);
                s.spawn(move || {
                    let pattern = vec![i as u8 + 1; PAGE_SIZE];
                    for p in 0..8 {
                        d.write_page(f, p, &pattern).unwrap();
                    }
                    let mut buf = Vec::new();
                    for p in 0..8 {
                        d.read_page(f, p, &mut buf).unwrap();
                        assert_eq!(buf, pattern, "file {f} page {p}");
                    }
                });
            }
        });
        assert_eq!(d.stats().snapshot().writes, 4 * 8);
        for f in files {
            d.delete(f);
        }
        assert_eq!(d.allocated_pages(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memdisk_unknown_file_is_typed_error() {
        let d = MemDisk::new();
        let mut buf = Vec::new();
        let err = d.read_page(999, 0, &mut buf).unwrap_err();
        assert!(!err.is_transient());
        let err = d.write_page(999, 0, b"x").unwrap_err();
        assert_eq!(err.file, 999);
    }

    #[test]
    fn filedisk_read_past_eof_is_typed_error() {
        let dir = std::env::temp_dir().join(format!("skyline-eof-test-{}", std::process::id()));
        let d = FileDisk::new(&dir).unwrap();
        let f = d.create().unwrap();
        let mut buf = Vec::new();
        let err = d.read_page(f, 0, &mut buf).unwrap_err();
        assert_eq!(err.page, Some(0));
        assert!(!err.is_transient(), "EOF on a real file will recur");
        drop(d);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn files_are_independent() {
        let d = MemDisk::new();
        let a = d.create().unwrap();
        let b = d.create().unwrap();
        d.write_page(a, 0, b"aaa").unwrap();
        d.write_page(b, 0, b"bbb").unwrap();
        let mut buf = Vec::new();
        d.read_page(a, 0, &mut buf).unwrap();
        assert_eq!(&buf[..3], b"aaa");
        d.read_page(b, 0, &mut buf).unwrap();
        assert_eq!(&buf[..3], b"bbb");
    }
}
