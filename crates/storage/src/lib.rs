#![warn(missing_docs)]

//! Page-granular storage substrate with I/O accounting.
//!
//! The paper measures its algorithms in **pages**: 4096-byte pages, 40
//! 100-byte tuples each, and reports "extra pages" — pages written to (and
//! re-read from) temp files beyond the initial scan (Figures 10, 14, 15).
//! This crate provides exactly that accounting surface:
//!
//! * [`Disk`] — a page device. [`MemDisk`] keeps pages in memory for
//!   deterministic, fast experiments; [`FileDisk`] spills to real files.
//!   Every page read/write increments shared [`IoStats`] counters.
//! * [`HeapFile`] — a dense, fixed-width-record file over a disk, with a
//!   page-buffered writer and a page-at-a-time scanner.
//! * [`BufferPool`] — a page-budget ledger. The paper's algorithms manage
//!   their own windows; what the engine enforces is *how many pages* each
//!   operator may pin, which is what this ledger models.
//!
//! Every page transfer is fallible: device failures surface as typed
//! [`StorageError`]s (transient vs permanent), [`FaultDisk`] injects
//! deterministic seed-driven faults for testing, and [`RetryDisk`]
//! re-attempts transient failures under a bounded [`RetryPolicy`].

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod error;
pub mod fault;
pub mod heap;
pub mod io_stats;
pub mod retry;
mod sync;

pub use btree::{BTree, BTreeScan, SharedBTreeScan};
pub use buffer::{BufferLease, BufferPool};
pub use disk::{write_text, Disk, FileDisk, FileId, MemDisk};
pub use error::{ErrorKind, IoOp, StorageError};
pub use fault::{FaultDisk, FaultSchedule};
pub use heap::{HeapFile, HeapScanner, HeapWriter, SharedScanner};
pub use io_stats::{DiskCostModel, IoSnapshot, IoStats};
pub use retry::{RetryDisk, RetryPolicy};

/// Page size in bytes (matches `skyline_relation::PAGE_SIZE`).
pub const PAGE_SIZE: usize = 4096;
