//! A page-based B+-tree (index-organized table).
//!
//! Why a skyline workspace carries a B+-tree: the paper's §4.2 warns that
//! BNL's run time depends on input order, and "if a table has a clustered
//! (tree) index, which is quite likely, its tuples are ordered in the
//! heapfile … It is impossible to ensure that the skyline operation
//! receives its input in a 'random' ordering." This structure produces
//! exactly that clustered order — with honest page-level I/O accounting —
//! so the experiments can feed skyline operators realistic
//! index-ordered inputs.
//!
//! Design: fixed-length order-preserving byte keys (see [`key_codec`]),
//! fixed-length records; leaves chained for range scans; standard
//! recursive insert with splits; bottom-up bulk load from sorted input.
//! Every node visit is one counted page read; every node write one page
//! write, and every one of them can fail with a typed
//! [`StorageError`]. Tree metadata (root, height, count) lives in the
//! handle, like [`crate::HeapFile`]'s.

use crate::disk::{Disk, FileId};
use crate::error::StorageError;
use crate::PAGE_SIZE;
use std::sync::Arc;

/// Order-preserving key encodings (memcmp order == value order).
pub mod key_codec {
    /// Encode an `i32` so unsigned byte-wise comparison matches numeric
    /// order (flip the sign bit, big-endian).
    pub fn i32_key(v: i32) -> [u8; 4] {
        ((v as u32) ^ 0x8000_0000).to_be_bytes()
    }

    /// Decode [`i32_key`].
    ///
    /// # Panics
    /// Panics if `k` is shorter than 4 bytes.
    pub fn i32_from_key(k: &[u8]) -> i32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&k[..4]);
        (u32::from_be_bytes(b) ^ 0x8000_0000) as i32
    }

    /// Composite key from several `i32`s (lexicographic, order-preserving).
    pub fn composite_i32_key(vals: &[i32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 * vals.len());
        for &v in vals {
            out.extend_from_slice(&i32_key(v));
        }
        out
    }
}

const HDR: usize = 16;
const T_LEAF: u8 = 1;
const T_INTERNAL: u8 = 0;
/// Sentinel for "no page".
const NIL: u64 = u64::MAX;

/// Read a little-endian u64 from the first 8 bytes of `b`.
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// A B+-tree over `(key, record)` pairs with fixed sizes. Duplicate keys
/// are allowed.
pub struct BTree {
    disk: Arc<dyn Disk>,
    file: FileId,
    key_len: usize,
    record_size: usize,
    root: u64,
    next_page: u64,
    height: u32,
    n_records: u64,
    temp: bool,
}

struct Node {
    page_no: u64,
    buf: Vec<u8>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.buf[0] == T_LEAF
    }

    fn count(&self) -> usize {
        u16::from_le_bytes([self.buf[1], self.buf[2]]) as usize
    }

    fn set_count(&mut self, c: usize) {
        let b = (c as u16).to_le_bytes();
        self.buf[1] = b[0];
        self.buf[2] = b[1];
    }

    /// Leaf: next-leaf pointer. Internal: leftmost child.
    fn link(&self) -> u64 {
        le_u64(&self.buf[8..16])
    }

    fn set_link(&mut self, v: u64) {
        self.buf[8..16].copy_from_slice(&v.to_le_bytes());
    }
}

impl BTree {
    // Capacities leave one entry of slack below the physical page limit:
    // inserts go in first and split after, so a node transiently holds
    // cap + 1 entries, which must still fit the page buffer.
    fn leaf_cap(&self) -> usize {
        (PAGE_SIZE - HDR) / (self.key_len + self.record_size) - 1
    }

    fn internal_cap(&self) -> usize {
        (PAGE_SIZE - HDR) / (self.key_len + 8) - 1
    }

    fn leaf_entry(&self) -> usize {
        self.key_len + self.record_size
    }

    fn internal_entry(&self) -> usize {
        self.key_len + 8
    }

    /// Create an empty tree.
    ///
    /// # Errors
    /// [`StorageError`] when creating the file or writing the root fails.
    ///
    /// # Panics
    /// Panics unless at least 2 leaf entries and 2 internal entries fit a
    /// page, and sizes are positive.
    pub fn new(
        disk: Arc<dyn Disk>,
        key_len: usize,
        record_size: usize,
    ) -> Result<Self, StorageError> {
        assert!(key_len > 0 && record_size > 0);
        let file = disk.create()?;
        // Built temp-first: if the root write below fails, Drop deletes
        // the just-created file instead of orphaning its entry.
        let mut t = BTree {
            disk,
            file,
            key_len,
            record_size,
            root: 0,
            next_page: 0,
            height: 1,
            n_records: 0,
            temp: true,
        };
        assert!(t.leaf_cap() >= 2, "records too large for a page");
        assert!(t.internal_cap() >= 2, "keys too large for a page");
        let root = t.alloc_node(T_LEAF);
        t.root = root.page_no;
        t.write_node(&root)?;
        t.temp = false;
        Ok(t)
    }

    /// Mark for deletion on drop.
    pub fn mark_temp(&mut self) {
        self.temp = true;
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.n_records
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pages allocated.
    pub fn num_pages(&self) -> u64 {
        self.next_page
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }

    fn alloc_node(&mut self, ty: u8) -> Node {
        let page_no = self.next_page;
        self.next_page += 1;
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = ty;
        let mut n = Node { page_no, buf };
        n.set_link(NIL);
        n
    }

    fn read_node(&self, page_no: u64) -> Result<Node, StorageError> {
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        self.disk.read_page(self.file, page_no, &mut buf)?;
        Ok(Node { page_no, buf })
    }

    fn write_node(&self, node: &Node) -> Result<(), StorageError> {
        self.disk.write_page(self.file, node.page_no, &node.buf)
    }

    fn leaf_key<'a>(&self, n: &'a Node, i: usize) -> &'a [u8] {
        let off = HDR + i * self.leaf_entry();
        &n.buf[off..off + self.key_len]
    }

    fn leaf_record<'a>(&self, n: &'a Node, i: usize) -> &'a [u8] {
        let off = HDR + i * self.leaf_entry() + self.key_len;
        &n.buf[off..off + self.record_size]
    }

    fn internal_key<'a>(&self, n: &'a Node, i: usize) -> &'a [u8] {
        let off = HDR + i * self.internal_entry();
        &n.buf[off..off + self.key_len]
    }

    fn internal_child(&self, n: &Node, i: usize) -> u64 {
        let off = HDR + i * self.internal_entry() + self.key_len;
        le_u64(&n.buf[off..off + 8])
    }

    /// Index of the child to follow for `key`: entries store separator
    /// keys; child `i` holds keys ≥ key_i (leftmost holds keys < key_0).
    fn route(&self, n: &Node, key: &[u8]) -> u64 {
        let c = n.count();
        let mut child = n.link(); // leftmost
        for i in 0..c {
            if self.internal_key(n, i) <= key {
                child = self.internal_child(n, i);
            } else {
                break;
            }
        }
        child
    }

    fn insert_into_leaf(&self, n: &mut Node, pos: usize, key: &[u8], record: &[u8]) {
        let e = self.leaf_entry();
        let c = n.count();
        let start = HDR + pos * e;
        let end = HDR + c * e;
        n.buf.copy_within(start..end, start + e);
        n.buf[start..start + self.key_len].copy_from_slice(key);
        n.buf[start + self.key_len..start + e].copy_from_slice(record);
        n.set_count(c + 1);
    }

    fn insert_into_internal(&self, n: &mut Node, pos: usize, key: &[u8], child: u64) {
        let e = self.internal_entry();
        let c = n.count();
        let start = HDR + pos * e;
        let end = HDR + c * e;
        n.buf.copy_within(start..end, start + e);
        n.buf[start..start + self.key_len].copy_from_slice(key);
        n.buf[start + self.key_len..start + e].copy_from_slice(&child.to_le_bytes());
        n.set_count(c + 1);
    }

    /// Insert one `(key, record)` pair.
    ///
    /// # Errors
    /// [`StorageError`] when a node read or write fails; the tree may have
    /// written some split pages already — treat the handle as poisoned.
    ///
    /// # Panics
    /// Panics on size mismatches.
    pub fn insert(&mut self, key: &[u8], record: &[u8]) -> Result<(), StorageError> {
        assert_eq!(key.len(), self.key_len, "key size mismatch");
        assert_eq!(record.len(), self.record_size, "record size mismatch");
        if let Some((sep, right)) = self.insert_rec(self.root, key, record)? {
            // root split
            let old_root = self.root;
            let mut new_root = self.alloc_node(T_INTERNAL);
            new_root.set_link(old_root);
            self.insert_into_internal(&mut new_root, 0, &sep, right);
            self.root = new_root.page_no;
            self.write_node(&new_root)?;
            self.height += 1;
        }
        self.n_records += 1;
        Ok(())
    }

    /// Recursive insert; returns `(separator, new right page)` on split.
    fn insert_rec(
        &mut self,
        page: u64,
        key: &[u8],
        record: &[u8],
    ) -> Result<Option<(Vec<u8>, u64)>, StorageError> {
        let mut node = self.read_node(page)?;
        if node.is_leaf() {
            let c = node.count();
            // position after existing equal keys (stable for duplicates)
            let mut pos = 0;
            while pos < c && self.leaf_key(&node, pos) <= key {
                pos += 1;
            }
            self.insert_into_leaf(&mut node, pos, key, record);
            if node.count() <= self.leaf_cap() {
                self.write_node(&node)?;
                return Ok(None);
            }
            // split
            let total = node.count();
            let keep = total / 2;
            let mut right = self.alloc_node(T_LEAF);
            let e = self.leaf_entry();
            let src = HDR + keep * e..HDR + total * e;
            right.buf[HDR..HDR + (total - keep) * e].copy_from_slice(&node.buf[src]);
            right.set_count(total - keep);
            right.set_link(node.link());
            node.set_count(keep);
            node.set_link(right.page_no);
            let sep = self.leaf_key(&right, 0).to_vec();
            self.write_node(&node)?;
            self.write_node(&right)?;
            Ok(Some((sep, right.page_no)))
        } else {
            let child = self.route(&node, key);
            let Some((sep, right_page)) = self.insert_rec(child, key, record)? else {
                return Ok(None);
            };
            // re-read: child recursion may have been deep but this node
            // unchanged; still re-read for simplicity and correctness
            let mut node = self.read_node(page)?;
            let c = node.count();
            let mut pos = 0;
            while pos < c && self.internal_key(&node, pos) <= sep.as_slice() {
                pos += 1;
            }
            self.insert_into_internal(&mut node, pos, &sep, right_page);
            if node.count() <= self.internal_cap() {
                self.write_node(&node)?;
                return Ok(None);
            }
            // split internal: promote the middle separator
            let total = node.count();
            let mid = total / 2;
            let e = self.internal_entry();
            let promoted = self.internal_key(&node, mid).to_vec();
            let promoted_child = self.internal_child(&node, mid);
            let mut right = self.alloc_node(T_INTERNAL);
            right.set_link(promoted_child);
            let entries_right = total - mid - 1;
            let src = HDR + (mid + 1) * e..HDR + total * e;
            right.buf[HDR..HDR + entries_right * e].copy_from_slice(&node.buf[src]);
            right.set_count(entries_right);
            node.set_count(mid);
            self.write_node(&node)?;
            self.write_node(&right)?;
            Ok(Some((promoted, right.page_no)))
        }
    }

    /// First record with exactly `key`, if any.
    ///
    /// # Errors
    /// [`StorageError`] when a node read fails.
    ///
    /// # Panics
    /// Panics if `key.len()` differs from the tree's key length.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StorageError> {
        assert_eq!(key.len(), self.key_len);
        let mut scan = self.range_from(key)?;
        match scan.next_entry()? {
            Some((k, r)) if k == key => Ok(Some(r.to_vec())),
            _ => Ok(None),
        }
    }

    /// Range scan starting at the first entry with key ≥ `from`.
    ///
    /// # Errors
    /// [`StorageError`] when the descent reads fail.
    ///
    /// # Panics
    /// Panics if `from.len()` differs from the tree's key length.
    pub fn range_from(&self, from: &[u8]) -> Result<BTreeScan<'_>, StorageError> {
        assert_eq!(from.len(), self.key_len);
        let mut page = self.root;
        for _ in 1..self.height {
            let node = self.read_node(page)?;
            debug_assert!(!node.is_leaf());
            page = self.route(&node, from);
        }
        let leaf = self.read_node(page)?;
        debug_assert!(leaf.is_leaf());
        let c = leaf.count();
        let mut pos = 0;
        while pos < c && self.leaf_key(&leaf, pos) < from {
            pos += 1;
        }
        Ok(BTreeScan {
            tree: self,
            leaf: Some(leaf),
            pos,
        })
    }

    /// Full scan in key order (the clustered-index order).
    ///
    /// # Errors
    /// [`StorageError`] when the descent reads fail.
    pub fn scan(&self) -> Result<BTreeScan<'_>, StorageError> {
        // descend along leftmost children
        let mut page = self.root;
        for _ in 1..self.height {
            let node = self.read_node(page)?;
            page = node.link();
        }
        let leaf = self.read_node(page)?;
        Ok(BTreeScan {
            tree: self,
            leaf: Some(leaf),
            pos: 0,
        })
    }

    /// Bulk-load from `(key, record)` pairs that are already sorted by
    /// key — builds leaves left to right and index levels bottom-up,
    /// leaving every node ~full.
    ///
    /// # Errors
    /// [`StorageError`] when a node write fails mid-build; pages written
    /// so far stay in the (not yet returned, hence leaked-on-error) file
    /// unless the disk handle is dropped — load into a temp-marked tree
    /// when that matters.
    ///
    /// # Panics
    /// Panics on size mismatches or unsorted input (debug assertions).
    pub fn bulk_load<'a, I>(
        disk: Arc<dyn Disk>,
        key_len: usize,
        record_size: usize,
        sorted: I,
    ) -> Result<Self, StorageError>
    where
        I: IntoIterator<Item = (&'a [u8], &'a [u8])>,
    {
        let mut t = BTree::new(disk, key_len, record_size)?;
        // discard the empty root; rebuild from scratch
        t.next_page = 0;
        let leaf_cap = t.leaf_cap();

        // build leaves
        let mut leaves: Vec<(Vec<u8>, u64)> = Vec::new(); // (first key, page)
        let mut cur = t.alloc_node(T_LEAF);
        let mut first_key: Option<Vec<u8>> = None;
        let mut prev_key: Option<Vec<u8>> = None;
        let mut n_records = 0u64;
        for (key, record) in sorted {
            assert_eq!(key.len(), key_len);
            assert_eq!(record.len(), record_size);
            if let Some(p) = &prev_key {
                debug_assert!(p.as_slice() <= key, "bulk_load input must be sorted");
            }
            prev_key = Some(key.to_vec());
            if cur.count() == leaf_cap {
                let next = t.alloc_node(T_LEAF);
                cur.set_link(next.page_no);
                t.write_node(&cur)?;
                // a full leaf always recorded its first key
                leaves.push((first_key.take().unwrap_or_default(), cur.page_no));
                cur = next;
            }
            if cur.count() == 0 {
                first_key = Some(key.to_vec());
            }
            let pos = cur.count();
            t.insert_into_leaf(&mut cur, pos, key, record);
            n_records += 1;
        }
        t.write_node(&cur)?;
        leaves.push((first_key.unwrap_or_default(), cur.page_no));

        // build index levels
        let mut level = leaves;
        let mut height = 1;
        while level.len() > 1 {
            let cap = t.internal_cap();
            let mut next_level: Vec<(Vec<u8>, u64)> = Vec::new();
            // each internal node takes 1 leftmost child + up to cap keyed
            // children
            let mut current: Option<(Node, Vec<u8>)> = None;
            for (first, page) in level {
                let start_new = match &mut current {
                    None => true,
                    Some((node, _)) if node.count() == cap => true,
                    Some((node, _)) => {
                        let pos = node.count();
                        t.insert_into_internal(node, pos, &first, page);
                        false
                    }
                };
                if start_new {
                    if let Some((done, done_first)) = current.take() {
                        t.write_node(&done)?;
                        next_level.push((done_first, done.page_no));
                    }
                    let mut node = t.alloc_node(T_INTERNAL);
                    node.set_link(page);
                    current = Some((node, first));
                }
            }
            if let Some((node, node_first)) = current {
                t.write_node(&node)?;
                next_level.push((node_first, node.page_no));
            }
            level = next_level;
            height += 1;
        }
        t.root = level[0].1;
        t.height = height;
        t.n_records = n_records;
        Ok(t)
    }

    /// Delete the file, consuming the handle.
    pub fn delete(self) {
        self.disk.delete(self.file);
    }
}

impl Drop for BTree {
    fn drop(&mut self) {
        if self.temp {
            self.disk.delete(self.file);
        }
    }
}

/// Leaf-chain scanner over a [`BTree`].
pub struct BTreeScan<'a> {
    tree: &'a BTree,
    leaf: Option<Node>,
    pos: usize,
}

/// A borrowed `(key, record)` pair yielded by a B-tree scan.
pub type Entry<'a> = (&'a [u8], &'a [u8]);

impl BTreeScan<'_> {
    /// Next `(key, record)`, or `None` at the end.
    ///
    /// # Errors
    /// [`StorageError`] when reading the next leaf fails.
    pub fn next_entry(&mut self) -> Result<Option<Entry<'_>>, StorageError> {
        loop {
            let Some(leaf) = &self.leaf else {
                return Ok(None);
            };
            if self.pos < leaf.count() {
                break;
            }
            let next = leaf.link();
            if next == NIL {
                self.leaf = None;
                return Ok(None);
            }
            self.leaf = Some(self.tree.read_node(next)?);
            self.pos = 0;
        }
        let i = self.pos;
        self.pos += 1;
        match &self.leaf {
            Some(leaf) => Ok(Some((
                self.tree.leaf_key(leaf, i),
                self.tree.leaf_record(leaf, i),
            ))),
            // the loop above only exits with a leaf in hand
            None => Ok(None),
        }
    }

    /// Next record only.
    ///
    /// # Errors
    /// [`StorageError`] when reading the next leaf fails.
    pub fn next_record(&mut self) -> Result<Option<&[u8]>, StorageError> {
        Ok(self.next_entry()?.map(|(_, r)| r))
    }
}

/// Owning scanner over an `Arc<BTree>` — full key-order scan suitable for
/// operators (mirrors [`crate::SharedScanner`]).
pub struct SharedBTreeScan {
    tree: Arc<BTree>,
    leaf: Option<(u64, Vec<u8>)>,
    pos: usize,
}

impl SharedBTreeScan {
    /// Start a full scan of `tree` in key order.
    ///
    /// # Errors
    /// [`StorageError`] when the descent to the leftmost leaf fails.
    pub fn new(tree: Arc<BTree>) -> Result<Self, StorageError> {
        let mut page = tree.root;
        for _ in 1..tree.height {
            let node = tree.read_node(page)?;
            page = node.link();
        }
        let leaf = tree.read_node(page)?;
        Ok(SharedBTreeScan {
            tree: Arc::clone(&tree),
            leaf: Some((leaf.page_no, leaf.buf)),
            pos: 0,
        })
    }

    /// Next record, or `None` at end of tree.
    ///
    /// # Errors
    /// [`StorageError`] when reading the next leaf fails.
    pub fn next_record(&mut self) -> Result<Option<&[u8]>, StorageError> {
        loop {
            let Some((_, buf)) = &self.leaf else {
                return Ok(None);
            };
            let count = u16::from_le_bytes([buf[1], buf[2]]) as usize;
            if self.pos < count {
                break;
            }
            let next = le_u64(&buf[8..16]);
            if next == NIL {
                self.leaf = None;
                return Ok(None);
            }
            let leaf = self.tree.read_node(next)?;
            self.leaf = Some((leaf.page_no, leaf.buf));
            self.pos = 0;
        }
        let i = self.pos;
        self.pos += 1;
        match &self.leaf {
            Some((_, buf)) => {
                let off = HDR + i * self.tree.leaf_entry() + self.tree.key_len;
                Ok(Some(&buf[off..off + self.tree.record_size]))
            }
            // the loop above only exits with a leaf in hand
            None => Ok(None),
        }
    }

    /// The scanned tree.
    pub fn tree(&self) -> &Arc<BTree> {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::key_codec::*;
    use super::*;
    use crate::disk::MemDisk;

    fn mk(disk: &Arc<MemDisk>) -> BTree {
        BTree::new(Arc::clone(disk) as Arc<dyn Disk>, 4, 8).unwrap()
    }

    #[test]
    fn failed_root_write_does_not_orphan_the_file() {
        use crate::fault::{FaultDisk, FaultSchedule};
        let inner = MemDisk::shared();
        let disk = FaultDisk::shared(
            Arc::clone(&inner) as Arc<dyn Disk>,
            FaultSchedule::nth_write(0),
        );
        assert!(BTree::new(disk, 4, 8).is_err(), "first write must fault");
        // temp-first construction: the unwound tree deleted its file,
        // so the id is gone (not merely empty)
        let mut buf = Vec::new();
        let err = inner.read_page(0, 0, &mut buf).unwrap_err();
        assert!(err.to_string().contains("unknown or deleted file"), "{err}");
        assert_eq!(inner.allocated_pages(), 0);
    }

    fn rec(v: i32) -> [u8; 8] {
        let mut r = [0u8; 8];
        r[..4].copy_from_slice(&v.to_le_bytes());
        r
    }

    fn drain_keys(t: &BTree) -> Vec<i32> {
        let mut out = Vec::new();
        let mut scan = t.scan().unwrap();
        while let Some((k, _)) = scan.next_entry().unwrap() {
            out.push(i32_from_key(k));
        }
        out
    }

    #[test]
    fn key_codec_preserves_order() {
        let vals = [i32::MIN, -1_000_000, -1, 0, 1, 42, i32::MAX];
        for w in vals.windows(2) {
            assert!(i32_key(w[0]) < i32_key(w[1]), "{} vs {}", w[0], w[1]);
            assert_eq!(i32_from_key(&i32_key(w[0])), w[0]);
        }
        assert!(composite_i32_key(&[1, 5]) < composite_i32_key(&[2, 0]));
        assert!(composite_i32_key(&[1, 5]) < composite_i32_key(&[1, 6]));
    }

    #[test]
    fn insert_scan_sorted_with_splits() {
        let disk = MemDisk::shared();
        let mut t = mk(&disk);
        // enough to force several levels: leaf cap = (4096-16)/12 = 340
        let mut vals: Vec<i32> = (0..5_000)
            .map(|i| (i * 2_654_435_761u64 as i64 % 100_000) as i32)
            .collect();
        for &v in &vals {
            t.insert(&i32_key(v), &rec(v)).unwrap();
        }
        assert_eq!(t.len(), 5_000);
        assert!(t.height() >= 2);
        vals.sort_unstable();
        assert_eq!(drain_keys(&t), vals);
    }

    #[test]
    fn duplicates_survive() {
        let disk = MemDisk::shared();
        let mut t = mk(&disk);
        for _ in 0..700 {
            t.insert(&i32_key(7), &rec(7)).unwrap();
        }
        t.insert(&i32_key(3), &rec(3)).unwrap();
        t.insert(&i32_key(9), &rec(9)).unwrap();
        let keys = drain_keys(&t);
        assert_eq!(keys.len(), 702);
        assert_eq!(keys[0], 3);
        assert_eq!(*keys.last().unwrap(), 9);
        assert!(keys[1..701].iter().all(|&k| k == 7));
    }

    #[test]
    fn point_get_and_range() {
        let disk = MemDisk::shared();
        let mut t = mk(&disk);
        for v in (0..1000).step_by(2) {
            t.insert(&i32_key(v), &rec(v * 10)).unwrap();
        }
        assert_eq!(t.get(&i32_key(500)).unwrap(), Some(rec(5000).to_vec()));
        assert_eq!(t.get(&i32_key(501)).unwrap(), None);
        // range from 995 → 996, 998
        let mut scan = t.range_from(&i32_key(995)).unwrap();
        let mut got = Vec::new();
        while let Some((k, _)) = scan.next_entry().unwrap() {
            got.push(i32_from_key(k));
        }
        assert_eq!(got, vec![996, 998]);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let disk = MemDisk::shared();
        let mut vals: Vec<i32> = (0..10_000).map(|i| (i * 37) % 5_000).collect();
        vals.sort_unstable();
        let pairs: Vec<([u8; 4], [u8; 8])> = vals.iter().map(|&v| (i32_key(v), rec(v))).collect();
        let t = BTree::bulk_load(
            Arc::clone(&disk) as Arc<dyn Disk>,
            4,
            8,
            pairs.iter().map(|(k, r)| (k.as_slice(), r.as_slice())),
        )
        .unwrap();
        assert_eq!(t.len(), 10_000);
        assert_eq!(drain_keys(&t), vals);
        // bulk-loaded trees are compact: ~n/leaf_cap leaves
        let leaf_cap = (PAGE_SIZE - HDR) / 12;
        assert!(t.num_pages() <= (10_000 / leaf_cap + 3) as u64 * 2);
    }

    #[test]
    fn empty_and_single() {
        let disk = MemDisk::shared();
        let mut t = mk(&disk);
        assert!(t.is_empty());
        assert!(t.scan().unwrap().next_entry().unwrap().is_none());
        assert_eq!(t.get(&i32_key(1)).unwrap(), None);
        t.insert(&i32_key(1), &rec(1)).unwrap();
        assert_eq!(drain_keys(&t), vec![1]);
    }

    #[test]
    fn empty_bulk_load() {
        let disk = MemDisk::shared();
        let t =
            BTree::bulk_load(Arc::clone(&disk) as Arc<dyn Disk>, 4, 8, std::iter::empty()).unwrap();
        assert!(t.is_empty());
        assert!(t.scan().unwrap().next_entry().unwrap().is_none());
    }

    #[test]
    fn scan_costs_one_read_per_leaf_page_plus_descent() {
        let disk = MemDisk::shared();
        let mut vals: Vec<i32> = (0..20_000).collect();
        vals.sort_unstable();
        let pairs: Vec<([u8; 4], [u8; 8])> = vals.iter().map(|&v| (i32_key(v), rec(v))).collect();
        let t = BTree::bulk_load(
            Arc::clone(&disk) as Arc<dyn Disk>,
            4,
            8,
            pairs.iter().map(|(k, r)| (k.as_slice(), r.as_slice())),
        )
        .unwrap();
        let before = disk.stats().snapshot();
        assert_eq!(drain_keys(&t).len(), 20_000);
        let delta = disk.stats().snapshot().since(&before);
        let leaf_cap = ((PAGE_SIZE - HDR) / 12) as u64;
        let leaves = 20_000u64.div_ceil(leaf_cap);
        assert!(
            delta.reads <= leaves + t.height() as u64 + 1,
            "reads {} vs leaves {leaves}",
            delta.reads
        );
    }

    #[test]
    fn shared_scan_matches_borrowing_scan() {
        let disk = MemDisk::shared();
        let mut t = mk(&disk);
        for v in [5, 1, 9, 3, 7, 7, 2] {
            t.insert(&i32_key(v), &rec(v)).unwrap();
        }
        let t = Arc::new(t);
        let mut s = SharedBTreeScan::new(Arc::clone(&t)).unwrap();
        let mut got = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            got.push(i32::from_le_bytes(r[..4].try_into().unwrap()));
        }
        assert_eq!(got, vec![1, 2, 3, 5, 7, 7, 9]);
    }

    #[test]
    fn temp_tree_freed_on_drop() {
        let disk = MemDisk::shared();
        {
            let mut t = mk(&disk);
            t.mark_temp();
            for v in 0..100 {
                t.insert(&i32_key(v), &rec(v)).unwrap();
            }
            assert!(disk.allocated_pages() > 0);
        }
        assert_eq!(disk.allocated_pages(), 0);
    }

    fn random_vals(rng: &mut skyline_testkit::Rng) -> Vec<i32> {
        let n = rng.usize_below(800);
        (0..n).map(|_| rng.i32_inclusive(-500, 499)).collect()
    }

    #[test]
    fn random_inserts_scan_sorted() {
        skyline_testkit::cases(32, 0xB7EE_0001, |rng| {
            let vals = random_vals(rng);
            let disk = MemDisk::shared();
            let mut t = mk(&disk);
            for &v in &vals {
                t.insert(&i32_key(v), &rec(v)).unwrap();
            }
            let mut expect = vals.clone();
            expect.sort_unstable();
            assert_eq!(drain_keys(&t), expect);
            assert_eq!(t.len(), vals.len() as u64);
        });
    }

    #[test]
    fn bulk_load_equals_insert_order() {
        skyline_testkit::cases(32, 0xB7EE_0002, |rng| {
            let mut sorted = random_vals(rng);
            sorted.sort_unstable();
            let disk = MemDisk::shared();
            let pairs: Vec<([u8; 4], [u8; 8])> =
                sorted.iter().map(|&v| (i32_key(v), rec(v))).collect();
            let t = BTree::bulk_load(
                Arc::clone(&disk) as Arc<dyn Disk>,
                4,
                8,
                pairs.iter().map(|(k, r)| (k.as_slice(), r.as_slice())),
            )
            .unwrap();
            assert_eq!(drain_keys(&t), sorted);
        });
    }
}
