//! Deterministic fault injection for the storage layer.
//!
//! [`FaultDisk`] wraps any [`Disk`] and fails operations on a seed-driven
//! schedule: the decision for the Nth read (or write) is a pure hash of
//! `(seed, kind, N)`, so a given [`FaultSchedule`] replays the exact same
//! fault sequence on every run — the property the fault-injection
//! differential suite depends on. Faults are typed [`StorageError`]s,
//! never panics; *torn* writes additionally persist a half-page prefix to
//! the inner disk before failing, modelling a power cut mid-write. Because
//! page writes are idempotent full-page stores, a retry of a torn write
//! recovers cleanly.

use crate::disk::{Disk, FileId};
use crate::error::{ErrorKind, IoOp, StorageError};
use crate::io_stats::IoStats;
use crate::PAGE_SIZE;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When faults fire and what kind they are. All decisions derive from
/// `seed` — two runs with equal schedules see identical faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed for the per-operation hash.
    pub seed: u64,
    /// Fail roughly one in `read_period` reads (0 = never fail reads).
    pub read_period: u64,
    /// Fail roughly one in `write_period` writes (0 = never fail writes).
    pub write_period: u64,
    /// Percentage (0..=100) of injected faults that are transient.
    pub transient_pct: u64,
    /// When set, a failing write first persists a torn half-page to the
    /// inner disk before reporting a transient error.
    pub torn_writes: bool,
    /// Skip injection for the first `arm_after` operations of each kind,
    /// letting setup I/O complete before faults arm.
    pub arm_after: u64,
}

impl FaultSchedule {
    /// A schedule that never fires — `FaultDisk` becomes a transparent
    /// pass-through.
    pub fn none() -> Self {
        FaultSchedule {
            seed: 0,
            read_period: 0,
            write_period: 0,
            transient_pct: 0,
            torn_writes: false,
            arm_after: 0,
        }
    }

    /// Fail exactly the `n`th read (0-based) with a permanent error.
    /// Period 1 + seed 0 encodes a one-shot: after the first armed fault
    /// fires, the schedule goes quiet.
    pub fn nth_read(n: u64) -> Self {
        FaultSchedule {
            seed: 0,
            read_period: 1,
            write_period: 0,
            transient_pct: 0,
            torn_writes: false,
            arm_after: n,
        }
    }

    /// Fail exactly the `n`th write (0-based) with a permanent error.
    /// One-shot, like [`FaultSchedule::nth_read`].
    pub fn nth_write(n: u64) -> Self {
        FaultSchedule {
            seed: 0,
            read_period: 0,
            write_period: 1,
            transient_pct: 0,
            torn_writes: false,
            arm_after: n,
        }
    }

    fn fires(&self, kind: IoOp, index: u64, fired_already: bool) -> Option<ErrorKind> {
        let period = match kind {
            IoOp::Read => self.read_period,
            IoOp::Write => self.write_period,
            _ => 0,
        };
        if period == 0 || index < self.arm_after {
            return None;
        }
        // One-shot schedules (nth_read/nth_write): period 1 with seed 0
        // fires on every armed op, so suppress repeats after the first.
        if period == 1 && self.seed == 0 && fired_already {
            return None;
        }
        let h = mix(self.seed, kind as u64, index);
        if !h.is_multiple_of(period) {
            return None;
        }
        if (h >> 32) % 100 < self.transient_pct {
            Some(ErrorKind::Transient)
        } else {
            Some(ErrorKind::Permanent)
        }
    }
}

/// splitmix64-style avalanche of `(seed, kind, index)`.
fn mix(seed: u64, kind: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(kind.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(index.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`Disk`] decorator that injects deterministic faults per a
/// [`FaultSchedule`]. Reads and writes consult the schedule; create,
/// delete, and stat operations always pass through, so cleanup paths
/// (Drop-deleting temp files) cannot themselves fault.
pub struct FaultDisk {
    inner: Arc<dyn Disk>,
    schedule: FaultSchedule,
    reads: AtomicU64,
    writes: AtomicU64,
    injected: AtomicU64,
    read_fired: AtomicU64,
    write_fired: AtomicU64,
}

impl FaultDisk {
    /// Wrap `inner`, failing operations per `schedule`.
    pub fn new(inner: Arc<dyn Disk>, schedule: FaultSchedule) -> Self {
        FaultDisk {
            inner,
            schedule,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            read_fired: AtomicU64::new(0),
            write_fired: AtomicU64::new(0),
        }
    }

    /// Shareable handle around `inner` with `schedule`.
    pub fn shared(inner: Arc<dyn Disk>, schedule: FaultSchedule) -> Arc<Self> {
        Arc::new(FaultDisk::new(inner, schedule))
    }

    /// Faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn decide(&self, kind: IoOp) -> Option<ErrorKind> {
        let (counter, fired) = match kind {
            IoOp::Read => (&self.reads, &self.read_fired),
            _ => (&self.writes, &self.write_fired),
        };
        let index = counter.fetch_add(1, Ordering::Relaxed);
        let verdict = self
            .schedule
            .fires(kind, index, fired.load(Ordering::Relaxed) > 0);
        if verdict.is_some() {
            fired.fetch_add(1, Ordering::Relaxed);
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }
}

impl Disk for FaultDisk {
    fn create(&self) -> Result<FileId, StorageError> {
        self.inner.create()
    }

    fn delete(&self, file: FileId) {
        self.inner.delete(file);
    }

    fn write_page(&self, file: FileId, page_no: u64, data: &[u8]) -> Result<(), StorageError> {
        if let Some(kind) = self.decide(IoOp::Write) {
            if self.schedule.torn_writes && kind == ErrorKind::Transient {
                // Power-cut model: half the page reaches the device, then
                // the write reports failure. A full-page retry recovers.
                let torn = &data[..data.len().min(PAGE_SIZE / 2)];
                self.inner.write_page(file, page_no, torn)?;
            }
            return Err(
                StorageError::new(IoOp::Write, file, kind, "injected fault").at_page(page_no)
            );
        }
        self.inner.write_page(file, page_no, data)
    }

    fn read_page(&self, file: FileId, page_no: u64, buf: &mut Vec<u8>) -> Result<(), StorageError> {
        if let Some(kind) = self.decide(IoOp::Read) {
            return Err(
                StorageError::new(IoOp::Read, file, kind, "injected fault").at_page(page_no)
            );
        }
        self.inner.read_page(file, page_no, buf)
    }

    fn num_pages(&self, file: FileId) -> Result<u64, StorageError> {
        self.inner.num_pages(file)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn allocated_pages(&self) -> u64 {
        self.inner.allocated_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn faulty(schedule: FaultSchedule) -> FaultDisk {
        FaultDisk::new(MemDisk::shared(), schedule)
    }

    #[test]
    fn none_schedule_is_transparent() {
        let d = faulty(FaultSchedule::none());
        let f = d.create().unwrap();
        for p in 0..20 {
            d.write_page(f, p, b"x").unwrap();
        }
        let mut buf = Vec::new();
        for p in 0..20 {
            d.read_page(f, p, &mut buf).unwrap();
        }
        assert_eq!(d.injected_faults(), 0);
    }

    #[test]
    fn nth_read_fails_exactly_once() {
        let d = faulty(FaultSchedule::nth_read(2));
        let f = d.create().unwrap();
        for p in 0..5 {
            d.write_page(f, p, b"x").unwrap();
        }
        let mut buf = Vec::new();
        d.read_page(f, 0, &mut buf).unwrap(); // read 0
        d.read_page(f, 1, &mut buf).unwrap(); // read 1
        let err = d.read_page(f, 2, &mut buf).unwrap_err(); // read 2: boom
        assert!(!err.is_transient());
        assert_eq!(err.page, Some(2));
        d.read_page(f, 3, &mut buf).unwrap(); // one-shot: later reads pass
        assert_eq!(d.injected_faults(), 1);
    }

    #[test]
    fn nth_write_fails_exactly_once() {
        let d = faulty(FaultSchedule::nth_write(1));
        let f = d.create().unwrap();
        d.write_page(f, 0, b"a").unwrap();
        let err = d.write_page(f, 1, b"b").unwrap_err();
        assert_eq!(err.op, IoOp::Write);
        d.write_page(f, 1, b"b").unwrap();
        assert_eq!(d.injected_faults(), 1);
    }

    #[test]
    fn schedule_is_deterministic_across_runs() {
        let schedule = FaultSchedule {
            seed: 42,
            read_period: 3,
            write_period: 4,
            transient_pct: 50,
            torn_writes: false,
            arm_after: 2,
        };
        let run = || {
            let d = faulty(schedule);
            let f = d.create().unwrap();
            let mut outcomes = Vec::new();
            for p in 0..30 {
                outcomes.push(d.write_page(f, p % 3, b"x").map_err(|e| e.kind));
            }
            let mut buf = Vec::new();
            for p in 0..3 {
                for _ in 0..10 {
                    outcomes.push(d.read_page(f, p, &mut buf).map_err(|e| e.kind));
                }
            }
            (outcomes, d.injected_faults())
        };
        let (a, fa) = run();
        let (b, fb) = run();
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        assert_eq!(fa, fb);
        assert!(fa > 0, "a periodic schedule over 60 ops should fire");
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| FaultSchedule {
            seed,
            read_period: 2,
            write_period: 2,
            transient_pct: 50,
            torn_writes: false,
            arm_after: 0,
        };
        let outcomes = |schedule| {
            let d = faulty(schedule);
            let f = d.create().unwrap();
            (0..40)
                .map(|_| d.write_page(f, 0, b"x").is_ok())
                .collect::<Vec<_>>()
        };
        assert_ne!(outcomes(mk(1)), outcomes(mk(2)));
    }

    #[test]
    fn torn_write_persists_half_page_then_errors() {
        let inner = MemDisk::shared();
        let schedule = FaultSchedule {
            seed: 0,
            read_period: 0,
            write_period: 1,
            transient_pct: 100,
            torn_writes: true,
            arm_after: 0,
        };
        let d = FaultDisk::new(Arc::clone(&inner) as Arc<dyn Disk>, schedule);
        let f = d.create().unwrap();
        let full = vec![0xABu8; PAGE_SIZE];
        let err = d.write_page(f, 0, &full).unwrap_err();
        assert!(err.is_transient(), "torn writes are transient");
        // inner disk saw the torn prefix
        let mut buf = Vec::new();
        inner.read_page(f, 0, &mut buf).unwrap();
        assert!(buf[..PAGE_SIZE / 2].iter().all(|&b| b == 0xAB));
        assert!(buf[PAGE_SIZE / 2..].iter().all(|&b| b == 0));
    }
}
