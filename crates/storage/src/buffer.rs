//! Buffer-pool page-budget ledger.
//!
//! The paper's operators each receive a page budget from the optimizer —
//! the skyline *window* (the x-axis of every figure), and the sort's
//! ~1000-page workspace. The algorithms manage their own page contents;
//! what the engine enforces is the budget. [`BufferPool`] is that ledger:
//! reservations are RAII [`BufferLease`]s, over-reservation fails, and peak
//! usage is tracked so experiments can report true memory footprints.

use crate::sync::lock;
use std::fmt;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Ledger {
    used: usize,
    peak: usize,
}

/// A fixed pool of buffer pages shared by the operators of a plan.
#[derive(Debug, Clone)]
pub struct BufferPool {
    total: usize,
    ledger: Arc<Mutex<Ledger>>,
}

impl BufferPool {
    /// A pool of `total` pages.
    pub fn new(total: usize) -> Self {
        BufferPool {
            total,
            ledger: Arc::new(Mutex::new(Ledger::default())),
        }
    }

    /// Pool capacity in pages.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Pages currently reserved.
    pub fn used(&self) -> usize {
        lock(&self.ledger).used
    }

    /// Pages currently free.
    pub fn available(&self) -> usize {
        self.total - self.used()
    }

    /// High-water mark of reservations.
    pub fn peak(&self) -> usize {
        lock(&self.ledger).peak
    }

    /// Reserve `pages` pages, failing if the pool cannot satisfy it.
    ///
    /// # Errors
    /// [`BufferError::Exhausted`] when fewer than `pages` pages are
    /// free; the error carries the request and what was available.
    pub fn reserve(&self, pages: usize) -> Result<BufferLease, BufferError> {
        let mut ledger = lock(&self.ledger);
        if ledger.used + pages > self.total {
            return Err(BufferError::Exhausted {
                requested: pages,
                available: self.total - ledger.used,
            });
        }
        ledger.used += pages;
        ledger.peak = ledger.peak.max(ledger.used);
        Ok(BufferLease {
            pool: self.clone(),
            pages,
        })
    }
}

/// RAII reservation of pages from a [`BufferPool`]; released on drop.
#[derive(Debug)]
pub struct BufferLease {
    pool: BufferPool,
    pages: usize,
}

impl BufferLease {
    /// Number of pages held by this lease.
    pub fn pages(&self) -> usize {
        self.pages
    }
}

impl Drop for BufferLease {
    fn drop(&mut self) {
        lock(&self.pool.ledger).used -= self.pages;
    }
}

/// Errors reserving buffer pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// The pool cannot satisfy the request.
    Exhausted {
        /// Pages requested.
        requested: usize,
        /// Pages that were available.
        available: usize,
    },
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::Exhausted {
                requested,
                available,
            } => write!(
                f,
                "buffer pool exhausted: requested {requested} pages, {available} available"
            ),
        }
    }
}

impl std::error::Error for BufferError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let pool = BufferPool::new(10);
        let a = pool.reserve(6).unwrap();
        assert_eq!(pool.used(), 6);
        assert_eq!(pool.available(), 4);
        let b = pool.reserve(4).unwrap();
        assert_eq!(pool.available(), 0);
        drop(a);
        assert_eq!(pool.available(), 6);
        drop(b);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 10);
    }

    #[test]
    fn over_reservation_fails() {
        let pool = BufferPool::new(5);
        let _a = pool.reserve(3).unwrap();
        let err = pool.reserve(3).unwrap_err();
        assert_eq!(
            err,
            BufferError::Exhausted {
                requested: 3,
                available: 2
            }
        );
    }

    #[test]
    fn zero_page_lease_is_fine() {
        let pool = BufferPool::new(0);
        let l = pool.reserve(0).unwrap();
        assert_eq!(l.pages(), 0);
    }

    #[test]
    fn clones_share_the_ledger() {
        let pool = BufferPool::new(8);
        let clone = pool.clone();
        let _l = pool.reserve(5).unwrap();
        assert_eq!(clone.used(), 5);
        assert!(clone.reserve(4).is_err());
    }
}
