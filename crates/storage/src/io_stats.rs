//! Shared page-I/O counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe page read/write counters, shared by every file on a disk.
///
/// The paper's I/O figures count each temp-file page twice — "each page
/// requires two I/O's: when it is written, and when it is read on the
/// subsequent pass" — so experiment harnesses report `reads + writes`
/// deltas between [`IoStats::snapshot`]s.
#[derive(Debug, Default)]
pub struct IoStats {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    retries: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Record one page read.
    #[inline]
    pub fn record_read(&self) {
        self.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one page write.
    #[inline]
    pub fn record_write(&self) {
        self.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Pages read so far.
    pub fn reads(&self) -> u64 {
        self.page_reads.load(Ordering::Relaxed)
    }

    /// Pages written so far.
    pub fn writes(&self) -> u64 {
        self.page_writes.load(Ordering::Relaxed)
    }

    /// Record one retried operation (a [`crate::RetryDisk`] re-attempt
    /// after a transient failure).
    #[inline]
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Operations retried so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads(),
            writes: self.writes(),
            retries: self.retries(),
        }
    }

    /// Reset all counters to zero (between experiment runs).
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of the counters, supporting deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
    /// Operations retried after a transient failure.
    pub retries: u64,
}

impl IoSnapshot {
    /// Pages read+written since `earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            retries: self.retries - earlier.retries,
        }
    }

    /// Total I/O operations (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Simulated device time for these transfers under a cost model.
    pub fn simulated_ms(&self, model: &DiskCostModel) -> f64 {
        (self.reads as f64 * model.read_us + self.writes as f64 * model.write_us) / 1_000.0
    }
}

/// A per-page transfer cost model, for converting page counts into
/// simulated device time. The experiments run on [`crate::MemDisk`]
/// (transfers are ~free), so wall-clock measures CPU; adding
/// `counts × model` recovers the paper's time curves, where multipass
/// configurations also paid real disk time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskCostModel {
    /// Microseconds per page read.
    pub read_us: f64,
    /// Microseconds per page write.
    pub write_us: f64,
}

impl DiskCostModel {
    /// A 2002-era 7200-rpm UDMA disk doing mostly-sequential 4 KiB
    /// transfers (~25 MB/s effective): ~160 µs per page. The paper's
    /// testbed hardware.
    pub fn vintage_2002() -> Self {
        DiskCostModel {
            read_us: 160.0,
            write_us: 160.0,
        }
    }

    /// A modern NVMe device (~2 GB/s effective): ~2 µs per page.
    pub fn modern_nvme() -> Self {
        DiskCostModel {
            read_us: 2.0,
            write_us: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_deltas() {
        let s = IoStats::new();
        s.record_read();
        s.record_write();
        s.record_write();
        let a = s.snapshot();
        assert_eq!((a.reads, a.writes, a.total()), (1, 2, 3));
        s.record_read();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!((d.reads, d.writes), (1, 0));
    }

    #[test]
    fn simulated_time_from_cost_model() {
        let snap = IoSnapshot {
            reads: 1000,
            writes: 500,
            retries: 0,
        };
        let vintage = snap.simulated_ms(&DiskCostModel::vintage_2002());
        assert!((vintage - 240.0).abs() < 1e-9, "{vintage}");
        let nvme = snap.simulated_ms(&DiskCostModel::modern_nvme());
        assert!((nvme - 3.0).abs() < 1e-9, "{nvme}");
        assert!(vintage > nvme);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_write();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let s = Arc::new(IoStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.reads(), 4000);
    }
}
