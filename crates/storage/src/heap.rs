//! Dense fixed-width-record heap files.
//!
//! Records never span pages (the paper's layout: 40 × 100-byte tuples per
//! 4096-byte page, with 96 bytes of per-page slack). The writer buffers one
//! page; the scanner reads one page at a time, so a full scan of `n`
//! records costs exactly `⌈n / records_per_page⌉` page reads. Every page
//! transfer is fallible: scanner and writer methods surface the disk's
//! typed [`StorageError`] instead of panicking.

use crate::disk::{Disk, FileId};
use crate::error::StorageError;
use crate::PAGE_SIZE;
use std::sync::Arc;

/// A fixed-width-record file on a [`Disk`].
pub struct HeapFile {
    disk: Arc<dyn Disk>,
    file: FileId,
    record_size: usize,
    n_records: u64,
    temp: bool,
}

impl HeapFile {
    /// Create an empty heap file for `record_size`-byte records.
    ///
    /// # Errors
    /// [`StorageError`] when the disk cannot create a file.
    ///
    /// # Panics
    /// Panics if `record_size` is zero or exceeds a page.
    pub fn create(disk: Arc<dyn Disk>, record_size: usize) -> Result<Self, StorageError> {
        assert!(
            record_size > 0 && record_size <= PAGE_SIZE,
            "bad record size"
        );
        let file = disk.create()?;
        Ok(HeapFile {
            disk,
            file,
            record_size,
            n_records: 0,
            temp: false,
        })
    }

    /// Create a heap file that deletes itself on drop (sort runs, skyline
    /// temp files).
    ///
    /// # Errors
    /// [`StorageError`] when the disk cannot create a file.
    pub fn create_temp(disk: Arc<dyn Disk>, record_size: usize) -> Result<Self, StorageError> {
        let mut h = HeapFile::create(disk, record_size)?;
        h.temp = true;
        Ok(h)
    }

    /// Mark the file for deletion when the handle drops.
    pub fn mark_temp(&mut self) {
        self.temp = true;
    }

    /// Keep the file when the handle drops — the complement of
    /// [`HeapFile::mark_temp`]. Output files are built as temp and
    /// persisted only once complete, so an error unwind mid-build cannot
    /// leak pages.
    pub fn persist(&mut self) {
        self.temp = false;
    }

    /// Records per page for this file's record size.
    pub fn records_per_page(&self) -> usize {
        PAGE_SIZE / self.record_size
    }

    /// Number of records in the file.
    pub fn len(&self) -> u64 {
        self.n_records
    }

    /// True when the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Number of pages the records occupy. Computed from the record
    /// count — no disk stat needed.
    pub fn num_pages(&self) -> u64 {
        self.n_records.div_ceil(self.records_per_page() as u64)
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }

    /// Bulk-load records (each exactly `record_size` bytes).
    ///
    /// # Errors
    /// [`StorageError`] when a page transfer fails; already-pushed pages
    /// remain in the file.
    pub fn append_all<'a, I>(&mut self, records: I) -> Result<(), StorageError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut w = self.writer()?;
        for r in records {
            w.push(r)?;
        }
        w.finish()
    }

    /// Page-buffered writer appending at the end of the file.
    ///
    /// # Errors
    /// [`StorageError`] when re-reading a partially filled tail page fails.
    pub fn writer(&mut self) -> Result<HeapWriter<'_>, StorageError> {
        let rpp = self.records_per_page();
        let start_page = self.n_records / rpp as u64;
        let in_page = (self.n_records % rpp as u64) as usize;
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        if in_page > 0 {
            // resume a partially filled tail page
            self.disk.read_page(self.file, start_page, &mut buf)?;
            buf.truncate(in_page * self.record_size);
        }
        Ok(HeapWriter {
            heap: self,
            page_no: start_page,
            buf,
            in_page,
            dirty: false,
        })
    }

    /// Streaming scanner from the first record.
    pub fn scan(&self) -> HeapScanner<'_> {
        HeapScanner {
            heap: self,
            next_record: 0,
            page_no: u64::MAX,
            page: Vec::new(),
        }
    }

    /// Delete the file on disk, consuming the handle.
    pub fn delete(self) {
        self.disk.delete(self.file);
    }

    /// Truncate to zero records, freeing the old pages (the handle stays
    /// valid). Used when a multi-pass algorithm recycles its temp file.
    ///
    /// # Errors
    /// [`StorageError`] when the replacement file cannot be created; the
    /// old pages are already freed by then.
    pub fn truncate(&mut self) -> Result<(), StorageError> {
        self.disk.delete(self.file);
        self.file = self.disk.create()?;
        self.n_records = 0;
        Ok(())
    }

    /// Read all records into memory (tests and small inputs only).
    ///
    /// # Errors
    /// [`StorageError`] when a page read fails.
    pub fn read_all(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        let mut out = Vec::with_capacity(self.n_records as usize);
        let mut scan = self.scan();
        while let Some(r) = scan.next_record()? {
            out.push(r.to_vec());
        }
        Ok(out)
    }
}

impl Drop for HeapFile {
    fn drop(&mut self) {
        if self.temp {
            self.disk.delete(self.file);
        }
    }
}

/// Owning scanner over an `Arc<HeapFile>` — same traversal as
/// [`HeapScanner`] but suitable for operators that outlive local borrows.
pub struct SharedScanner {
    heap: Arc<HeapFile>,
    next_record: u64,
    page_no: u64,
    page: Vec<u8>,
}

impl SharedScanner {
    /// Start a scan of `heap` from the first record.
    pub fn new(heap: Arc<HeapFile>) -> Self {
        SharedScanner {
            heap,
            next_record: 0,
            page_no: u64::MAX,
            page: Vec::new(),
        }
    }

    /// Borrow the next record, or `None` at end of file.
    ///
    /// # Errors
    /// [`StorageError`] when the page read fails.
    pub fn next_record(&mut self) -> Result<Option<&[u8]>, StorageError> {
        if self.next_record >= self.heap.n_records {
            return Ok(None);
        }
        let rpp = self.heap.records_per_page() as u64;
        let page_no = self.next_record / rpp;
        let slot = (self.next_record % rpp) as usize;
        if page_no != self.page_no {
            self.heap
                .disk
                .read_page(self.heap.file, page_no, &mut self.page)?;
            self.page_no = page_no;
        }
        self.next_record += 1;
        let off = slot * self.heap.record_size;
        Ok(Some(&self.page[off..off + self.heap.record_size]))
    }

    /// Restart the scan from the beginning.
    pub fn rewind(&mut self) {
        self.next_record = 0;
        self.page_no = u64::MAX;
    }

    /// Position the scan so the next record returned is `record`
    /// (0-based). Seeking at or past the end makes the scan report
    /// end-of-file. Range scans over a partition of the heap start here.
    pub fn seek(&mut self, record: u64) {
        self.next_record = record.min(self.heap.n_records);
        self.page_no = u64::MAX;
    }

    /// The record index [`SharedScanner::next_record`] will return next.
    pub fn position(&self) -> u64 {
        self.next_record
    }

    /// The scanned heap file.
    pub fn heap(&self) -> &Arc<HeapFile> {
        &self.heap
    }
}

/// Page-buffered appender returned by [`HeapFile::writer`].
///
/// Call [`HeapWriter::finish`] to flush the tail page and observe any
/// write error; dropping the writer flushes best-effort (errors ignored).
pub struct HeapWriter<'a> {
    heap: &'a mut HeapFile,
    page_no: u64,
    buf: Vec<u8>,
    in_page: usize,
    dirty: bool,
}

impl HeapWriter<'_> {
    /// Append one record.
    ///
    /// # Errors
    /// [`StorageError`] when flushing a filled page fails.
    ///
    /// # Panics
    /// Panics if `record.len()` differs from the file's record size.
    pub fn push(&mut self, record: &[u8]) -> Result<(), StorageError> {
        assert_eq!(record.len(), self.heap.record_size, "record size mismatch");
        self.buf.extend_from_slice(record);
        self.in_page += 1;
        self.dirty = true;
        self.heap.n_records += 1;
        if self.in_page == self.heap.records_per_page() {
            self.flush_page()?;
        }
        Ok(())
    }

    fn flush_page(&mut self) -> Result<(), StorageError> {
        if self.dirty {
            self.heap
                .disk
                .write_page(self.heap.file, self.page_no, &self.buf)?;
        }
        if self.in_page == self.heap.records_per_page() {
            self.page_no += 1;
            self.in_page = 0;
            self.buf.clear();
        }
        self.dirty = false;
        Ok(())
    }

    /// Flush the tail page and end the append.
    ///
    /// # Errors
    /// [`StorageError`] when the final page write fails; the writer is
    /// consumed either way and will not re-attempt the flush on drop.
    pub fn finish(mut self) -> Result<(), StorageError> {
        let result = self.flush_page();
        self.dirty = false; // Drop must not re-flush, even after an error
        result
    }
}

impl Drop for HeapWriter<'_> {
    fn drop(&mut self) {
        // Best-effort: a failed flush here has no caller to report to, and
        // the surrounding error unwind is already deleting temp files.
        let _ = self.flush_page();
    }
}

/// Streaming record reader returned by [`HeapFile::scan`].
pub struct HeapScanner<'a> {
    heap: &'a HeapFile,
    next_record: u64,
    page_no: u64,
    page: Vec<u8>,
}

impl HeapScanner<'_> {
    /// Borrow the next record, or `None` at end of file. The slice is valid
    /// until the next call (lending-iterator style — no per-record
    /// allocation).
    ///
    /// # Errors
    /// [`StorageError`] when the page read fails.
    pub fn next_record(&mut self) -> Result<Option<&[u8]>, StorageError> {
        if self.next_record >= self.heap.n_records {
            return Ok(None);
        }
        let rpp = self.heap.records_per_page() as u64;
        let page_no = self.next_record / rpp;
        let slot = (self.next_record % rpp) as usize;
        if page_no != self.page_no {
            self.heap
                .disk
                .read_page(self.heap.file, page_no, &mut self.page)?;
            self.page_no = page_no;
        }
        self.next_record += 1;
        let off = slot * self.heap.record_size;
        Ok(Some(&self.page[off..off + self.heap.record_size]))
    }

    /// Records remaining.
    pub fn remaining(&self) -> u64 {
        self.heap.n_records - self.next_record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn mk_records(n: usize, size: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut r = vec![0u8; size];
                let tag = (i as u64).to_le_bytes();
                let k = tag.len().min(size);
                r[..k].copy_from_slice(&tag[..k]);
                r
            })
            .collect()
    }

    #[test]
    fn write_then_scan_round_trip() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, 100).unwrap();
        let recs = mk_records(95, 100); // 40/page → 3 pages (40+40+15)
        h.append_all(recs.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(h.len(), 95);
        assert_eq!(h.num_pages(), 3);
        assert_eq!(h.read_all().unwrap(), recs);
    }

    #[test]
    fn scan_costs_exactly_ceil_pages_reads() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(Arc::clone(&disk) as Arc<dyn Disk>, 100).unwrap();
        let recs = mk_records(1000, 100); // 25 pages
        h.append_all(recs.iter().map(Vec::as_slice)).unwrap();
        let before = disk.stats().snapshot();
        let mut scan = h.scan();
        let mut n = 0;
        while scan.next_record().unwrap().is_some() {
            n += 1;
        }
        let delta = disk.stats().snapshot().since(&before);
        assert_eq!(n, 1000);
        assert_eq!(delta.reads, 25);
        assert_eq!(delta.writes, 0);
    }

    #[test]
    fn resumed_writer_continues_tail_page() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, 100).unwrap();
        let recs = mk_records(50, 100);
        h.append_all(recs[..45].iter().map(Vec::as_slice)).unwrap();
        h.append_all(recs[45..].iter().map(Vec::as_slice)).unwrap();
        assert_eq!(h.read_all().unwrap(), recs);
        assert_eq!(h.num_pages(), 2); // 50 records at 40/page
    }

    #[test]
    fn empty_file_scans_empty() {
        let disk = MemDisk::shared();
        let h = HeapFile::create(disk, 64).unwrap();
        assert!(h.is_empty());
        assert!(h.scan().next_record().unwrap().is_none());
    }

    #[test]
    fn record_size_equal_to_page_is_allowed() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, PAGE_SIZE).unwrap();
        let recs = mk_records(3, PAGE_SIZE);
        h.append_all(recs.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(h.records_per_page(), 1);
        assert_eq!(h.read_all().unwrap(), recs);
    }

    #[test]
    #[should_panic(expected = "record size mismatch")]
    fn wrong_record_size_rejected() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, 10).unwrap();
        let mut w = h.writer().unwrap();
        let _ = w.push(&[0u8; 9]);
    }

    #[test]
    fn temp_file_deleted_on_drop() {
        let disk = MemDisk::shared();
        {
            let mut h = HeapFile::create_temp(Arc::clone(&disk) as Arc<dyn Disk>, 100).unwrap();
            h.append_all(mk_records(80, 100).iter().map(Vec::as_slice))
                .unwrap();
            assert!(disk.allocated_pages() > 0);
        }
        assert_eq!(disk.allocated_pages(), 0);
    }

    #[test]
    fn persisted_temp_file_survives_drop() {
        let disk = MemDisk::shared();
        {
            let mut h = HeapFile::create_temp(Arc::clone(&disk) as Arc<dyn Disk>, 100).unwrap();
            h.append_all(mk_records(80, 100).iter().map(Vec::as_slice))
                .unwrap();
            h.persist();
        }
        assert!(disk.allocated_pages() > 0, "persisted file must remain");
    }

    #[test]
    fn truncate_frees_pages_and_resets() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create_temp(Arc::clone(&disk) as Arc<dyn Disk>, 100).unwrap();
        h.append_all(mk_records(80, 100).iter().map(Vec::as_slice))
            .unwrap();
        h.truncate().unwrap();
        assert_eq!(disk.allocated_pages(), 0);
        assert!(h.is_empty());
        h.append_all(mk_records(5, 100).iter().map(Vec::as_slice))
            .unwrap();
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn shared_scanner_matches_borrowing_scanner() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, 100).unwrap();
        let recs = mk_records(123, 100);
        h.append_all(recs.iter().map(Vec::as_slice)).unwrap();
        let h = Arc::new(h);
        let mut s = SharedScanner::new(Arc::clone(&h));
        let mut got = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            got.push(r.to_vec());
        }
        assert_eq!(got, recs);
        s.rewind();
        assert_eq!(s.next_record().unwrap().unwrap(), recs[0].as_slice());
    }

    #[test]
    fn round_trip_any_shape() {
        skyline_testkit::cases(64, 0x4EA9_0001, |rng| {
            let n = rng.usize_below(300);
            let record_size = 1 + rng.usize_below(199);
            let split = rng.usize_below(300).min(n);
            let disk = MemDisk::shared();
            let mut h = HeapFile::create(disk, record_size).unwrap();
            let recs = mk_records(n, record_size);
            h.append_all(recs[..split].iter().map(Vec::as_slice))
                .unwrap();
            h.append_all(recs[split..].iter().map(Vec::as_slice))
                .unwrap();
            assert_eq!(h.read_all().unwrap(), recs);
            let rpp = PAGE_SIZE / record_size;
            assert_eq!(h.num_pages(), n.div_ceil(rpp) as u64);
        });
    }
}
