//! Model-checked concurrency tests for the [`BufferPool`] ledger.
//!
//! Every mutation of the ledger happens under its single mutex, so each
//! `reserve`/`drop` is one atomic step; exploring every interleaving of
//! short per-thread programs with `skyline_testkit::interleave` covers
//! the full linearization space of a real concurrent run. Invariants
//! checked after *every* step: `used ≤ total`, `used` equals the sum of
//! live leases, `peak` is monotone and bounds `used`. Quiescent state:
//! `used == 0`.

use skyline_storage::{BufferLease, BufferPool};
use skyline_testkit::interleave::{interleavings, schedule_count};

/// One logical thread's program: reserve `request` pages (step 0), then
/// release the lease (step 1). A failed reservation makes the release a
/// no-op.
struct Program {
    request: usize,
    lease: Option<BufferLease>,
    reserve_failed: bool,
}

impl Program {
    fn new(request: usize) -> Self {
        Program {
            request,
            lease: None,
            reserve_failed: false,
        }
    }

    fn step(&mut self, op: usize, pool: &BufferPool) {
        match op {
            0 => match pool.reserve(self.request) {
                Ok(l) => self.lease = Some(l),
                Err(_) => self.reserve_failed = true,
            },
            1 => {
                self.lease = None; // drop releases the pages
            }
            _ => unreachable!("programs have two ops"),
        }
    }

    fn live_pages(&self) -> usize {
        self.lease.as_ref().map_or(0, BufferLease::pages)
    }
}

/// Replay one schedule against a fresh pool, asserting the ledger
/// invariants after every step.
fn replay(total: usize, requests: &[usize], schedule: &[usize]) {
    let pool = BufferPool::new(total);
    let mut programs: Vec<Program> = requests.iter().map(|&r| Program::new(r)).collect();
    let mut next_op = vec![0usize; requests.len()];
    let mut last_peak = 0usize;
    for &t in schedule {
        let op = next_op[t];
        next_op[t] += 1;
        programs[t].step(op, &pool);

        let live: usize = programs.iter().map(Program::live_pages).sum();
        assert_eq!(pool.used(), live, "ledger disagrees with live leases");
        assert!(pool.used() <= pool.total(), "over-reservation");
        assert_eq!(pool.available(), pool.total() - pool.used());
        assert!(pool.peak() >= pool.used(), "peak below current usage");
        assert!(pool.peak() >= last_peak, "peak regressed");
        last_peak = pool.peak();
    }
    assert_eq!(pool.used(), 0, "quiescent pool still has pages reserved");
    assert_eq!(pool.available(), total);
    // anything that successfully reserved pushed the peak at least that high
    let max_granted = programs
        .iter()
        .filter(|p| !p.reserve_failed)
        .map(|p| p.request)
        .max()
        .unwrap_or(0);
    assert!(pool.peak() >= max_granted);
    assert!(pool.peak() <= total);
}

#[test]
fn every_interleaving_of_three_contenders_keeps_the_ledger_consistent() {
    // 3 threads × (reserve, drop) over a pool both can and cannot
    // satisfy at once: 6!/(2!2!2!) = 90 schedules; some reservations
    // fail by design (2+3+4 > 6), which must leave no trace.
    let requests = [2usize, 3, 4];
    let shape = [2usize, 2, 2];
    assert_eq!(schedule_count(&shape), 90);
    let explored = interleavings(&shape, |schedule| replay(6, &requests, schedule));
    assert_eq!(explored, 90);
}

#[test]
fn every_interleaving_with_an_always_satisfiable_pool_never_fails_a_reserve() {
    let requests = [1usize, 2, 3];
    interleavings(&[2, 2, 2], |schedule| {
        let pool = BufferPool::new(6);
        let mut programs: Vec<Program> = requests.iter().map(|&r| Program::new(r)).collect();
        let mut next_op = vec![0usize; requests.len()];
        for &t in schedule {
            let op = next_op[t];
            next_op[t] += 1;
            programs[t].step(op, &pool);
        }
        assert!(
            programs.iter().all(|p| !p.reserve_failed),
            "a reservation failed although Σ requests == total"
        );
        assert_eq!(pool.used(), 0);
    });
}

#[test]
fn zero_page_leases_are_invisible_in_every_interleaving() {
    interleavings(&[2, 2], |schedule| replay(4, &[0, 4], schedule));
}

/// Real threads hammering one pool: the model test's invariants must
/// also hold under genuine parallelism (this is what the TSan CI job
/// runs under instrumentation).
#[test]
fn parallel_stress_returns_to_quiescence() {
    let pool = BufferPool::new(16);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let pool = pool.clone();
            s.spawn(move || {
                for round in 0..200usize {
                    let want = (t + round) % 5;
                    if let Ok(lease) = pool.reserve(want) {
                        assert_eq!(lease.pages(), want);
                        assert!(pool.used() <= pool.total());
                        drop(lease);
                    }
                }
            });
        }
    });
    assert_eq!(pool.used(), 0, "stress left pages reserved");
    assert!(pool.peak() <= pool.total());
}
