//! Exhaustive interleaving exploration — a `loom` substitute.
//!
//! The workspace's concurrent objects — the `BufferPool` ledger, the
//! `CancelToken` flag — guard every mutation with one `Mutex` or a
//! single atomic, so any real concurrent execution is equivalent to
//! *some* sequential merge of the per-thread operation sequences
//! (each operation is atomic, hence linearizable). Model tests exploit
//! that: describe each logical thread as a short list of operations,
//! and [`interleavings`] replays every distinct merge order, checking
//! invariants after each step. The schedule space is the full
//! linearization space, so a passing model test rules out every
//! ordering-dependent bug that `loom` would find for these objects —
//! without loom's instrumented types, which the offline container
//! cannot add as a dependency.
//!
//! This is *not* a memory-model checker: it cannot see torn reads or
//! non-`SeqCst` reordering inside one operation. The Miri and
//! ThreadSanitizer CI jobs cover that axis; see `DESIGN.md` §10.
//!
//! ```
//! use skyline_testkit::interleave::interleavings;
//! let mut seen = 0usize;
//! // two threads of two ops each → C(4,2) = 6 merge orders
//! let n = interleavings(&[2, 2], |schedule| {
//!     assert_eq!(schedule.len(), 4);
//!     seen += 1;
//! });
//! assert_eq!((n, seen), (6, 6));
//! ```

/// Invoke `f` once per distinct interleaving of `ops_per_thread`
/// operation sequences; returns how many schedules were explored.
///
/// A schedule is a slice of thread indices: thread `t` appears exactly
/// `ops_per_thread[t]` times, and its `i`-th appearance means "thread
/// `t` performs its `i`-th operation now". The caller replays the
/// schedule against a fresh instance of the shared object and asserts
/// invariants between steps.
///
/// The number of schedules is the multinomial coefficient of the op
/// counts — `[3, 3]` is 20, `[2, 2, 2]` is 90, `[4, 4]` is 70. Keep
/// per-thread sequences short; exhaustiveness, not volume, is the
/// point.
pub fn interleavings<F>(ops_per_thread: &[usize], mut f: F) -> usize
where
    F: FnMut(&[usize]),
{
    let mut remaining: Vec<usize> = ops_per_thread.to_vec();
    let total: usize = remaining.iter().sum();
    let mut schedule = Vec::with_capacity(total);
    let mut count = 0usize;
    explore(&mut remaining, &mut schedule, total, &mut f, &mut count);
    count
}

fn explore<F>(
    remaining: &mut [usize],
    schedule: &mut Vec<usize>,
    total: usize,
    f: &mut F,
    count: &mut usize,
) where
    F: FnMut(&[usize]),
{
    if schedule.len() == total {
        *count += 1;
        f(schedule);
        return;
    }
    for t in 0..remaining.len() {
        if remaining[t] == 0 {
            continue;
        }
        remaining[t] -= 1;
        schedule.push(t);
        explore(remaining, schedule, total, f, count);
        schedule.pop();
        remaining[t] += 1;
    }
}

/// The number of distinct schedules [`interleavings`] will explore,
/// without running them: the multinomial `(Σnᵢ)! / Πnᵢ!`.
pub fn schedule_count(ops_per_thread: &[usize]) -> usize {
    let mut placed = 0usize;
    let mut count = 1usize;
    for &n in ops_per_thread {
        // choose which of the next n slots among placed+n go to this thread
        for i in 1..=n {
            count = count * (placed + i) / i;
        }
        placed += n;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two_yields_six_schedules() {
        let mut schedules = Vec::new();
        let n = interleavings(&[2, 2], |s| schedules.push(s.to_vec()));
        assert_eq!(n, 6);
        assert_eq!(schedules.len(), 6);
        schedules.sort();
        schedules.dedup();
        assert_eq!(schedules.len(), 6, "schedules are distinct");
        for s in &schedules {
            assert_eq!(s.iter().filter(|&&t| t == 0).count(), 2);
            assert_eq!(s.iter().filter(|&&t| t == 1).count(), 2);
        }
    }

    #[test]
    fn three_singleton_threads_are_permutations() {
        let n = interleavings(&[1, 1, 1], |s| {
            let mut sorted = s.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        });
        assert_eq!(n, 6);
    }

    #[test]
    fn empty_threads_contribute_nothing() {
        let mut ran = 0;
        let n = interleavings(&[0, 2, 0], |s| {
            assert_eq!(s, [1, 1]);
            ran += 1;
        });
        assert_eq!((n, ran), (1, 1));
    }

    #[test]
    fn schedule_count_matches_exploration() {
        for shape in [&[2usize, 2][..], &[3, 3], &[2, 2, 2], &[1, 4], &[0]] {
            let explored = interleavings(shape, |_| {});
            assert_eq!(
                schedule_count(shape),
                explored,
                "closed form disagrees for {shape:?}"
            );
        }
    }

    #[test]
    fn schedules_preserve_per_thread_program_order() {
        // thread 0's ops appear in order by construction: its k-th
        // appearance IS its k-th op. Verify appearances count up.
        interleavings(&[3, 2], |s| {
            let firsts: Vec<usize> = s
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == 0)
                .map(|(i, _)| i)
                .collect();
            assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        });
    }
}
