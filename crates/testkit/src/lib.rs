#![warn(missing_docs)]

//! Deterministic randomized-test harness for the skyline workspace.
//!
//! [`cases`] runs a property closure over `n` independently seeded
//! [`Rng`]s derived from a base seed. Every failure message names the
//! case's derived seed, so a failing case reproduces in isolation with
//! `replay(seed, f)` — no shrinking, no persistence files, no external
//! dependencies, and fully offline.
//!
//! ```
//! skyline_testkit::cases(32, 0xC0FFEE, |rng| {
//!     let x = rng.i32_inclusive(-100, 100);
//!     assert_eq!(x.abs() * x.signum(), x, "seeded case property");
//! });
//! ```

pub mod interleave;

pub use skyline_relation::rng::Rng;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Derive the per-case seed used by [`cases`] for case `i` of `base_seed`.
///
/// Exposed so a failing case (reported as `case i, seed 0x…`) can be
/// replayed directly via [`replay`].
pub fn case_seed(base_seed: u64, i: usize) -> u64 {
    // One splitmix64 step keeps consecutive case seeds decorrelated.
    let mut z = base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `f` once per case with a case-specific deterministic [`Rng`].
///
/// On panic, re-raises the panic after printing which case (index and
/// derived seed) failed.
pub fn cases<F>(n: usize, base_seed: u64, mut f: F)
where
    F: FnMut(&mut Rng),
{
    for i in 0..n {
        let seed = case_seed(base_seed, i);
        let mut rng = Rng::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!(
                "testkit: case {i}/{n} failed (derived seed {seed:#018x}); \
                 replay with skyline_testkit::replay({seed:#x}, ..)"
            );
            resume_unwind(payload);
        }
    }
}

/// Re-run a single property case from a derived seed printed by [`cases`].
pub fn replay<F>(seed: u64, mut f: F)
where
    F: FnMut(&mut Rng),
{
    let mut rng = Rng::seed_from_u64(seed);
    f(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let mut first = Vec::new();
        cases(8, 99, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        cases(8, 99, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "cases use distinct seeds");
    }

    #[test]
    fn replay_matches_case_seed() {
        let mut from_cases = Vec::new();
        cases(3, 7, |rng| from_cases.push(rng.next_u64()));
        for (i, &want) in from_cases.iter().enumerate() {
            replay(case_seed(7, i), |rng| assert_eq!(rng.next_u64(), want));
        }
    }

    #[test]
    fn failing_case_propagates_panic() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            cases(4, 1, |rng| {
                let _ = rng.next_u64();
                panic!("expected failure");
            })
        }));
        assert!(err.is_err());
    }
}
