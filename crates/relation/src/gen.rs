//! Seeded workload generators.
//!
//! [`WorkloadSpec::paper`] reproduces the paper's evaluation dataset:
//! `n` 100-byte records whose ten i32 attributes are uniform over the full
//! `i32` range and pairwise independent (§5: "the data was randomly
//! generated, each integer has a value from -MAXINT to MAXINT, the values
//! are uniformly distributed, and the columns are pairwise independent").
//!
//! The correlated / anti-correlated distributions follow the skyline
//! literature (Börzsönyi et al., ICDE 2001): correlated data has tiny
//! skylines, anti-correlated data has huge ones — the stress case the
//! paper's §6 calls out ("with 100% anti-correlation, the skyline is the
//! table itself").

use crate::record::RecordLayout;
use crate::rng::Rng;

/// Attribute-value distribution across the record's dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Every attribute independently uniform over the domain. The paper's
    /// evaluation distribution.
    UniformIndependent,
    /// All attributes cluster around a common per-tuple base value;
    /// `jitter` ∈ (0,1] is the relative spread. Produces tiny skylines.
    Correlated {
        /// Relative spread around the shared base value.
        jitter: f64,
    },
    /// Tuples lie near the hyperplane `Σ xᵢ ≈ d/2` so that being good in
    /// one dimension means being bad in others. Produces huge skylines.
    AntiCorrelated {
        /// Relative off-plane spread.
        jitter: f64,
    },
    /// Tuples drawn around `clusters` random centroids with the given
    /// relative spread (models clustered-index-ordered real data).
    Clustered {
        /// Number of centroids.
        clusters: usize,
        /// Relative spread around each centroid.
        spread: f64,
    },
    /// Heavy-tailed marginals: each attribute is `u^exponent` for
    /// `u ~ U(0,1)`, independently — most mass near the low end of the
    /// domain. Stresses the uniformity assumption behind min/max
    /// normalization (paper §4.3); see `skyline-core`'s histogram
    /// normalizer.
    Skewed {
        /// Tail exponent (> 1 skews low; 4 is a strong skew).
        exponent: f64,
    },
}

/// Complete description of a synthetic dataset. Generation is a pure
/// function of the spec (and in particular of `seed`).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of records.
    pub n: usize,
    /// Record layout.
    pub layout: RecordLayout,
    /// Value distribution.
    pub dist: Distribution,
    /// Inclusive attribute domain.
    pub domain: (i32, i32),
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's million-tuple dataset (scaled to `n`): PAPER layout,
    /// uniform independent attributes over the full i32 range.
    pub fn paper(n: usize, seed: u64) -> Self {
        WorkloadSpec {
            n,
            layout: RecordLayout::PAPER,
            dist: Distribution::UniformIndependent,
            domain: (i32::MIN + 1, i32::MAX), // symmetric ±MAXINT as in §5
            seed,
        }
    }

    /// The paper's dimensional-reduction dataset: attribute domains 0–9.
    pub fn small_domain(n: usize, seed: u64) -> Self {
        WorkloadSpec {
            domain: (0, 9),
            ..WorkloadSpec::paper(n, seed)
        }
    }

    /// Generate the encoded records.
    pub fn generate(&self) -> Vec<Vec<u8>> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let (lo, hi) = self.domain;
        assert!(lo <= hi, "empty domain");
        let width = (i64::from(hi) - i64::from(lo)) as f64 + 1.0;
        let d = self.layout.dims;

        // Map a unit-interval coordinate to the integer domain.
        let to_domain = |x: f64| -> i32 {
            let x = x.clamp(0.0, 1.0 - f64::EPSILON);
            (i64::from(lo) + (x * width) as i64).min(i64::from(hi)) as i32
        };

        let centroids: Vec<Vec<f64>> = match self.dist {
            Distribution::Clustered { clusters, .. } => (0..clusters.max(1))
                .map(|_| (0..d).map(|_| rng.f64()).collect())
                .collect(),
            _ => Vec::new(),
        };

        let mut attrs = vec![0i32; d];
        let mut out = Vec::with_capacity(self.n);
        let mut payload = vec![0u8; self.layout.payload];
        for _ in 0..self.n {
            match self.dist {
                Distribution::UniformIndependent => {
                    for a in attrs.iter_mut() {
                        *a = rng.i32_inclusive(lo, hi);
                    }
                }
                Distribution::Correlated { jitter } => {
                    let base = rng.f64();
                    for a in attrs.iter_mut() {
                        let x = base + jitter * (rng.f64() - 0.5);
                        *a = to_domain(x);
                    }
                }
                Distribution::AntiCorrelated { jitter } => {
                    // Distribute a fixed budget (≈ d/2) across dimensions:
                    // exponential weights normalized onto the plane, plus
                    // a small off-plane jitter.
                    let budget = 0.5 * d as f64;
                    let mut w: Vec<f64> = (0..d).map(|_| -(1.0 - rng.f64()).ln()).collect();
                    let s: f64 = w.iter().sum();
                    for wi in w.iter_mut() {
                        *wi = *wi / s * budget + jitter * (rng.f64() - 0.5);
                    }
                    for (a, wi) in attrs.iter_mut().zip(&w) {
                        *a = to_domain(*wi);
                    }
                }
                Distribution::Clustered { spread, .. } => {
                    let c = &centroids[rng.usize_below(centroids.len())];
                    for (a, ci) in attrs.iter_mut().zip(c) {
                        let x = ci + spread * (rng.f64() - 0.5);
                        *a = to_domain(x);
                    }
                }
                Distribution::Skewed { exponent } => {
                    for a in attrs.iter_mut() {
                        *a = to_domain(rng.f64().powf(exponent));
                    }
                }
            }
            for b in payload.iter_mut() {
                *b = rng.u8_inclusive(b'a', b'z');
            }
            out.push(self.layout.encode(&attrs, &payload));
        }
        out
    }

    /// Generate only the first-`d`-attribute key matrix (row-major,
    /// `n × d`, flattened) without materializing records. Same values as
    /// [`WorkloadSpec::generate`] followed by key extraction.
    pub fn generate_keys(&self, d: usize) -> Vec<f64> {
        assert!(d <= self.layout.dims);
        let recs = self.generate();
        let mut keys = Vec::with_capacity(self.n * d);
        for r in &recs {
            for i in 0..d {
                keys.push(f64::from(self.layout.attr(r, i)));
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = WorkloadSpec::paper(100, 7).generate();
        let b = WorkloadSpec::paper(100, 7).generate();
        assert_eq!(a, b);
        let c = WorkloadSpec::paper(100, 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn record_sizes_match_layout() {
        let recs = WorkloadSpec::paper(10, 1).generate();
        assert!(recs.iter().all(|r| r.len() == 100));
    }

    #[test]
    fn small_domain_respected() {
        let spec = WorkloadSpec::small_domain(500, 3);
        for r in spec.generate() {
            for a in spec.layout.decode_attrs(&r) {
                assert!((0..=9).contains(&a), "attr {a} outside 0..=9");
            }
        }
    }

    #[test]
    fn correlated_attrs_close_together() {
        let spec = WorkloadSpec {
            dist: Distribution::Correlated { jitter: 0.05 },
            domain: (0, 999),
            ..WorkloadSpec::paper(200, 11)
        };
        for r in spec.generate() {
            let attrs = spec.layout.decode_attrs(&r);
            let min = *attrs.iter().min().unwrap();
            let max = *attrs.iter().max().unwrap();
            assert!(max - min <= 100, "spread {} too wide", max - min);
        }
    }

    #[test]
    fn anticorrelated_sums_near_budget() {
        let d = 4;
        let spec = WorkloadSpec {
            dist: Distribution::AntiCorrelated { jitter: 0.0 },
            domain: (0, 999),
            layout: RecordLayout::new(d, 0),
            ..WorkloadSpec::paper(300, 5)
        };
        for r in spec.generate() {
            let sum: i64 = spec
                .layout
                .decode_attrs(&r)
                .iter()
                .map(|&a| i64::from(a))
                .sum();
            // budget is d/2 of the unit cube → about 2000 here; allow slack
            // for clamping of occasionally-large exponential weights.
            assert!(sum <= 2_300, "sum {sum} too large");
        }
    }

    #[test]
    fn skewed_mass_concentrates_low() {
        let spec = WorkloadSpec {
            dist: Distribution::Skewed { exponent: 4.0 },
            domain: (0, 999),
            ..WorkloadSpec::paper(2_000, 19)
        };
        let recs = spec.generate();
        let below_100 = recs.iter().filter(|r| spec.layout.attr(r, 0) < 100).count();
        // u^4 < 0.1 ⟺ u < 0.56: well over half the mass in the lowest 10%
        assert!(below_100 > recs.len() / 2, "only {below_100} below 100");
    }

    #[test]
    fn clustered_generates_within_domain() {
        let spec = WorkloadSpec {
            dist: Distribution::Clustered {
                clusters: 3,
                spread: 0.1,
            },
            domain: (-50, 50),
            ..WorkloadSpec::paper(200, 13)
        };
        for r in spec.generate() {
            for a in spec.layout.decode_attrs(&r) {
                assert!((-50..=50).contains(&a));
            }
        }
    }

    #[test]
    fn generate_keys_matches_records() {
        let spec = WorkloadSpec::paper(50, 21);
        let keys = spec.generate_keys(3);
        let recs = spec.generate();
        assert_eq!(keys.len(), 150);
        for (i, r) in recs.iter().enumerate() {
            for k in 0..3 {
                assert_eq!(keys[i * 3 + k], f64::from(spec.layout.attr(r, k)));
            }
        }
    }
}
