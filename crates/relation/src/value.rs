//! Dynamically typed cell values for the row-oriented [`crate::Table`] tier.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
///
/// Skyline criteria must come from domains with a natural total order
/// (integers, floats, dates — represented here as days since an epoch).
/// Strings participate only as carried payload or `DIFF` grouping keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL. Never comparable for skyline purposes.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float. NaN is rejected at construction via [`Value::float`].
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Date as days since 1970-01-01 (totally ordered, usable as criterion).
    Date(i64),
}

impl Value {
    /// Construct a float value, rejecting NaN (which would break the total
    /// order skyline criteria require).
    pub fn float(f: f64) -> Result<Self, ValueError> {
        if f.is_nan() {
            Err(ValueError::NanFloat)
        } else {
            Ok(Value::Float(f))
        }
    }

    /// Numeric view of the value, if it has one. Used when extracting
    /// skyline keys.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) | Value::Date(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// Integer view (exact), if it has one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) | Value::Date(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if it has one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style comparison: `Null` compares less than everything, numerics
    /// compare numerically across `Int`/`Float`/`Date`, strings compare
    /// lexicographically. Cross-kind (string vs numeric) comparisons return
    /// `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "date({d})"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Errors constructing or converting values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// Attempted to build a `Float` from NaN.
    NanFloat,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::NanFloat => write!(f, "NaN is not a valid Float value"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_kind_comparison() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(2.0).sql_cmp(&Value::Int(2)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Date(10).sql_cmp(&Value::Int(9)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(-100)), Some(Ordering::Less));
        assert_eq!(Value::Int(0).sql_cmp(&Value::Null), Some(Ordering::Greater));
        assert_eq!(Value::Null.sql_cmp(&Value::Null), Some(Ordering::Equal));
    }

    #[test]
    fn string_vs_numeric_is_incomparable() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn nan_rejected() {
        assert_eq!(Value::float(f64::NAN), Err(ValueError::NanFloat));
        assert!(Value::float(1.5).is_ok());
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_round_trips_readably() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
