//! Column and schema definitions.

use std::fmt;

/// Type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer (encoded as i32 in fixed-width records).
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string (fixed-width padded in records).
    Str,
    /// Date (days since epoch).
    Date,
}

impl ColumnType {
    /// Whether values of this type have the natural total order skyline
    /// criteria require.
    pub fn is_ordered_numeric(self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float | ColumnType::Date)
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "STRING",
            ColumnType::Date => "DATE",
        };
        write!(f, "{s}")
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name; matched case-insensitively by [`Schema::index_of`].
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema; column names must be unique (case-insensitive).
    pub fn new(columns: Vec<Column>) -> Result<Self, SchemaError> {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name.eq_ignore_ascii_case(&b.name) {
                    return Err(SchemaError::DuplicateColumn(a.name.clone()));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// Shorthand for building from `(name, type)` pairs. Panics on
    /// duplicates; intended for statically known schemas in tests/examples.
    pub fn of(cols: &[(&str, ColumnType)]) -> Self {
        Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("duplicate column in static schema")
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Case-insensitive lookup of a column's position.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column at a position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Project a subset of columns (by index) into a new schema.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

/// Errors constructing schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two columns share a (case-insensitive) name.
    DuplicateColumn(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateColumn(name) => {
                write!(f, "duplicate column name: {name}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = Schema::of(&[("Price", ColumnType::Int), ("name", ColumnType::Str)]);
        assert_eq!(s.index_of("price"), Some(0));
        assert_eq!(s.index_of("NAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("A", ColumnType::Float),
        ])
        .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateColumn("a".into()));
    }

    #[test]
    fn projection_preserves_order() {
        let s = Schema::of(&[
            ("a", ColumnType::Int),
            ("b", ColumnType::Str),
            ("c", ColumnType::Float),
        ]);
        let p = s.project(&[2, 0]);
        assert_eq!(p.column(0).name, "c");
        assert_eq!(p.column(1).name, "a");
    }

    #[test]
    fn display_formats() {
        let s = Schema::of(&[("a", ColumnType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }
}
