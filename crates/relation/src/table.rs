//! In-memory, schema'd relation.

use crate::record::RecordLayout;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A schema plus rows. The friendly relation used by the query layer,
/// samples, and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from schema and rows, checking arity.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Result<Self, TableError> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != schema.len() {
                return Err(TableError::ArityMismatch {
                    row: i,
                    expected: schema.len(),
                    got: r.len(),
                });
            }
        }
        Ok(Table { schema, rows })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one row, checking arity.
    pub fn push(&mut self, row: Tuple) -> Result<(), TableError> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                row: self.rows.len(),
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Extract an `n × k` matrix of `f64` keys for the named columns.
    /// Fails if a column is missing or a value is non-numeric.
    pub fn numeric_matrix(&self, columns: &[&str]) -> Result<Vec<Vec<f64>>, TableError> {
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .index_of(c)
                    .ok_or_else(|| TableError::NoSuchColumn((*c).to_owned()))
            })
            .collect::<Result<_, _>>()?;
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| r.numeric_key(&idx).ok_or(TableError::NonNumeric { row: i }))
            .collect()
    }

    /// Encode rows into fixed-width records: the integer columns listed in
    /// `key_columns` become the record's i32 attributes (in order), and the
    /// row index is written into the payload so records can be traced back.
    ///
    /// Values outside `i32` range are clamped; this is only used to push
    /// friendly tables down into the paged engine.
    pub fn to_records(
        &self,
        layout: RecordLayout,
        key_columns: &[&str],
    ) -> Result<Vec<Vec<u8>>, TableError> {
        assert!(
            key_columns.len() <= layout.dims,
            "layout has {} dims but {} key columns requested",
            layout.dims,
            key_columns.len()
        );
        let idx: Vec<usize> = key_columns
            .iter()
            .map(|c| {
                self.schema
                    .index_of(c)
                    .ok_or_else(|| TableError::NoSuchColumn((*c).to_owned()))
            })
            .collect::<Result<_, _>>()?;
        let mut out = Vec::with_capacity(self.rows.len());
        for (rowno, row) in self.rows.iter().enumerate() {
            let mut attrs = vec![0i32; layout.dims];
            for (k, &col) in idx.iter().enumerate() {
                let v = row
                    .get(col)
                    .as_f64()
                    .ok_or(TableError::NonNumeric { row: rowno })?;
                attrs[k] = v.clamp(i32::MIN as f64, i32::MAX as f64) as i32;
            }
            let mut payload = vec![0u8; layout.payload];
            let tag = (rowno as u64).to_le_bytes();
            let n = tag.len().min(layout.payload);
            payload[..n].copy_from_slice(&tag[..n]);
            out.push(layout.encode(&attrs, &payload));
        }
        Ok(out)
    }

    /// Render as an aligned ASCII table (for examples and the query shell).
    pub fn render(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(Value::to_string).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let line = |s: &mut String, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                s.push_str("| ");
                s.push_str(c);
                s.push_str(&" ".repeat(widths[i] - c.len() + 1));
            }
            s.push_str("|\n");
        };
        line(&mut s, &headers);
        for w in &widths {
            s.push('|');
            s.push_str(&"-".repeat(w + 2));
        }
        s.push_str("|\n");
        for row in &cells {
            line(&mut s, row);
        }
        s
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Errors operating on tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Row arity differs from the schema's.
    ArityMismatch {
        /// Row index.
        row: usize,
        /// Schema arity.
        expected: usize,
        /// Row arity.
        got: usize,
    },
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// A value needed as a numeric key was non-numeric or NULL.
    NonNumeric {
        /// Row index.
        row: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { row, expected, got } => {
                write!(f, "row {row}: expected {expected} values, got {got}")
            }
            TableError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            TableError::NonNumeric { row } => {
                write!(f, "row {row}: non-numeric value in skyline column")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::tuple;

    fn small() -> Table {
        let schema = Schema::of(&[
            ("name", ColumnType::Str),
            ("x", ColumnType::Int),
            ("y", ColumnType::Float),
        ]);
        Table::new(schema, vec![tuple!["a", 1, 2.0], tuple!["b", 3, 4.0]]).unwrap()
    }

    #[test]
    fn arity_checked() {
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let err = Table::new(schema, vec![tuple![1, 2]]).unwrap_err();
        assert!(matches!(err, TableError::ArityMismatch { .. }));
    }

    #[test]
    fn numeric_matrix_extraction() {
        let t = small();
        assert_eq!(
            t.numeric_matrix(&["x", "y"]).unwrap(),
            vec![vec![1.0, 2.0], vec![3.0, 4.0]]
        );
        assert!(matches!(
            t.numeric_matrix(&["name"]),
            Err(TableError::NonNumeric { row: 0 })
        ));
        assert!(matches!(
            t.numeric_matrix(&["zzz"]),
            Err(TableError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn to_records_round_trip_keys() {
        let t = small();
        let layout = RecordLayout::new(2, 8);
        let recs = t.to_records(layout, &["x", "y"]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(layout.decode_attrs(&recs[1]), vec![3, 4]);
        // payload carries the row index
        let payload = layout.payload_of(&recs[1]);
        assert_eq!(u64::from_le_bytes(payload[..8].try_into().unwrap()), 1);
    }

    #[test]
    fn render_contains_headers_and_cells() {
        let r = small().render();
        assert!(r.contains("name"));
        assert!(r.contains("4"));
    }
}
