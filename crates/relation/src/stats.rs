//! Column statistics and normalization.
//!
//! The entropy scoring function of the paper (§4.3) needs attribute values
//! normalized into the open unit interval `(0, 1)`. "Relational systems
//! usually keep statistics on tables, so it should be possible to do this
//! without accessing the data" — here the statistics are min/max per
//! column, computed once per relation (or supplied externally).

use crate::record::RecordLayout;

/// Min/max/count summary of one numeric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Number of observed (non-null) values.
    pub count: u64,
}

impl ColumnStats {
    /// Stats of an empty column.
    pub fn empty() -> Self {
        ColumnStats {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Fold one value in.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Merge another column's stats in (for partitioned scans).
    pub fn merge(&mut self, other: &ColumnStats) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Normalize a value into the **open** interval `(0, 1)`.
    ///
    /// For a domain of width `w = max − min` we map
    /// `v ↦ (v − min + ½) / (w + 1)`, which stays strictly inside `(0,1)`
    /// for any `v ∈ [min, max]` — exactly what the paper's entropy function
    /// `Σ ln(v̄ᵢ + 1)` assumes. A degenerate (constant) column maps to ½.
    #[inline]
    pub fn normalize(&self, v: f64) -> f64 {
        let w = self.max - self.min;
        if w.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return 0.5;
        }
        (v - self.min + 0.5) / (w + 1.0)
    }
}

impl Default for ColumnStats {
    fn default() -> Self {
        ColumnStats::empty()
    }
}

/// Per-dimension statistics for a record relation.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute stats over the first `d` attributes of encoded records.
    pub fn from_records<'a, I>(layout: RecordLayout, d: usize, records: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        assert!(d <= layout.dims);
        let mut columns = vec![ColumnStats::empty(); d];
        for r in records {
            for (i, c) in columns.iter_mut().enumerate() {
                c.observe(f64::from(layout.attr(r, i)));
            }
        }
        TableStats { columns }
    }

    /// Compute stats over a flat row-major `n × d` key matrix.
    pub fn from_keys(keys: &[f64], d: usize) -> Self {
        assert!(d > 0 && keys.len().is_multiple_of(d));
        let mut columns = vec![ColumnStats::empty(); d];
        for row in keys.chunks_exact(d) {
            for (c, &v) in columns.iter_mut().zip(row) {
                c.observe(v);
            }
        }
        TableStats { columns }
    }

    /// Build directly from known per-column stats (e.g. catalog metadata).
    pub fn from_columns(columns: Vec<ColumnStats>) -> Self {
        TableStats { columns }
    }

    /// Per-column stats.
    pub fn columns(&self) -> &[ColumnStats] {
        &self.columns
    }

    /// Stats for dimension `i`.
    pub fn column(&self, i: usize) -> &ColumnStats {
        &self.columns[i]
    }

    /// Number of dimensions covered.
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Normalize one key row in place.
    pub fn normalize_row(&self, row: &mut [f64]) {
        debug_assert_eq!(row.len(), self.columns.len());
        for (v, c) in row.iter_mut().zip(&self.columns) {
            *v = c.normalize(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_and_normalize_open_interval() {
        let mut c = ColumnStats::empty();
        for v in [0.0, 10.0, 5.0] {
            c.observe(v);
        }
        assert_eq!(c.count, 3);
        let lo = c.normalize(0.0);
        let hi = c.normalize(10.0);
        assert!(lo > 0.0 && lo < 1.0);
        assert!(hi > 0.0 && hi < 1.0);
        assert!(lo < hi);
    }

    #[test]
    fn degenerate_column_maps_to_half() {
        let mut c = ColumnStats::empty();
        c.observe(4.0);
        c.observe(4.0);
        assert_eq!(c.normalize(4.0), 0.5);
        assert_eq!(ColumnStats::empty().normalize(1.0), 0.5);
    }

    #[test]
    fn merge_combines() {
        let mut a = ColumnStats::empty();
        a.observe(1.0);
        let mut b = ColumnStats::empty();
        b.observe(9.0);
        a.merge(&b);
        assert_eq!((a.min, a.max, a.count), (1.0, 9.0, 2));
    }

    #[test]
    fn from_records_and_keys_agree() {
        let layout = RecordLayout::new(3, 0);
        let recs: Vec<Vec<u8>> = vec![
            layout.encode(&[1, -5, 7], b""),
            layout.encode(&[3, 0, -2], b""),
        ];
        let s1 = TableStats::from_records(layout, 3, recs.iter().map(Vec::as_slice));
        let keys = vec![1.0, -5.0, 7.0, 3.0, 0.0, -2.0];
        let s2 = TableStats::from_keys(&keys, 3);
        assert_eq!(s1, s2);
        assert_eq!(s1.column(1).min, -5.0);
        assert_eq!(s1.column(2).max, 7.0);
    }

    #[test]
    fn normalize_row_applies_per_column() {
        let s = TableStats::from_keys(&[0.0, 100.0, 10.0, 200.0], 2);
        let mut row = vec![10.0, 100.0];
        s.normalize_row(&mut row);
        assert!(row[0] > 0.9 && row[0] < 1.0); // 10 is max of col 0
        assert!(row[1] > 0.0 && row[1] < 0.1); // 100 is min of col 1
    }

    #[test]
    fn normalization_preserves_order() {
        let s = TableStats::from_keys(&[-1e9, 0.0, 1e9, 0.0], 2);
        let c = s.column(0);
        assert!(c.normalize(-1e9) < c.normalize(0.0));
        assert!(c.normalize(0.0) < c.normalize(1e9));
    }
}
