//! A small, deterministic, dependency-free PRNG for workload generation
//! and tests.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 so that any `u64` seed — including 0 — yields a
//! well-mixed state. It is **not** cryptographically secure; it exists
//! so that every workload in the repo is reproducible from a single
//! `u64` seed without an external dependency.

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses Lemire-style rejection so the result is unbiased.
    #[inline]
    pub fn u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "u64_below(0)");
        // rejection zone keeps the multiply-shift mapping uniform
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.u64_below(span) as i64)
    }

    /// Uniform `i32` in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn i32_inclusive(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_inclusive(lo as i64, hi as i64) as i32
    }

    /// Uniform `u8` in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn u8_inclusive(&mut self, lo: u8, hi: u8) -> u8 {
        self.i64_inclusive(lo as i64, hi as i64) as u8
    }

    /// Fair coin flip.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.usize_below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(first.iter().any(|&x| x != 0));
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = r.i32_inclusive(-2, 2);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
        for _ in 0..100 {
            assert!(r.usize_below(3) < 3);
            let b = r.u8_inclusive(b'a', b'z');
            assert!(b.is_ascii_lowercase());
        }
        assert_eq!(r.i64_inclusive(5, 5), 5);
    }

    #[test]
    fn u64_below_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.u64_below(10) as usize] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; allow ±10%
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "seed 13 should permute");
    }
}
