//! Minimal CSV import/export for [`Table`] (header row required).
//!
//! Quoting rules: fields containing commas, quotes, or newlines are wrapped
//! in double quotes; embedded quotes are doubled. Types on import are
//! inferred per column from the data (Int ⊂ Float ⊂ Str) unless a schema is
//! supplied.

use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors reading CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the CSV text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        msg: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse { line, msg } => write!(f, "csv parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Split one CSV line into fields, honouring double-quote quoting.
fn split_line(line: &str, lineno: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::Parse {
            line: lineno,
            msg: "unterminated quoted field".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

fn parse_cell(raw: &str, ty: ColumnType) -> Value {
    let s = raw.trim();
    if s.is_empty() {
        return Value::Null;
    }
    match ty {
        ColumnType::Int => s.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        ColumnType::Date => s.parse::<i64>().map(Value::Date).unwrap_or(Value::Null),
        ColumnType::Float => s
            .parse::<f64>()
            .ok()
            .and_then(|f| Value::float(f).ok())
            .unwrap_or(Value::Null),
        ColumnType::Str => Value::Str(s.to_owned()),
    }
}

fn infer_type(cells: &[String]) -> ColumnType {
    let mut ty = ColumnType::Int;
    for c in cells {
        let s = c.trim();
        if s.is_empty() {
            continue;
        }
        match ty {
            ColumnType::Int => {
                if s.parse::<i64>().is_err() {
                    ty = if s.parse::<f64>().is_ok() {
                        ColumnType::Float
                    } else {
                        ColumnType::Str
                    };
                }
            }
            ColumnType::Float => {
                if s.parse::<f64>().is_err() {
                    ty = ColumnType::Str;
                }
            }
            _ => return ColumnType::Str,
        }
    }
    ty
}

/// Read a table from CSV text with a header row. When `schema` is `None`,
/// column types are inferred from the data.
pub fn read_csv<R: BufRead>(reader: R, schema: Option<Schema>) -> Result<Table, CsvError> {
    let mut lines = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || !line.is_empty() {
            lines.push(split_line(&line, i + 1)?);
        }
    }
    if lines.is_empty() {
        return Err(CsvError::Parse {
            line: 1,
            msg: "missing header row".into(),
        });
    }
    let header = lines.remove(0);
    let ncols = header.len();
    for (i, row) in lines.iter().enumerate() {
        if row.len() != ncols {
            return Err(CsvError::Parse {
                line: i + 2,
                msg: format!("expected {ncols} fields, got {}", row.len()),
            });
        }
    }
    let schema = match schema {
        Some(s) => {
            if s.len() != ncols {
                return Err(CsvError::Parse {
                    line: 1,
                    msg: format!("schema has {} columns, header has {ncols}", s.len()),
                });
            }
            s
        }
        None => {
            let cols: Vec<Column> = header
                .iter()
                .enumerate()
                .map(|(j, name)| {
                    let column: Vec<String> = lines.iter().map(|r| r[j].clone()).collect();
                    Column::new(name.trim(), infer_type(&column))
                })
                .collect();
            Schema::new(cols).map_err(|e| CsvError::Parse {
                line: 1,
                msg: e.to_string(),
            })?
        }
    };
    let rows: Vec<Tuple> = lines
        .into_iter()
        .map(|raw| {
            Tuple::new(
                raw.iter()
                    .zip(schema.columns())
                    .map(|(cell, col)| parse_cell(cell, col.ty))
                    .collect(),
            )
        })
        .collect();
    Table::new(schema, rows).map_err(|e| CsvError::Parse {
        line: 0,
        msg: e.to_string(),
    })
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Write a table as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, mut w: W) -> io::Result<()> {
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| quote(&c.name))
        .collect();
    writeln!(w, "{}", header.join(","))?;
    for row in table.rows() {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => quote(&other.to_string()),
            })
            .collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let t = crate::samples::good_eats();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(Cursor::new(buf), None).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.schema().index_of("price"), Some(4));
        assert_eq!(back.rows()[0].get(0).as_str(), Some("Summer Moon"));
        // price column inferred as Float
        assert_eq!(back.schema().column(4).ty, ColumnType::Float);
        assert_eq!(back.schema().column(1).ty, ColumnType::Int);
    }

    #[test]
    fn quoted_fields() {
        let csv = "name,score\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n";
        let t = read_csv(Cursor::new(csv), None).unwrap();
        assert_eq!(t.rows()[0].get(0).as_str(), Some("a,b"));
        assert_eq!(t.rows()[1].get(0).as_str(), Some("say \"hi\""));
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b\n1\n";
        assert!(matches!(
            read_csv(Cursor::new(csv), None),
            Err(CsvError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn empty_cells_become_null() {
        let csv = "a,b\n1,\n,2\n";
        let t = read_csv(Cursor::new(csv), None).unwrap();
        assert!(t.rows()[0].get(1).is_null());
        assert!(t.rows()[1].get(0).is_null());
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "a\n\"oops\n";
        assert!(read_csv(Cursor::new(csv), None).is_err());
    }

    #[test]
    fn explicit_schema_overrides_inference() {
        let csv = "a\n1\n2\n";
        let schema = Schema::of(&[("a", ColumnType::Str)]);
        let t = read_csv(Cursor::new(csv), Some(schema)).unwrap();
        assert_eq!(t.rows()[0].get(0).as_str(), Some("1"));
    }
}
