#![warn(missing_docs)]

//! Relational substrate for the skyline workspace: schemas, values, tuples,
//! fixed-width record codecs, workload generators, statistics, and sample
//! datasets.
//!
//! The paper ("Skyline with Presorting", Chomicki/Godfrey/Gryz/Liang, ICDE
//! 2003) runs its experiments over a table of one million 100-byte tuples:
//! ten 4-byte integer attributes followed by a 60-byte string, 40 tuples per
//! 4096-byte page. [`record::RecordLayout::PAPER`] reproduces that layout
//! exactly, and [`gen`] reproduces the data distribution (uniform,
//! pairwise-independent integers over the full `i32` range).
//!
//! Two representations coexist deliberately:
//!
//! * [`table::Table`] — a schema'd, row-oriented in-memory relation used by
//!   the query layer and the examples. Friendly, not fast.
//! * fixed-width byte records (see [`record`]) — what the storage and
//!   execution layers move through pages. All hot-path skyline code extracts
//!   `f64` key rows from these and never touches [`value::Value`].

pub mod csv;
pub mod gen;
pub mod record;
pub mod rng;
pub mod samples;
pub mod schema;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod value;

pub use record::{RecordLayout, PAGE_SIZE};
pub use rng::Rng;
pub use schema::{Column, ColumnType, Schema};
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
#[doc(hidden)]
pub use tuple::__into_value;
pub use tuple::Tuple;
pub use value::Value;
