//! Row-oriented tuples for the friendly tier.

use crate::value::Value;
use std::fmt;

/// A tuple: an ordered list of [`Value`]s matching some [`crate::Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a column position.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the tuple carries no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Project onto a subset of column positions.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Extract the `f64` skyline key for the given column positions.
    /// Returns `None` if any position is non-numeric/NULL.
    pub fn numeric_key(&self, indices: &[usize]) -> Option<Vec<f64>> {
        indices.iter().map(|&i| self.values[i].as_f64()).collect()
    }

    /// Consume the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Build a tuple from a heterogeneous list, e.g.
/// `tuple!["Summer Moon", 21, 25, 19, 47.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::__into_value($v)),*])
    };
}

/// Implementation detail of [`tuple!`]: converts supported literal types.
#[doc(hidden)]
pub fn __into_value<T: IntoValue>(v: T) -> Value {
    v.into_value()
}

/// Conversion trait used by the [`tuple!`] macro.
pub trait IntoValue {
    /// Convert into a [`Value`].
    fn into_value(self) -> Value;
}

impl IntoValue for i64 {
    fn into_value(self) -> Value {
        Value::Int(self)
    }
}
impl IntoValue for i32 {
    fn into_value(self) -> Value {
        Value::Int(i64::from(self))
    }
}
impl IntoValue for f64 {
    fn into_value(self) -> Value {
        Value::Float(self)
    }
}
impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::Str(self.to_owned())
    }
}
impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::Str(self)
    }
}
impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_mixed_tuple() {
        let t = crate::tuple!["Zakopane", 24, 56.0];
        assert_eq!(t.get(0), &Value::Str("Zakopane".into()));
        assert_eq!(t.get(1), &Value::Int(24));
        assert_eq!(t.get(2), &Value::Float(56.0));
    }

    #[test]
    fn numeric_key_extraction() {
        let t = crate::tuple!["x", 3, 4.5];
        assert_eq!(t.numeric_key(&[1, 2]), Some(vec![3.0, 4.5]));
        assert_eq!(t.numeric_key(&[0]), None);
    }

    #[test]
    fn projection() {
        let t = crate::tuple![1, 2, 3];
        assert_eq!(t.project(&[2, 0]), crate::tuple![3, 1]);
    }

    #[test]
    fn display() {
        assert_eq!(crate::tuple![1, "a"].to_string(), "(1, a)");
    }
}
