//! Fixed-width record codec — the representation that moves through pages.
//!
//! The paper's experimental tuple is ten 4-byte integers followed by a
//! 60-byte string: 100 bytes, so 40 tuples fit a 4096-byte page
//! ([`RecordLayout::PAPER`]). We generalize to `dims` little-endian `i32`
//! attributes followed by `payload` opaque bytes.

/// Page size used throughout the workspace (the paper's 4096 bytes).
pub const PAGE_SIZE: usize = 4096;

/// Fixed-width record layout: `dims` i32 attributes + `payload` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLayout {
    /// Number of leading i32 attributes (potential skyline criteria).
    pub dims: usize,
    /// Trailing opaque payload bytes (the paper's 60-byte string).
    pub payload: usize,
}

impl RecordLayout {
    /// The paper's layout: 10 × i32 + 60 bytes = 100-byte records,
    /// 40 records per page.
    pub const PAPER: RecordLayout = RecordLayout {
        dims: 10,
        payload: 60,
    };

    /// Construct a layout.
    pub const fn new(dims: usize, payload: usize) -> Self {
        RecordLayout { dims, payload }
    }

    /// Total record size in bytes.
    pub const fn record_size(&self) -> usize {
        4 * self.dims + self.payload
    }

    /// How many whole records fit in one page.
    pub const fn records_per_page(&self) -> usize {
        PAGE_SIZE / self.record_size()
    }

    /// Layout of a window entry after the paper's *projection* optimization:
    /// only the `k` skyline-criterion attributes are retained (no payload).
    pub const fn projected(k: usize) -> RecordLayout {
        RecordLayout {
            dims: k,
            payload: 0,
        }
    }

    /// Encode attributes + payload into a fresh record buffer.
    ///
    /// `attrs.len()` must equal `dims` and `payload.len()` must equal
    /// `self.payload`.
    pub fn encode(&self, attrs: &[i32], payload: &[u8]) -> Vec<u8> {
        assert_eq!(attrs.len(), self.dims, "attribute arity mismatch");
        assert_eq!(payload.len(), self.payload, "payload size mismatch");
        let mut buf = Vec::with_capacity(self.record_size());
        for &a in attrs {
            buf.extend_from_slice(&a.to_le_bytes());
        }
        buf.extend_from_slice(payload);
        buf
    }

    /// Decode all attributes of a record.
    pub fn decode_attrs(&self, record: &[u8]) -> Vec<i32> {
        debug_assert_eq!(record.len(), self.record_size());
        (0..self.dims).map(|i| self.attr(record, i)).collect()
    }

    /// Decode a single attribute without touching the rest of the record.
    #[inline]
    pub fn attr(&self, record: &[u8], i: usize) -> i32 {
        debug_assert!(i < self.dims);
        let off = 4 * i;
        i32::from_le_bytes(record[off..off + 4].try_into().unwrap())
    }

    /// Overwrite a single attribute in place.
    #[inline]
    pub fn set_attr(&self, record: &mut [u8], i: usize, v: i32) {
        debug_assert!(i < self.dims);
        let off = 4 * i;
        record[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// The payload slice of a record.
    pub fn payload_of<'a>(&self, record: &'a [u8]) -> &'a [u8] {
        &record[4 * self.dims..]
    }

    /// Extract the first `k` attributes as `f64`s into `out` (cleared
    /// first). This is the skyline key-extraction hot path; `out` is reused
    /// by callers to avoid per-record allocation.
    #[inline]
    pub fn key_into(&self, record: &[u8], k: usize, out: &mut Vec<f64>) {
        debug_assert!(k <= self.dims);
        out.clear();
        for i in 0..k {
            out.push(f64::from(self.attr(record, i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_dimensions() {
        assert_eq!(RecordLayout::PAPER.record_size(), 100);
        assert_eq!(RecordLayout::PAPER.records_per_page(), 40);
    }

    #[test]
    fn projected_layout_fits_more_per_page() {
        // Paper: with 10 i32 attrs and no string, 100 records fit per page.
        let p = RecordLayout::projected(10);
        assert_eq!(p.record_size(), 40);
        assert_eq!(p.records_per_page(), 102);
        // The paper quotes 100/page because it keeps all ten ints; the exact
        // figure depends on slot bookkeeping — our pages are dense arrays.
    }

    #[test]
    fn encode_decode_round_trip() {
        let l = RecordLayout::new(3, 5);
        let rec = l.encode(&[i32::MIN, 0, i32::MAX], b"hello");
        assert_eq!(rec.len(), 17);
        assert_eq!(l.decode_attrs(&rec), vec![i32::MIN, 0, i32::MAX]);
        assert_eq!(l.payload_of(&rec), b"hello");
        assert_eq!(l.attr(&rec, 0), i32::MIN);
        assert_eq!(l.attr(&rec, 2), i32::MAX);
    }

    #[test]
    fn set_attr_in_place() {
        let l = RecordLayout::new(2, 0);
        let mut rec = l.encode(&[1, 2], b"");
        l.set_attr(&mut rec, 1, 42);
        assert_eq!(l.decode_attrs(&rec), vec![1, 42]);
    }

    #[test]
    fn key_into_reuses_buffer() {
        let l = RecordLayout::new(4, 0);
        let rec = l.encode(&[10, -20, 30, 40], b"");
        let mut key = Vec::new();
        l.key_into(&rec, 3, &mut key);
        assert_eq!(key, vec![10.0, -20.0, 30.0]);
        l.key_into(&rec, 2, &mut key);
        assert_eq!(key, vec![10.0, -20.0]);
    }

    #[test]
    #[should_panic(expected = "attribute arity mismatch")]
    fn encode_checks_arity() {
        RecordLayout::new(2, 0).encode(&[1], b"");
    }
}
