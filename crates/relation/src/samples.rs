//! Sample datasets from the paper.

use crate::schema::{ColumnType, Schema};
use crate::table::Table;
use crate::tuple;

/// The `GoodEats` restaurant guide table of the paper's Figure 1.
///
/// Columns: restaurant name, `S` (service), `F` (food), `D` (decor) — each
/// scored 1–30, higher is better — and `price` (lower is better).
///
/// Its skyline under `S MAX, F MAX, D MAX, price MIN` is Figure 2:
/// Summer Moon, Zakopane, Yamanote, and Fenton & Pickle.
pub fn good_eats() -> Table {
    let schema = Schema::of(&[
        ("restaurant", ColumnType::Str),
        ("S", ColumnType::Int),
        ("F", ColumnType::Int),
        ("D", ColumnType::Int),
        ("price", ColumnType::Float),
    ]);
    Table::new(
        schema,
        vec![
            tuple!["Summer Moon", 21, 25, 19, 47.50],
            tuple!["Zakopane", 24, 20, 21, 56.00],
            tuple!["Brearton Grill", 15, 18, 20, 62.00],
            tuple!["Yamanote", 22, 22, 17, 51.50],
            tuple!["Fenton & Pickle", 16, 14, 10, 17.50],
            tuple!["Briar Patch BBQ", 14, 13, 3, 22.50],
        ],
    )
    .expect("static sample data is well-formed")
}

/// Names of the skyline restaurants of Figure 2, in table order.
pub const GOOD_EATS_SKYLINE: [&str; 4] = ["Summer Moon", "Zakopane", "Yamanote", "Fenton & Pickle"];

/// The three-point relation of Theorem 4's proof: `{(4,1), (2,2), (1,4)}`
/// over schema `(a1, a2)`. All three tuples are skyline, but `(2,2)` is not
/// the maximum of any *positive linear* scoring function — only of a
/// non-linear monotone one.
pub fn theorem4_points() -> Table {
    let schema = Schema::of(&[("a1", ColumnType::Int), ("a2", ColumnType::Int)]);
    Table::new(schema, vec![tuple![4, 1], tuple![2, 2], tuple![1, 4]])
        .expect("static sample data is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_eats_shape() {
        let t = good_eats();
        assert_eq!(t.len(), 6);
        assert_eq!(t.schema().len(), 5);
        assert_eq!(t.schema().index_of("price"), Some(4));
    }

    #[test]
    fn good_eats_values_match_figure_1() {
        let t = good_eats();
        // Zakopane is best on service (24).
        let s_idx = t.schema().index_of("S").unwrap();
        let best_s = t
            .rows()
            .iter()
            .max_by_key(|r| r.get(s_idx).as_i64().unwrap())
            .unwrap();
        assert_eq!(best_s.get(0).as_str(), Some("Zakopane"));
        // Summer Moon is best on food (25).
        let f_idx = t.schema().index_of("F").unwrap();
        let best_f = t
            .rows()
            .iter()
            .max_by_key(|r| r.get(f_idx).as_i64().unwrap())
            .unwrap();
        assert_eq!(best_f.get(0).as_str(), Some("Summer Moon"));
    }

    #[test]
    fn theorem4_shape() {
        let t = theorem4_points();
        assert_eq!(t.len(), 3);
        assert_eq!(t.numeric_matrix(&["a1", "a2"]).unwrap()[1], vec![2.0, 2.0]);
    }
}
