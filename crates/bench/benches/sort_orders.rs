//! Criterion counterpart of the §5 sort-times table: nested 7-attribute
//! sort vs single-score entropy sort (the paper's 57 s vs 37 s).

use skyline_bench::crit::Criterion;
use skyline_bench::{criterion_group, criterion_main};
use skyline_bench::{run_sort_only, Dataset};
use skyline_core::SortOrder;
use std::hint::black_box;

fn bench_sort_orders(c: &mut Criterion) {
    let ds = Dataset::paper(50_000, 2003);
    let mut g = c.benchmark_group("table_sort_times");
    g.bench_function("nested_7attr", |b| {
        b.iter(|| black_box(run_sort_only(&ds, 7, SortOrder::Nested).1));
    });
    g.bench_function("entropy_score", |b| {
        b.iter(|| black_box(run_sort_only(&ds, 7, SortOrder::Entropy).1));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sort_orders
}
criterion_main!(benches);
