//! Criterion ablation: the 2-D/3-D special-case algorithms (paper §6's
//! "special cases … could be exploited") vs the general ones.

use skyline_bench::crit::{BenchmarkId, Criterion};
use skyline_bench::{criterion_group, criterion_main};
use skyline_core::algo::{bnl, sfs, MemSortOrder};
use skyline_core::lowdim::{skyline_2d, skyline_3d};
use skyline_core::KeyMatrix;
use skyline_relation::gen::WorkloadSpec;
use std::hint::black_box;

fn bench_lowdim(c: &mut Criterion) {
    let mut g = c.benchmark_group("lowdim_specials");
    for &n in &[10_000usize, 50_000] {
        let k2 = KeyMatrix::new(2, WorkloadSpec::paper(n, 5).generate_keys(2));
        let k3 = KeyMatrix::new(3, WorkloadSpec::paper(n, 5).generate_keys(3));
        g.bench_with_input(BenchmarkId::new("skyline_2d", n), &k2, |b, k| {
            b.iter(|| black_box(skyline_2d(k).indices.len()));
        });
        g.bench_with_input(BenchmarkId::new("sfs_2d", n), &k2, |b, k| {
            b.iter(|| black_box(sfs(k, MemSortOrder::Entropy).indices.len()));
        });
        g.bench_with_input(BenchmarkId::new("skyline_3d", n), &k3, |b, k| {
            b.iter(|| black_box(skyline_3d(k).indices.len()));
        });
        g.bench_with_input(BenchmarkId::new("bnl_3d", n), &k3, |b, k| {
            b.iter(|| black_box(bnl(k).indices.len()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lowdim
}
criterion_main!(benches);
