//! Criterion: winnow (generalized preference) vs plain skyline, and the
//! move-to-front window ablation.

use skyline_bench::crit::Criterion;
use skyline_bench::{criterion_group, criterion_main};
use skyline_core::algo::{bnl, MemSortOrder};
use skyline_core::winnow::{winnow, LexPreference, SkylinePreference};
use skyline_core::KeyMatrix;
use skyline_relation::gen::WorkloadSpec;
use std::hint::black_box;

fn bench_winnow(c: &mut Criterion) {
    let km = KeyMatrix::new(5, WorkloadSpec::paper(20_000, 5).generate_keys(5));
    let mut g = c.benchmark_group("winnow");
    g.bench_function("winnow_skyline_pref", |b| {
        b.iter(|| black_box(winnow(&km, &SkylinePreference).0.len()));
    });
    g.bench_function("bnl_direct", |b| {
        b.iter(|| black_box(bnl(&km).indices.len()));
    });
    g.bench_function("winnow_lex_pref", |b| {
        b.iter(|| black_box(winnow(&km, &LexPreference).0.len()));
    });
    // sanity: entropy presorted SFS for scale reference
    g.bench_function("sfs_reference", |b| {
        b.iter(|| {
            black_box(
                skyline_core::algo::sfs(&km, MemSortOrder::Entropy)
                    .indices
                    .len(),
            )
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_winnow
}
criterion_main!(benches);
