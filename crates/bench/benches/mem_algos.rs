//! Criterion: in-memory skyline algorithms head-to-head (naive / SFS /
//! BNL / divide-and-conquer) on the paper's uniform-independent data.

use skyline_bench::crit::{BenchmarkId, Criterion};
use skyline_bench::{criterion_group, criterion_main};
use skyline_core::algo::{bnl, divide_and_conquer, naive, sfs, MemSortOrder};
use skyline_core::KeyMatrix;
use skyline_relation::gen::WorkloadSpec;
use std::hint::black_box;

fn keymatrix(n: usize, d: usize, seed: u64) -> KeyMatrix {
    let keys = WorkloadSpec::paper(n, seed).generate_keys(d);
    KeyMatrix::new(d, keys)
}

fn bench_mem_algos(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem_algos");
    for &n in &[1_000usize, 5_000] {
        let km = keymatrix(n, 5, 11);
        g.bench_with_input(BenchmarkId::new("naive", n), &km, |b, km| {
            b.iter(|| black_box(naive(km).indices.len()));
        });
        g.bench_with_input(BenchmarkId::new("sfs_entropy", n), &km, |b, km| {
            b.iter(|| black_box(sfs(km, MemSortOrder::Entropy).indices.len()));
        });
        g.bench_with_input(BenchmarkId::new("sfs_nested", n), &km, |b, km| {
            b.iter(|| black_box(sfs(km, MemSortOrder::Nested).indices.len()));
        });
        g.bench_with_input(BenchmarkId::new("bnl", n), &km, |b, km| {
            b.iter(|| black_box(bnl(km).indices.len()));
        });
        g.bench_with_input(BenchmarkId::new("dnc", n), &km, |b, km| {
            b.iter(|| black_box(divide_and_conquer(km).indices.len()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mem_algos
}
criterion_main!(benches);
