//! Criterion ablation: partition/merge parallel skyline vs sequential SFS.

use skyline_bench::crit::{BenchmarkId, Criterion};
use skyline_bench::{criterion_group, criterion_main};
use skyline_core::algo::{sfs, MemSortOrder};
use skyline_core::par::parallel_skyline;
use skyline_core::KeyMatrix;
use skyline_relation::gen::WorkloadSpec;
use std::hint::black_box;

fn bench_parallel(c: &mut Criterion) {
    let km = KeyMatrix::new(6, WorkloadSpec::paper(100_000, 2003).generate_keys(6));
    let mut g = c.benchmark_group("parallel_skyline");
    g.bench_function("sequential_sfs", |b| {
        b.iter(|| black_box(sfs(&km, MemSortOrder::Entropy).indices.len()));
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| black_box(parallel_skyline(&km, t).map(|s| s.len())));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel
}
criterion_main!(benches);
