//! Criterion micro-benchmarks of the dominance kernel — the operation
//! that makes skyline computation CPU-bound (paper §4.2).

use skyline_bench::crit::{BenchmarkId, Criterion};
use skyline_bench::{criterion_group, criterion_main};
use skyline_core::score::{EntropyScore, MonotoneScore};
use skyline_core::{dom_rel, dominates};
use skyline_relation::gen::WorkloadSpec;
use std::hint::black_box;

fn bench_dominance(c: &mut Criterion) {
    let mut g = c.benchmark_group("dominance_kernel");
    for &d in &[2usize, 5, 10] {
        let keys = WorkloadSpec::paper(2_000, 7).generate_keys(d);
        let rows: Vec<&[f64]> = keys.chunks_exact(d).collect();
        g.bench_with_input(
            BenchmarkId::new("dom_rel_all_pairs", d),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for w in rows.windows(2) {
                        acc += u64::from(dom_rel(w[0], w[1]) == skyline_core::DomRel::Dominates);
                    }
                    black_box(acc)
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("dominates_all_pairs", d),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for w in rows.windows(2) {
                        acc += u64::from(dominates(w[0], w[1]));
                    }
                    black_box(acc)
                });
            },
        );
        let e = EntropyScore::from_keys(&keys, d);
        g.bench_with_input(BenchmarkId::new("entropy_score", d), &rows, |b, rows| {
            b.iter(|| {
                let mut acc = 0.0;
                for r in rows {
                    acc += e.score(r);
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dominance);
criterion_main!(benches);
