//! Criterion counterpart of Figure 9: the three SFS variants (basic,
//! w/E, w/E,P) through the full external pipeline at a fixed window.

use skyline_bench::crit::{BenchmarkId, Criterion};
use skyline_bench::{criterion_group, criterion_main};
use skyline_bench::{run_sfs, Dataset, SfsVariant};
use std::hint::black_box;

fn bench_sfs_variants(c: &mut Criterion) {
    let ds = Dataset::paper(30_000, 2003);
    let mut g = c.benchmark_group("fig09_sfs_variants");
    for variant in [
        SfsVariant::Basic,
        SfsVariant::Entropy,
        SfsVariant::EntropyProjection,
    ] {
        for &w in &[1usize, 16] {
            g.bench_with_input(
                BenchmarkId::new(variant.label().replace([' ', '/'], "_"), w),
                &w,
                |b, &w| {
                    b.iter(|| black_box(run_sfs(&ds, 6, w, variant).skyline));
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sfs_variants
}
criterion_main!(benches);
