//! Criterion counterpart of Figures 12–15: SFS (w/E,P) vs BNL at five
//! and seven dimensions.

use skyline_bench::crit::{BenchmarkId, Criterion};
use skyline_bench::{criterion_group, criterion_main};
use skyline_bench::{run_bnl, run_sfs, BnlInput, Dataset, SfsVariant};
use std::hint::black_box;

fn bench_sfs_vs_bnl(c: &mut Criterion) {
    let ds = Dataset::paper(30_000, 2003);
    let mut g = c.benchmark_group("fig12_15_sfs_vs_bnl");
    for &d in &[5usize, 7] {
        g.bench_with_input(BenchmarkId::new("sfs_wEP", d), &d, |b, &d| {
            b.iter(|| black_box(run_sfs(&ds, d, 8, SfsVariant::EntropyProjection).skyline));
        });
        g.bench_with_input(BenchmarkId::new("bnl", d), &d, |b, &d| {
            b.iter(|| black_box(run_bnl(&ds, d, 8, BnlInput::Natural).skyline));
        });
        g.bench_with_input(BenchmarkId::new("bnl_wRE", d), &d, |b, &d| {
            b.iter(|| black_box(run_bnl(&ds, d, 8, BnlInput::ReverseEntropy).skyline));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sfs_vs_bnl
}
criterion_main!(benches);
