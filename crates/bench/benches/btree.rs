//! Criterion: the clustered B+-tree substrate (bulk load, inserts, scan).

use skyline_bench::crit::Criterion;
use skyline_bench::{criterion_group, criterion_main};
use skyline_storage::btree::key_codec::i32_key;
use skyline_storage::{BTree, Disk, MemDisk, SharedBTreeScan};
use std::hint::black_box;
use std::sync::Arc;

fn bench_btree(c: &mut Criterion) {
    let n = 50_000usize;
    let recs: Vec<([u8; 4], [u8; 100])> = (0..n)
        .map(|i| {
            let v = ((i as u64 * 2_654_435_761) % 1_000_000) as i32;
            (i32_key(v), [0u8; 100])
        })
        .collect();
    let mut sorted = recs.clone();
    sorted.sort_by_key(|p| p.0);

    let mut g = c.benchmark_group("btree");
    g.bench_function("bulk_load_50k", |b| {
        b.iter(|| {
            let disk = MemDisk::shared();
            let t = BTree::bulk_load(
                disk as Arc<dyn Disk>,
                4,
                100,
                sorted.iter().map(|(k, r)| (k.as_slice(), r.as_slice())),
            )
            .expect("bulk load");
            black_box(t.len())
        });
    });
    g.bench_function("random_inserts_50k", |b| {
        b.iter(|| {
            let disk = MemDisk::shared();
            let mut t = BTree::new(disk as Arc<dyn Disk>, 4, 100).expect("new");
            for (k, r) in &recs {
                t.insert(k, r).expect("insert");
            }
            black_box(t.len())
        });
    });
    let disk = MemDisk::shared();
    let tree = Arc::new(
        BTree::bulk_load(
            disk as Arc<dyn Disk>,
            4,
            100,
            sorted.iter().map(|(k, r)| (k.as_slice(), r.as_slice())),
        )
        .expect("bulk load"),
    );
    g.bench_function("full_scan_50k", |b| {
        b.iter(|| {
            let mut s = SharedBTreeScan::new(Arc::clone(&tree)).expect("scan");
            let mut n = 0u64;
            while s.next_record().expect("next").is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_btree
}
criterion_main!(benches);
