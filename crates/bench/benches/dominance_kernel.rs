//! Criterion micro-benchmarks of the columnar block kernel against the
//! scalar dominance loop: the same presorted SFS probe stream driven
//! through a `Vec`-of-rows window with [`dominates`] versus a
//! [`BlockWindow`] with its summary pruning and Theorem-4 cutoff.

use skyline_bench::crit::{BenchmarkId, Criterion};
use skyline_bench::{criterion_group, criterion_main};
use skyline_core::dominance_block::{key_score, BlockVerdict, BlockWindow, ReplaceWindow};
use skyline_core::dominates;
use skyline_relation::gen::WorkloadSpec;
use std::hint::black_box;

/// Score-descending oriented rows — the SFS probe stream.
fn presorted_rows(n: usize, d: usize) -> Vec<Vec<f64>> {
    let keys = WorkloadSpec::paper(n, 2003).generate_keys(d);
    let mut rows: Vec<Vec<f64>> = keys.chunks_exact(d).map(<[f64]>::to_vec).collect();
    rows.sort_by(|a, b| key_score(b).total_cmp(&key_score(a)));
    rows
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("dominance_block_kernel");
    for &d in &[2usize, 5, 7, 10] {
        let rows = presorted_rows(4_000, d);

        // the full SFS filter pass: probe, then insert survivors
        g.bench_with_input(
            BenchmarkId::new("sfs_scalar_window", d),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut window: Vec<&[f64]> = Vec::new();
                    for key in rows {
                        if !window.iter().any(|e| dominates(e, key)) {
                            window.push(key);
                        }
                    }
                    black_box(window.len())
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("sfs_block_window", d), &rows, |b, rows| {
            b.iter(|| {
                let mut window = BlockWindow::new(d, usize::MAX);
                for key in rows {
                    let (verdict, _cost) = window.probe(key);
                    if !matches!(verdict, BlockVerdict::Dominated) {
                        window.insert(key);
                    }
                }
                black_box(window.len())
            });
        });

        // the BNL shape: probes may also evict window entries
        g.bench_with_input(BenchmarkId::new("bnl_block_window", d), &rows, |b, rows| {
            b.iter(|| {
                let mut window = ReplaceWindow::new(d);
                let mut removed = Vec::new();
                // generation order (unsorted): eviction actually happens
                for key in rows.iter().rev() {
                    let (dominated, _cost) = window.probe_replace(key, &mut removed);
                    if !dominated {
                        window.push(key);
                    }
                }
                black_box(window.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
