//! Criterion: the skyline cardinality estimator (what an optimizer would
//! call per query — it must be cheap even at n = 10⁶).

use skyline_bench::crit::{BenchmarkId, Criterion};
use skyline_bench::{criterion_group, criterion_main};
use skyline_core::cardinality::{asymptotic_skyline_size, expected_skyline_size};
use std::hint::black_box;

fn bench_cardinality(c: &mut Criterion) {
    let mut g = c.benchmark_group("cardinality_estimator");
    for &n in &[10_000usize, 1_000_000] {
        g.bench_with_input(BenchmarkId::new("exact_dp_d7", n), &n, |b, &n| {
            b.iter(|| black_box(expected_skyline_size(n, 7)));
        });
        g.bench_with_input(BenchmarkId::new("asymptotic_d7", n), &n, |b, &n| {
            b.iter(|| black_box(asymptotic_skyline_size(n, 7)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cardinality
}
criterion_main!(benches);
