//! Criterion: incremental skyline maintenance vs recompute-from-scratch.

use skyline_bench::crit::Criterion;
use skyline_bench::{criterion_group, criterion_main};
use skyline_core::algo::{sfs, MemSortOrder};
use skyline_core::maintain::SkylineCache;
use skyline_core::KeyMatrix;
use skyline_relation::gen::WorkloadSpec;
use std::hint::black_box;

fn bench_maintain(c: &mut Criterion) {
    let d = 5;
    let n = 50_000;
    let keys = WorkloadSpec::paper(n, 7).generate_keys(d);
    let mut g = c.benchmark_group("incremental_maintenance");
    g.bench_function("stream_inserts", |b| {
        b.iter(|| {
            let mut cache = SkylineCache::new(d);
            for (i, row) in keys.chunks_exact(d).enumerate() {
                cache.insert(i as u64, row);
            }
            black_box(cache.len())
        });
    });
    g.bench_function("batch_recompute", |b| {
        let km = KeyMatrix::new(d, keys.clone());
        b.iter(|| black_box(sfs(&km, MemSortOrder::Entropy).indices.len()));
    });
    // per-insert cost once warm: one more tuple against an existing cache
    let mut warm = SkylineCache::new(d);
    for (i, row) in keys.chunks_exact(d).enumerate() {
        warm.insert(i as u64, row);
    }
    g.bench_function("single_insert_warm", |b| {
        let probe: Vec<f64> = keys[..d].to_vec();
        b.iter(|| {
            let mut c = warm.clone();
            black_box(c.insert(u64::MAX, &probe))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_maintain
}
criterion_main!(benches);
