//! Shared experiment runners.

use skyline_core::metrics::MetricsSnapshot;
use skyline_core::planner::{
    entropy_stats_of_records, load_heap, materialize, presort, sfs_filter,
};
use skyline_core::score::{EntropyScore, SortOrder};
use skyline_core::{Bnl, SfsConfig, SkylineMetrics, SkylineSpec};
use skyline_exec::Operator;
use skyline_relation::gen::WorkloadSpec;
use skyline_relation::RecordLayout;
use skyline_storage::{Disk, HeapFile, IoSnapshot, MemDisk};
use std::sync::Arc;
use std::time::Instant;

/// A generated-and-loaded dataset shared across one experiment's sweep.
pub struct Dataset {
    /// The simulated disk all files live on.
    pub disk: Arc<MemDisk>,
    /// The base table (paper layout).
    pub heap: Arc<HeapFile>,
    /// Record layout.
    pub layout: RecordLayout,
    /// Tuple count.
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
    /// Per-dimension entropy stats caches, keyed by `d` (index = d).
    stats: Vec<Option<EntropyScore>>,
}

impl Dataset {
    /// Generate the paper's uniform dataset at scale `n` and load it.
    pub fn paper(n: usize, seed: u64) -> Self {
        Dataset::from_spec(WorkloadSpec::paper(n, seed))
    }

    /// Generate any workload spec and load it.
    ///
    /// # Panics
    /// Panics if loading the generated records into the in-memory disk
    /// fails (benchmarks have no error channel to report into).
    pub fn from_spec(spec: WorkloadSpec) -> Self {
        let records = spec.generate();
        let disk = MemDisk::shared();
        let heap = Arc::new(
            load_heap(
                Arc::clone(&disk) as Arc<dyn Disk>,
                spec.layout.record_size(),
                records.iter().map(Vec::as_slice),
            )
            .expect("load dataset"),
        );
        let layout = spec.layout;
        let mut stats = vec![None];
        for d in 1..=layout.dims {
            let s = SkylineSpec::max_all(d);
            stats.push(Some(entropy_stats_of_records(
                &layout,
                &s,
                records.iter().map(Vec::as_slice),
            )));
        }
        Dataset {
            disk,
            heap,
            layout,
            n: spec.n,
            seed: spec.seed,
            stats,
        }
    }

    /// Catalog-style entropy stats for a `d`-dimensional all-max spec.
    ///
    /// # Panics
    /// Panics if `d` exceeds the layout's dimension count — stats are
    /// precomputed for `1..=dims` at load time.
    pub fn entropy(&self, d: usize) -> EntropyScore {
        self.stats[d]
            .clone()
            .expect("stats precomputed for all dims")
    }

    /// Pages occupied by the base table.
    pub fn base_pages(&self) -> u64 {
        self.heap.num_pages()
    }
}

/// Which presort an SFS run uses (None = the input's natural order, only
/// valid when the caller sorted already).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfsVariant {
    /// Basic SFS: nested sort, full-record window entries.
    Basic,
    /// SFS w/E: entropy presort.
    Entropy,
    /// SFS w/E,P: entropy presort plus the projection optimization.
    EntropyProjection,
}

impl SfsVariant {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SfsVariant::Basic => "SFS",
            SfsVariant::Entropy => "SFS w/E",
            SfsVariant::EntropyProjection => "SFS w/E,P",
        }
    }
}

/// Outcome of one skyline run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Sort-phase wall time in milliseconds (0 for BNL).
    pub sort_ms: f64,
    /// Filter-phase wall time in milliseconds.
    pub filter_ms: f64,
    /// Skyline size.
    pub skyline: u64,
    /// Filter-phase temp I/O: pages written + pages read beyond the
    /// input scan ("extra pages ×2 I/O" in the paper's terms).
    pub extra_ios: u64,
    /// Pages written to temp files by the filter phase.
    pub extra_pages_written: u64,
    /// Operator counters.
    pub metrics: MetricsSnapshot,
}

impl RunResult {
    /// Total wall time (sort + filter).
    pub fn total_ms(&self) -> f64 {
        self.sort_ms + self.filter_ms
    }

    /// Total time with the filter phase's extra-page transfers charged to
    /// a simulated disk — recovers the paper's time curves, where the
    /// multipass configurations also paid real device time (`MemDisk`
    /// transfers are free, so wall-clock alone under-weights multipass).
    pub fn total_ms_with_disk(&self, model: &skyline_storage::DiskCostModel) -> f64 {
        // extra_ios counts both directions; charge the average cost
        let per_page_ms = (model.read_us + model.write_us) / 2.0 / 1_000.0;
        self.total_ms() + self.extra_ios as f64 * per_page_ms
    }
}

fn drain(op: &mut dyn Operator) -> u64 {
    op.open().expect("open");
    let mut n = 0u64;
    while op.next().expect("next").is_some() {
        n += 1;
    }
    op.close();
    n
}

fn filter_io(before: IoSnapshot, after: IoSnapshot, input_pages: u64) -> (u64, u64) {
    let delta = after.since(&before);
    // the input scan reads `input_pages` once; everything else is temp
    // traffic. Multipass scans of the shrinking temp files are included —
    // they are exactly the paper's "extra pages".
    let extra_reads = delta.reads.saturating_sub(input_pages);
    (delta.writes + extra_reads, delta.writes)
}

/// Run one SFS configuration (sort phase + filter phase, timed and
/// I/O-accounted separately).
///
/// # Panics
/// Panics on any storage or operator error — benchmarks have no error
/// channel to report into.
pub fn run_sfs(ds: &Dataset, d: usize, window_pages: usize, variant: SfsVariant) -> RunResult {
    let spec = SkylineSpec::max_all(d);
    let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;

    let (order, entropy) = match variant {
        SfsVariant::Basic => (SortOrder::Nested, None),
        _ => (SortOrder::Entropy, Some(ds.entropy(d))),
    };

    let t0 = Instant::now();
    let sorted = presort(
        Arc::clone(&ds.heap),
        ds.layout,
        spec.clone(),
        order,
        entropy,
        1000, // the paper's sort allocation
        Arc::clone(&disk),
    )
    .expect("presort");
    let sort_ms = t0.elapsed().as_secs_f64() * 1e3;

    let sorted = Arc::new(sorted);
    let input_pages = sorted.num_pages();
    let cfg = match variant {
        SfsVariant::EntropyProjection => SfsConfig::new(window_pages).with_projection(),
        _ => SfsConfig::new(window_pages),
    };
    let metrics = SkylineMetrics::shared();
    let mut sfs = sfs_filter(
        Arc::clone(&sorted),
        ds.layout,
        spec,
        cfg,
        Arc::clone(&disk),
        Arc::clone(&metrics),
    )
    .expect("sfs");
    let before = ds.disk.stats().snapshot();
    let t1 = Instant::now();
    let skyline = drain(&mut sfs);
    let filter_ms = t1.elapsed().as_secs_f64() * 1e3;
    let (extra_ios, extra_pages_written) =
        filter_io(before, ds.disk.stats().snapshot(), input_pages);

    // free the sorted copy (drop the operator's scan handle first)
    drop(sfs);
    if let Ok(f) = Arc::try_unwrap(sorted) {
        f.delete();
    }

    RunResult {
        sort_ms,
        filter_ms,
        skyline,
        extra_ios,
        extra_pages_written,
        metrics: metrics.snapshot(),
    }
}

/// Input orders for BNL runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BnlInput {
    /// The heap's natural order — random, since the generator is random
    /// (the paper's "BNL").
    Natural,
    /// Entropy-ascending order — the adversarial "BNL w/RE".
    ReverseEntropy,
}

impl BnlInput {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            BnlInput::Natural => "BNL",
            BnlInput::ReverseEntropy => "BNL w/RE",
        }
    }
}

/// Run one BNL configuration. For [`BnlInput::ReverseEntropy`] the input
/// is first materialized in reverse-entropy order (sort cost *not*
/// charged to BNL — the adversarial order stands in for unlucky clustered
/// input arriving for free, as the paper argues).
///
/// # Panics
/// Panics on any storage or operator error — benchmarks have no error
/// channel to report into.
pub fn run_bnl(ds: &Dataset, d: usize, window_pages: usize, input: BnlInput) -> RunResult {
    let spec = SkylineSpec::max_all(d);
    let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;

    let (input_heap, owned): (Arc<HeapFile>, bool) = match input {
        BnlInput::Natural => (Arc::clone(&ds.heap), false),
        BnlInput::ReverseEntropy => {
            let sorted = presort(
                Arc::clone(&ds.heap),
                ds.layout,
                spec.clone(),
                SortOrder::ReverseEntropy,
                Some(ds.entropy(d)),
                1000,
                Arc::clone(&disk),
            )
            .expect("presort");
            (Arc::new(sorted), true)
        }
    };
    let input_pages = input_heap.num_pages();
    let metrics = SkylineMetrics::shared();
    let scan = Box::new(skyline_exec::HeapScan::new(Arc::clone(&input_heap)));
    let mut bnl = Bnl::new(
        scan,
        ds.layout,
        spec,
        window_pages,
        Arc::clone(&disk),
        Arc::clone(&metrics),
    )
    .expect("bnl");
    let before = ds.disk.stats().snapshot();
    let t0 = Instant::now();
    let skyline = drain(&mut bnl);
    let filter_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (extra_ios, extra_pages_written) =
        filter_io(before, ds.disk.stats().snapshot(), input_pages);
    if owned {
        drop(bnl);
        if let Ok(f) = Arc::try_unwrap(input_heap) {
            f.delete();
        }
    }
    RunResult {
        sort_ms: 0.0,
        filter_ms,
        skyline,
        extra_ios,
        extra_pages_written,
        metrics: metrics.snapshot(),
    }
}

/// Time just the sort phase (for the paper's nested-57s vs entropy-37s
/// comparison).
///
/// # Panics
/// Panics if the presort fails — benchmarks have no error channel to
/// report into.
pub fn run_sort_only(ds: &Dataset, d: usize, order: SortOrder) -> (f64, u64) {
    let spec = SkylineSpec::max_all(d);
    let entropy = match order {
        SortOrder::Nested => None,
        _ => Some(ds.entropy(d)),
    };
    let t0 = Instant::now();
    let sorted = presort(
        Arc::clone(&ds.heap),
        ds.layout,
        spec,
        order,
        entropy,
        1000,
        Arc::clone(&ds.disk) as Arc<dyn Disk>,
    )
    .expect("presort");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let n = sorted.len();
    sorted.delete();
    (ms, n)
}

/// BNL fed from a clustered B+-tree index scan on attribute 0 — the
/// §4.2 scenario ("if a table has a clustered (tree) index, which is
/// quite likely, its tuples are ordered in the heapfile"). `ascending`
/// keys put the worst attribute-0 values first (bad for BNL); descending
/// keys put likely dominators first (good).
///
/// # Panics
/// Panics on any storage or operator error — benchmarks have no error
/// channel to report into.
pub fn run_bnl_clustered(
    ds: &Dataset,
    d: usize,
    window_pages: usize,
    ascending: bool,
) -> RunResult {
    use skyline_exec::IndexScan;
    use skyline_storage::btree::key_codec::i32_key;
    use skyline_storage::BTree;

    let spec = SkylineSpec::max_all(d);
    let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;

    // cluster on attribute 0 (order-preserving key; negate for desc)
    let mut pairs: Vec<([u8; 4], Vec<u8>)> = Vec::with_capacity(ds.n);
    let mut scan = ds.heap.scan();
    while let Some(r) = scan.next_record().expect("scan") {
        let a0 = ds.layout.attr(r, 0);
        let k = if ascending {
            a0
        } else {
            a0.wrapping_neg().max(i32::MIN + 1)
        };
        pairs.push((i32_key(k), r.to_vec()));
    }
    pairs.sort_by_key(|p| p.0);
    let mut tree = BTree::bulk_load(
        Arc::clone(&disk),
        4,
        ds.layout.record_size(),
        pairs.iter().map(|(k, r)| (k.as_slice(), r.as_slice())),
    )
    .expect("bulk load");
    tree.mark_temp();
    let tree = Arc::new(tree);
    let input_pages = tree.num_pages();

    let metrics = SkylineMetrics::shared();
    let scan = Box::new(IndexScan::new(Arc::clone(&tree), ds.layout.record_size()));
    let mut bnl = Bnl::new(
        scan,
        ds.layout,
        spec,
        window_pages,
        Arc::clone(&disk),
        Arc::clone(&metrics),
    )
    .expect("bnl");
    let before = ds.disk.stats().snapshot();
    let t0 = Instant::now();
    let skyline = drain(&mut bnl);
    let filter_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (extra_ios, extra_pages_written) =
        filter_io(before, ds.disk.stats().snapshot(), input_pages);
    RunResult {
        sort_ms: 0.0,
        filter_ms,
        skyline,
        extra_ios,
        extra_pages_written,
        metrics: metrics.snapshot(),
    }
}

/// Time the nested sort with the comparator's DSU prefix key *disabled* —
/// the multi-attribute comparison cost the paper's nested sort pays.
///
/// # Panics
/// Panics if the sort or materialization fails — benchmarks have no
/// error channel to report into.
pub fn run_sort_only_no_dsu(ds: &Dataset, d: usize) -> (f64, u64) {
    use skyline_core::score::SkylineOrderCmp;
    use skyline_exec::{ExternalSort, HeapScan, RecordComparator, SortBudget};

    /// Delegates `cmp` but withholds the prefix key.
    struct NoDsu(SkylineOrderCmp);
    impl RecordComparator for NoDsu {
        fn cmp(&self, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
            self.0.cmp(a, b)
        }
    }

    let spec = SkylineSpec::max_all(d);
    let cmp = Arc::new(NoDsu(SkylineOrderCmp::new(
        ds.layout,
        spec,
        SortOrder::Nested,
        None,
    )));
    let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;
    let scan = Box::new(HeapScan::new(Arc::clone(&ds.heap)));
    let mut sort = ExternalSort::new(scan, cmp, Arc::clone(&disk), SortBudget::pages(1000));
    let t0 = Instant::now();
    let sorted = skyline_core::planner::materialize(&mut sort, disk).expect("materialize");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let n = sorted.len();
    sorted.delete();
    (ms, n)
}

/// Dimensional-reduction pre-pass (paper Fig. 8): nested-sort, group by
/// the first `d−1` attributes taking `max(a_d)`, return (reduced heap,
/// reduced count).
///
/// # Panics
/// Panics if the sort, grouping, or materialization fails — benchmarks
/// have no error channel to report into.
pub fn dimensional_reduction(ds: &Dataset, d: usize) -> (HeapFile, u64) {
    use skyline_core::score::SkylineOrderCmp;
    use skyline_exec::{ExternalSort, GroupMax, HeapScan, SortBudget};
    let spec = SkylineSpec::max_all(d);
    let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;
    let cmp = Arc::new(SkylineOrderCmp::new(
        ds.layout,
        spec,
        SortOrder::Nested,
        None,
    ));
    let scan = Box::new(HeapScan::new(Arc::clone(&ds.heap)));
    let sort = Box::new(ExternalSort::new(
        scan,
        cmp,
        Arc::clone(&disk),
        SortBudget::pages(1000),
    ));
    let mut gm = GroupMax::new(sort, ds.layout, (0..d - 1).collect(), d - 1).expect("group max");
    let reduced = materialize(&mut gm, disk).expect("materialize");
    let n = reduced.len();
    (reduced, n)
}

/// Parse common CLI args: `--scale N`, `--seed S`, plus `SKYLINE_SCALE`
/// env fallback. Returns (scale, seed, full: bool).
///
/// # Panics
/// Panics on unknown flags or unparsable values — bad CLI input should
/// stop a bench run loudly, not fall back to defaults.
pub fn parse_args() -> (usize, u64, bool) {
    let mut scale: usize = std::env::var("SKYLINE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let mut seed: u64 = 2003;
    let mut full = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args[i + 1].parse().expect("--scale N");
                i += 2;
            }
            "--seed" => {
                seed = args[i + 1].parse().expect("--seed S");
                i += 2;
            }
            "--full" => {
                full = true;
                i += 1;
            }
            other => panic!("unknown argument {other} (use --scale N --seed S --full)"),
        }
    }
    (scale, seed, full)
}

/// Window sweep used across the figures, in pages, scaled so the largest
/// window comfortably exceeds the skyline at the given scale.
pub fn window_sweep() -> Vec<usize> {
    vec![1, 2, 5, 10, 20, 50, 100, 200, 400]
}

/// Estimated dominance comparisons for a BNL w/RE run — used to curtail
/// configurations that would run for hours, as the paper did ("the lines
/// for BNL (w/RE) stop because we curtailed experiments").
pub fn re_cost_estimate(n: usize) -> f64 {
    (n as f64) * (n as f64) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_core::algo;
    use skyline_core::KeyMatrix;

    fn oracle_size(ds: &Dataset, d: usize) -> u64 {
        let mut rows = Vec::new();
        let mut scan = ds.heap.scan();
        while let Some(r) = scan.next_record().expect("scan") {
            rows.push(
                (0..d)
                    .map(|i| f64::from(ds.layout.attr(r, i)))
                    .collect::<Vec<_>>(),
            );
        }
        algo::naive(&KeyMatrix::from_rows(&rows)).indices.len() as u64
    }

    #[test]
    fn sfs_variants_and_bnl_agree_with_oracle() {
        let ds = Dataset::paper(4_000, 17);
        let d = 4;
        let expect = oracle_size(&ds, d);
        for variant in [
            SfsVariant::Basic,
            SfsVariant::Entropy,
            SfsVariant::EntropyProjection,
        ] {
            let r = run_sfs(&ds, d, 2, variant);
            assert_eq!(r.skyline, expect, "{}", variant.label());
        }
        for input in [BnlInput::Natural, BnlInput::ReverseEntropy] {
            let r = run_bnl(&ds, d, 2, input);
            assert_eq!(r.skyline, expect, "{}", input.label());
        }
    }

    #[test]
    fn window_size_does_not_change_result() {
        let ds = Dataset::paper(3_000, 23);
        let d = 5;
        let base = run_sfs(&ds, d, 50, SfsVariant::EntropyProjection).skyline;
        for w in [1, 2, 8] {
            assert_eq!(
                run_sfs(&ds, d, w, SfsVariant::EntropyProjection).skyline,
                base
            );
            assert_eq!(run_bnl(&ds, d, w, BnlInput::Natural).skyline, base);
        }
    }

    #[test]
    fn big_window_means_single_pass_and_no_extra_io() {
        let ds = Dataset::paper(3_000, 29);
        let r = run_sfs(&ds, 5, 400, SfsVariant::EntropyProjection);
        assert_eq!(r.metrics.passes, 1);
        assert_eq!(r.extra_ios, 0);
        assert_eq!(r.extra_pages_written, 0);
        let b = run_bnl(&ds, 5, 400, BnlInput::Natural);
        assert_eq!(b.metrics.passes, 1);
        assert_eq!(b.extra_ios, 0);
    }

    #[test]
    fn entropy_order_reduces_sfs_extra_io() {
        // The headline §4.3 claim: entropy presort fills the window with
        // strong dominators, shrinking subsequent passes.
        let ds = Dataset::paper(30_000, 31);
        let d = 6;
        let basic = run_sfs(&ds, d, 1, SfsVariant::Basic);
        let entropy = run_sfs(&ds, d, 1, SfsVariant::Entropy);
        assert!(
            entropy.extra_pages_written <= basic.extra_pages_written,
            "entropy {} should not exceed basic {}",
            entropy.extra_pages_written,
            basic.extra_pages_written
        );
    }

    #[test]
    fn re_order_is_adversarial_for_bnl() {
        let ds = Dataset::paper(10_000, 37);
        let d = 5;
        let nat = run_bnl(&ds, d, 1, BnlInput::Natural);
        let re = run_bnl(&ds, d, 1, BnlInput::ReverseEntropy);
        // The batched window kernel prunes part of the adversarial churn,
        // so the gap is narrower than the scalar era's 2×+ — but reverse
        // entropy must still cost decisively more.
        assert!(
            re.metrics.comparisons * 2 > 3 * nat.metrics.comparisons,
            "RE {} vs natural {}",
            re.metrics.comparisons,
            nat.metrics.comparisons
        );
        assert!(re.extra_pages_written >= nat.extra_pages_written);
    }

    #[test]
    fn dimensional_reduction_shrinks_and_preserves_skyline() {
        let spec = WorkloadSpec::small_domain(20_000, 41);
        let ds = Dataset::from_spec(spec);
        let d = 4;
        let (reduced, n_reduced) = dimensional_reduction(&ds, d);
        assert!(n_reduced < ds.n as u64 / 2, "reduced to {n_reduced}");
        // Skyline of the reduced table equals the skyline of the original
        // as a *set of key values* (GROUP BY collapses duplicate tuples,
        // which SFS alone reports once per copy).
        let distinct_keys = |heap: &skyline_storage::HeapFile| {
            let mut scan = heap.scan();
            let mut rows = Vec::new();
            while let Some(r) = scan.next_record().expect("scan") {
                rows.push(
                    (0..d)
                        .map(|i| f64::from(ds.layout.attr(r, i)))
                        .collect::<Vec<_>>(),
                );
            }
            let km = KeyMatrix::from_rows(&rows);
            let mut keys: Vec<Vec<i64>> = algo::naive(&km)
                .indices
                .iter()
                .map(|&i| rows[i].iter().map(|&v| v as i64).collect())
                .collect();
            keys.sort();
            keys.dedup();
            keys
        };
        let full_sky = distinct_keys(&ds.heap);
        let red_sky = distinct_keys(&reduced);
        assert_eq!(red_sky, full_sky);
    }

    #[test]
    fn no_disk_leaks_across_runs() {
        let ds = Dataset::paper(2_000, 43);
        let before = ds.disk.allocated_pages();
        let _ = run_sfs(&ds, 4, 1, SfsVariant::EntropyProjection);
        let _ = run_bnl(&ds, 4, 1, BnlInput::ReverseEntropy);
        assert_eq!(ds.disk.allocated_pages(), before);
    }
}
