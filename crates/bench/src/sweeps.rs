//! One function per paper figure/table, each returning [`ReportTable`]s
//! ready to print and save. The `src/bin/fig*.rs` binaries are thin
//! wrappers; `repro_all` runs everything.

use crate::harness::*;
use crate::report::{ms, ReportTable};
use skyline_core::cardinality::{asymptotic_skyline_size, expected_skyline_size};
use skyline_core::score::SortOrder;
use skyline_core::strata::strata_external;
use skyline_core::SkylineSpec;
use skyline_relation::gen::WorkloadSpec;
use skyline_storage::Disk;
use std::sync::Arc;
use std::time::Instant;

/// Figures 9 & 10: the three SFS variants over a window sweep (d = 7 at
/// paper scale). One sweep produces both the time table (Fig. 9) and the
/// extra-page I/O table (Fig. 10).
pub fn fig09_10(ds: &Dataset, d: usize, windows: &[usize]) -> (ReportTable, ReportTable) {
    let mut time = ReportTable::new(
        format!(
            "Fig 9 — SFS time vs window size (n={}, d={d}; *_2002 adds a \
             simulated vintage disk for the extra pages)",
            ds.n
        ),
        &[
            "window_pages",
            "SFS_ms",
            "SFS_wE_ms",
            "SFS_wEP_ms",
            "SFS_2002_ms",
            "skyline",
        ],
    );
    let mut io = ReportTable::new(
        format!(
            "Fig 10 — SFS extra-page I/Os vs window size (n={}, d={d})",
            ds.n
        ),
        &["window_pages", "SFS_ios", "SFS_wE_ios", "SFS_wEP_ios"],
    );
    for &w in windows {
        let basic = run_sfs(ds, d, w, SfsVariant::Basic);
        let we = run_sfs(ds, d, w, SfsVariant::Entropy);
        let wep = run_sfs(ds, d, w, SfsVariant::EntropyProjection);
        assert_eq!(basic.skyline, we.skyline);
        assert_eq!(we.skyline, wep.skyline);
        let vintage = skyline_storage::DiskCostModel::vintage_2002();
        time.row(vec![
            w.to_string(),
            format!("{:.1}", basic.total_ms()),
            format!("{:.1}", we.total_ms()),
            format!("{:.1}", wep.total_ms()),
            format!("{:.1}", basic.total_ms_with_disk(&vintage)),
            basic.skyline.to_string(),
        ]);
        io.row(vec![
            w.to_string(),
            basic.extra_ios.to_string(),
            we.extra_ios.to_string(),
            wep.extra_ios.to_string(),
        ]);
    }
    (time, io)
}

/// Figure 11: BNL time vs window size for d ∈ {5, 6, 7}, natural order
/// and (curtailed, unless `full`) reverse-entropy order.
pub fn fig11(ds: &Dataset, dims: &[usize], windows: &[usize], full: bool) -> ReportTable {
    let mut t = ReportTable::new(
        format!("Fig 11 — BNL time vs window size (n={})", ds.n),
        &[
            "window_pages",
            "dim",
            "BNL_ms",
            "BNL_wRE_ms",
            "skyline",
            "BNL_comparisons",
        ],
    );
    let re_windows = re_window_limit(ds.n, windows, full);
    for &d in dims {
        for &w in windows {
            let nat = run_bnl(ds, d, w, BnlInput::Natural);
            let re = if re_windows.contains(&w) {
                Some(run_bnl(ds, d, w, BnlInput::ReverseEntropy))
            } else {
                None
            };
            t.row(vec![
                w.to_string(),
                d.to_string(),
                format!("{:.1}", nat.filter_ms),
                re.as_ref()
                    .map_or("curtailed".to_owned(), |r| format!("{:.1}", r.filter_ms)),
                nat.skyline.to_string(),
                nat.metrics.comparisons.to_string(),
            ]);
        }
    }
    t
}

/// Which windows get a BNL w/RE run: the paper curtailed these ("they
/// took hours"); by default only the three smallest windows run.
fn re_window_limit(n: usize, windows: &[usize], full: bool) -> Vec<usize> {
    if full || n <= 20_000 {
        windows.to_vec()
    } else if n <= 300_000 {
        windows.iter().copied().take(3).collect()
    } else {
        // at paper scale a single RE configuration runs for hours —
        // exactly why the paper curtailed them
        Vec::new()
    }
}

/// Figures 12/13 (times) and 14/15 (I/Os): SFS (w/E,P) vs BNL vs
/// BNL w/RE at dimension `d`. Fig 12+14 use d=5; Fig 13+15 use d=7.
pub fn fig_comparison(
    ds: &Dataset,
    d: usize,
    windows: &[usize],
    full: bool,
    fig_time: &str,
    fig_io: &str,
) -> (ReportTable, ReportTable) {
    let mut time = ReportTable::new(
        format!("{fig_time} — times, SFS vs BNL (n={}, d={d})", ds.n),
        &[
            "window_pages",
            "SFS_ms",
            "SFS_sort_ms",
            "SFS_filter_ms",
            "BNL_ms",
            "BNL_wRE_ms",
        ],
    );
    let mut io = ReportTable::new(
        format!("{fig_io} — extra-page I/Os, SFS vs BNL (n={}, d={d})", ds.n),
        &["window_pages", "SFS_ios", "BNL_ios", "BNL_wRE_ios"],
    );
    let re_windows = re_window_limit(ds.n, windows, full);
    for &w in windows {
        let sfs = run_sfs(ds, d, w, SfsVariant::EntropyProjection);
        let bnl = run_bnl(ds, d, w, BnlInput::Natural);
        let re = if re_windows.contains(&w) {
            Some(run_bnl(ds, d, w, BnlInput::ReverseEntropy))
        } else {
            None
        };
        assert_eq!(sfs.skyline, bnl.skyline);
        time.row(vec![
            w.to_string(),
            format!("{:.1}", sfs.total_ms()),
            format!("{:.1}", sfs.sort_ms),
            format!("{:.1}", sfs.filter_ms),
            format!("{:.1}", bnl.filter_ms),
            re.as_ref()
                .map_or("curtailed".to_owned(), |r| format!("{:.1}", r.filter_ms)),
        ]);
        io.row(vec![
            w.to_string(),
            sfs.extra_ios.to_string(),
            bnl.extra_ios.to_string(),
            re.as_ref()
                .map_or("curtailed".to_owned(), |r| r.extra_ios.to_string()),
        ]);
    }
    (time, io)
}

/// §5 text: skyline sizes per dimension (the paper's 1,651 / 5,357 /
/// 14,081 at d = 5/6/7 over 1M tuples), next to the expected-size model.
pub fn table_skyline_sizes(ds: &Dataset, dims: &[usize]) -> ReportTable {
    let mut t = ReportTable::new(
        format!("Skyline sizes by dimension (n={})", ds.n),
        &["dim", "skyline", "expected_exact", "expected_asymptotic"],
    );
    for &d in dims {
        let r = run_sfs(ds, d, 2_000, SfsVariant::EntropyProjection);
        t.row(vec![
            d.to_string(),
            r.skyline.to_string(),
            format!("{:.0}", expected_skyline_size(ds.n, d)),
            format!("{:.0}", asymptotic_skyline_size(ds.n, d)),
        ]);
    }
    t
}

/// §5 text: sort-phase times — nested sort over 7 attributes vs the
/// single-attribute entropy sort (57 s vs 37 s in the paper).
///
/// The paper's nested sort compares up to `d` attributes per comparison,
/// while the entropy sort compares one precomputed score — that is the
/// whole effect. Our engine also supports decorate-sort-undecorate (DSU)
/// prefix keys for *both* orders, so the table reports three rows: the
/// paper's pairing (multi-attribute nested vs single-key entropy) plus
/// nested-with-DSU, which closes most of the gap.
pub fn table_sort_times(ds: &Dataset, d: usize) -> ReportTable {
    let mut t = ReportTable::new(
        format!(
            "Sort-phase times (n={}, d={d}, 1000-page sort buffer)",
            ds.n
        ),
        &["order", "time", "records"],
    );
    let (t_ms, n) = run_sort_only_no_dsu(ds, d);
    t.row(vec![
        "nested (multi-attr cmp, as in paper)".into(),
        ms(t_ms),
        n.to_string(),
    ]);
    for (label, order) in [
        ("entropy (single-key, as in paper)", SortOrder::Entropy),
        ("nested (with DSU prefix key)", SortOrder::Nested),
    ] {
        let (t_ms, n) = run_sort_only(ds, d, order);
        t.row(vec![label.to_owned(), ms(t_ms), n.to_string()]);
    }
    t
}

/// §5 text: dimensional reduction on small-domain datasets (d = 4, group
/// by the first three attributes, MAX on the fourth).
///
/// Two domains: the paper's stated 0–9 (where at any realistic scale the
/// 10³ = 1,000 possible groups saturate — an even stronger reduction than
/// the paper reports), and a domain sized so the group count is ~10% of
/// `n` — the regime the paper's reported numbers (1M → 99,826 ≈ 10%)
/// correspond to.
pub fn table_dimred(n: usize, seed: u64) -> ReportTable {
    let d = 4;
    let mut t = ReportTable::new(
        format!("Dimensional reduction (n={n}, d={d}, GROUP BY a1..a3, MAX(a4))"),
        &[
            "domain",
            "input",
            "reduced",
            "reduction",
            "reduce_time",
            "skyline",
        ],
    );
    // domain giving ~n/10 groups: (hi+1)^(d-1) ≈ n/10
    let adaptive_hi = ((n as f64 / 10.0).powf(1.0 / (d as f64 - 1.0)).round() as i32 - 1).max(1);
    for hi in [9, adaptive_hi] {
        let spec = WorkloadSpec {
            domain: (0, hi),
            ..WorkloadSpec::paper(n, seed)
        };
        let ds = Dataset::from_spec(spec);
        let t0 = Instant::now();
        let (reduced, n_reduced) = dimensional_reduction(&ds, d);
        let reduce_ms = t0.elapsed().as_secs_f64() * 1e3;
        let full = run_sfs(&ds, d, 500, SfsVariant::EntropyProjection);
        t.row(vec![
            format!("0–{hi}"),
            n.to_string(),
            n_reduced.to_string(),
            format!("{:.1}%", 100.0 * n_reduced as f64 / n as f64),
            ms(reduce_ms),
            full.skyline.to_string(),
        ]);
        reduced.delete();
    }
    t
}

/// §5 text: the first four skyline strata at d = 4 and d = 5 with a
/// 500-page window (paper: d=4 sizes 460/1,430/2,766/4,444 in 118 s;
/// d=5 sizes 1,651/5,749/11,879/19,020 in 723 s).
pub fn table_strata(ds: &Dataset, dims: &[usize], window_pages: usize) -> ReportTable {
    let mut t = ReportTable::new(
        format!(
            "Skyline strata (n={}, window={window_pages} pages, k=4)",
            ds.n
        ),
        &["dim", "s0", "s1", "s2", "s3", "time"],
    );
    for &d in dims {
        let spec = SkylineSpec::max_all(d);
        let t0 = Instant::now();
        let res = strata_external(
            Arc::clone(&ds.heap),
            ds.layout,
            &spec,
            4,
            window_pages,
            1000,
            SortOrder::Entropy,
            Some(ds.entropy(d)),
            Arc::clone(&ds.disk) as Arc<dyn Disk>,
        )
        .expect("strata");
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        let sizes: Vec<u64> = res
            .strata
            .iter()
            .map(skyline_storage::HeapFile::len)
            .collect();
        let get = |i: usize| sizes.get(i).map_or("-".to_owned(), u64::to_string);
        t.row(vec![
            d.to_string(),
            get(0),
            get(1),
            get(2),
            get(3),
            ms(elapsed),
        ]);
    }
    t
}

/// §6's correlation caveat: "with anti-correlated attributes … the size
/// of the skyline can be huge … both SFS (and BNL) will degenerate into
/// |R|/|Window| number of passes." Sweep the three canonical
/// distributions at a fixed small window and report skyline fraction,
/// passes, and times.
pub fn table_distributions(n: usize, seed: u64, d: usize, window_pages: usize) -> ReportTable {
    use skyline_relation::gen::Distribution;
    let mut t = ReportTable::new(
        format!("Distribution sweep (n={n}, d={d}, window={window_pages} pages)"),
        &[
            "distribution",
            "skyline",
            "skyline_frac",
            "SFS_passes",
            "SFS_ms",
            "BNL_ms",
        ],
    );
    let dists = [
        ("correlated", Distribution::Correlated { jitter: 0.05 }),
        ("uniform", Distribution::UniformIndependent),
        (
            "anti-correlated",
            Distribution::AntiCorrelated { jitter: 0.05 },
        ),
    ];
    for (label, dist) in dists {
        // correlation structure must span exactly the skyline attributes,
        // so these records carry d attributes (padded back to 100 bytes)
        let spec = WorkloadSpec {
            dist,
            domain: (0, 10_000),
            layout: skyline_relation::RecordLayout::new(d, 100 - 4 * d),
            ..WorkloadSpec::paper(n, seed)
        };
        let ds = Dataset::from_spec(spec);
        let sfs = run_sfs(&ds, d, window_pages, SfsVariant::EntropyProjection);
        let bnl = run_bnl(&ds, d, window_pages, BnlInput::Natural);
        assert_eq!(sfs.skyline, bnl.skyline);
        t.row(vec![
            label.to_owned(),
            sfs.skyline.to_string(),
            format!("{:.3}", sfs.skyline as f64 / n as f64),
            sfs.metrics.passes.to_string(),
            format!("{:.1}", sfs.total_ms()),
            format!("{:.1}", bnl.filter_ms),
        ]);
    }
    t
}

/// §4.2's clustered-index hazard: BNL's run time depends on the order
/// its input happens to arrive in, and a clustered tree index makes
/// "random" arrival impossible. Compare BNL over heap (random) order vs
/// index order ascending/descending on attribute 0, with SFS — which
/// re-sorts anyway — for reference.
pub fn table_clustered(ds: &Dataset, d: usize, window_pages: usize) -> ReportTable {
    let mut t = ReportTable::new(
        format!(
            "Clustered-index input orders (n={}, d={d}, window={window_pages} pages)",
            ds.n
        ),
        &[
            "input order",
            "ms",
            "comparisons",
            "temp_records",
            "skyline",
        ],
    );
    let mut push = |label: &str, r: &RunResult| {
        t.row(vec![
            label.to_owned(),
            format!("{:.1}", r.total_ms()),
            r.metrics.comparisons.to_string(),
            r.metrics.temp_records.to_string(),
            r.skyline.to_string(),
        ]);
    };
    let heap = run_bnl(ds, d, window_pages, BnlInput::Natural);
    push("BNL, heap (random) order", &heap);
    let desc = run_bnl_clustered(ds, d, window_pages, false);
    push("BNL, index a0 DESC (lucky)", &desc);
    let asc = run_bnl_clustered(ds, d, window_pages, true);
    push("BNL, index a0 ASC (unlucky)", &asc);
    let sfs = run_sfs(ds, d, window_pages, SfsVariant::EntropyProjection);
    push("SFS w/E,P (order-immune)", &sfs);
    assert_eq!(heap.skyline, desc.skyline);
    assert_eq!(heap.skyline, asc.skyline);
    assert_eq!(heap.skyline, sfs.skyline);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_orders_change_bnl_cost_not_result() {
        let ds = Dataset::paper(8_000, 101);
        let t = table_clustered(&ds, 4, 1);
        let text = t.render();
        let rows: Vec<Vec<String>> = text
            .lines()
            .skip(3)
            .map(|l| {
                // label contains spaces: split from the right
                let cells: Vec<&str> = l.split_whitespace().collect();
                let n = cells.len();
                cells[n - 4..].iter().map(|s| (*s).to_owned()).collect()
            })
            .collect();
        let comps = |i: usize| rows[i][1].parse::<u64>().unwrap();
        // unlucky (ascending) order costs BNL more comparisons than lucky
        assert!(comps(2) > comps(1), "{text}");
    }

    #[test]
    fn distributions_table_shows_degeneration() {
        let t = table_distributions(4_000, 97, 4, 1);
        let text = t.render();
        let rows: Vec<Vec<&str>> = text
            .lines()
            .skip(3)
            .map(|l| l.split_whitespace().collect())
            .collect();
        let skyline = |i: usize| rows[i][1].parse::<u64>().unwrap();
        let passes = |i: usize| rows[i][3].parse::<u64>().unwrap();
        // skyline sizes: correlated < uniform < anti-correlated
        assert!(skyline(0) < skyline(1), "{text}");
        assert!(skyline(1) < skyline(2), "{text}");
        // anti-correlated with a tiny window needs the most passes
        assert!(passes(2) >= passes(1), "{text}");
    }

    #[test]
    fn fig09_10_shapes_hold_at_small_scale() {
        let ds = Dataset::paper(20_000, 71);
        let windows = [1, 4, 64];
        let (time, io) = fig09_10(&ds, 5, &windows);
        assert_eq!(time.render().lines().count(), 3 + windows.len());
        // at the largest window everything is single-pass: zero extra I/O
        let io_text = io.render();
        let last = io_text.lines().last().unwrap();
        assert!(last.split_whitespace().skip(1).all(|c| c == "0"), "{last}");
    }

    #[test]
    fn comparison_tables_well_formed() {
        let ds = Dataset::paper(5_000, 73);
        let (time, io) = fig_comparison(&ds, 4, &[2, 50], true, "Fig 12", "Fig 14");
        assert!(time.render().contains("Fig 12"));
        assert!(io.render().contains("Fig 14"));
    }

    #[test]
    fn skyline_sizes_grow_with_dimension() {
        let ds = Dataset::paper(5_000, 79);
        let t = table_skyline_sizes(&ds, &[2, 4, 6]);
        let text = t.render();
        let sizes: Vec<u64> = text
            .lines()
            .skip(3)
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }

    #[test]
    fn strata_table_runs() {
        let ds = Dataset::paper(3_000, 83);
        let t = table_strata(&ds, &[4], 50);
        assert!(t.render().contains("4"));
    }

    #[test]
    fn dimred_table_runs() {
        let t = table_dimred(5_000, 89);
        let text = t.render();
        assert!(text.contains("0–9"));
        // two rows: paper domain + adaptive ~10% domain
        assert_eq!(text.lines().count(), 3 + 2);
    }
}
