//! Minimal, dependency-free stand-in for the subset of the `criterion`
//! API the benches use.
//!
//! The container building this repo has no network access to crates.io,
//! so the benches run on this shim instead: same structure (`Criterion`,
//! groups, `BenchmarkId`, `criterion_group!`/`criterion_main!`), wall-clock
//! timing over `sample_size` samples, and a one-line min/median/mean
//! report per benchmark. It is deliberately simple — no outlier analysis,
//! no HTML reports — but keeps every bench binary compiling and usable
//! for relative comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { crit: self }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, f);
    }
}

/// A named group of related benchmarks (shim for criterion's group).
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.crit.sample_size, f);
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.to_string(), self.crit.sample_size, |b| f(b, input));
    }

    /// End the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Benchmark identifier: a function name plus a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `new("sfs", 100_000)` → `sfs/100000`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, recording one sample per call batch.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    // warm-up sample, discarded
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!("  {label}: min {min:?}  median {median:?}  mean {mean:?}  ({sample_size} samples)");
}

/// Shim for `criterion::criterion_group!` — both the plain and the
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut crit = $config;
            $( $target(&mut crit); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::crit::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Shim for `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("shim");
            g.bench_function("counts", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("sfs", 100).to_string(), "sfs/100");
    }
}
