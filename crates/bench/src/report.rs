//! Tabular output helpers: aligned console tables plus CSV files under
//! `results/` for downstream plotting.

use skyline_storage::write_text;
use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table with a title, printed to stdout and
/// optionally saved as CSV.
pub struct ReportTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ReportTable {
    /// Start a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        ReportTable {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |out: &mut String, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                let pad = widths[i] - c.len();
                // right-align numbers, left-align first col
                if i == 0 {
                    let _ = write!(out, "{c}{} ", " ".repeat(pad + 1));
                } else {
                    let _ = write!(out, "{}{c}  ", " ".repeat(pad));
                }
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write as CSV under `dir` (created if needed), named
    /// `<slug>.csv`.
    ///
    /// # Errors
    /// I/O errors creating or writing the file.
    pub fn save_csv(&self, dir: impl AsRef<Path>, slug: &str) -> std::io::Result<()> {
        let path = dir.as_ref().join(format!("{slug}.csv"));
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for r in &self.rows {
            let _ = writeln!(csv, "{}", r.join(","));
        }
        write_text(&path, &csv)?;
        eprintln!("wrote {}", path.display());
        Ok(())
    }
}

/// Write `contents` to `path` verbatim — the saving side of every
/// bench report (JSON baselines, rendered tables).
///
/// # Errors
/// I/O errors creating or writing the file.
pub fn save_text(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    write_text(path.as_ref(), contents)
}

/// Format milliseconds compactly.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2}s", v / 1000.0)
    } else {
        format!("{v:.1}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ReportTable::new("demo", &["name", "x"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "23".into()]);
        let r = t.render();
        assert!(r.contains("# demo"));
        assert!(r.contains("longer"));
    }

    #[test]
    fn csv_round_trip() {
        let mut t = ReportTable::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join(format!("skyline-report-{}", std::process::id()));
        t.save_csv(&dir, "demo").unwrap();
        let text = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(12.34), "12.3ms");
        assert_eq!(ms(2500.0), "2.50s");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ReportTable::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
