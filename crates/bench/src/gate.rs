//! The PR perf gate for the parallel external SFS pipeline.
//!
//! Runs the seed-2003 paper workload through
//! [`skyline_core::planner::presort_threaded`] +
//! [`skyline_core::parallel_sfs_filter`] across a grid of thread counts
//! and reports, per thread count: sort and filter wall time, dominance
//! comparisons (aggregate and critical-path), filter-phase extra pages,
//! skyline size, and an order-independent checksum of the skyline keys.
//!
//! Two speedup numbers are reported, deliberately:
//!
//! * **wall** — measured filter wall-clock at `t=1` over `t=k`. Only
//!   meaningful when the machine actually has `k` cores; on a one-core
//!   container the threads time-slice and wall speedup is ≈1 by physics.
//! * **model** — sequential comparisons over the parallel *critical
//!   path* (the maximum per-worker comparison count plus the merge's).
//!   Dominance comparisons are the paper's own machine-independent cost
//!   measure and the workload is seeded, so this number is deterministic
//!   and reproducible on any machine.
//!
//! [`GateSection::validate`] therefore always enforces the model
//! speedup and enforces the wall speedup only when
//! `available_parallelism` covers the largest thread count. The
//! regression gate (`cargo xtask bench --gate`) compares a fresh run
//! against the committed `BENCH_pr5.json` the same way: deterministic
//! fields must match exactly, wall times within a tolerance. It also
//! replays each section's workload through the **scalar** reference
//! window ([`SfsConfig::with_scalar_window`]) and asserts the skyline is
//! bit-identical to the block kernel's, and reports the new block-kernel
//! counters (`blocks_skipped`, `lanes_compared`) per run.
//!
//! # Batch sections
//!
//! Sections with [`GateSpec::batch`] set run the same workload through
//! the columnar pipeline instead: [`skyline_core::batch_presort`] over
//! narrow key entries, then [`skyline_core::parallel_batch_filter`]
//! (strided batch SFS workers, prefix merge, late materialization of
//! the wide rows at emission). Batch runs report the pipeline-wide
//! movement counters `batches`, `rows_materialized`, and `bytes_moved`
//! measured by [`SkylineMetrics`]; row runs report analytically derived
//! equivalents (the row operators move whole records at every stage),
//! so `cargo xtask bench --gate` can assert the columnar pipeline
//! strictly reduces data movement at an identical skyline.

use crate::harness::Dataset;
use skyline_core::planner::presort_threaded;
use skyline_core::score::SortOrder;
use skyline_core::{
    batch_presort, parallel_batch_filter, parallel_sfs_filter, BatchConfig, KeySumScore,
    MetricsSnapshot, SfsConfig, SkylineMetrics, SkylineSpec,
};
use skyline_exec::NarrowLayout;
use skyline_storage::Disk;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Workload seed shared by every gate section (the paper's year).
pub const GATE_SEED: u64 = 2003;

/// Pages the presort phase may use (the paper's sort allocation).
pub const SORT_PAGES: usize = 1000;

/// One benchmark section: a workload size and a thread grid.
#[derive(Debug, Clone, Copy)]
pub struct GateSpec {
    /// Section name in the JSON report ("full" or "smoke").
    pub label: &'static str,
    /// Tuple count.
    pub n: usize,
    /// Skyline dimensions (all-max over the first `d` attributes).
    pub d: usize,
    /// Filter window budget in pages.
    pub window_pages: usize,
    /// Thread counts to sweep, ascending, starting at 1.
    pub threads: &'static [usize],
    /// Run the columnar batch pipeline instead of the row pipeline.
    pub batch: bool,
}

/// The acceptance-criteria grid: d=7, n=100k, entropy presort.
pub const FULL: GateSpec = GateSpec {
    label: "full",
    n: 100_000,
    d: 7,
    window_pages: 64,
    threads: &[1, 2, 4],
    batch: false,
};

/// A CI-sized section that finishes in seconds.
pub const SMOKE: GateSpec = GateSpec {
    label: "smoke",
    n: 20_000,
    d: 7,
    window_pages: 16,
    threads: &[1, 2],
    batch: false,
};

/// The full grid through the columnar batch pipeline — same workload,
/// seed, and thread sweep as [`FULL`], paired with it by the gate.
pub const FULL_BATCH: GateSpec = GateSpec {
    label: "full-batch",
    n: 100_000,
    d: 7,
    window_pages: 64,
    threads: &[1, 2, 4],
    batch: true,
};

/// The CI-sized grid through the columnar batch pipeline, paired with
/// [`SMOKE`].
pub const SMOKE_BATCH: GateSpec = GateSpec {
    label: "smoke-batch",
    n: 20_000,
    d: 7,
    window_pages: 16,
    threads: &[1, 2],
    batch: true,
};

/// Measurements for one thread count.
#[derive(Debug, Clone, Copy)]
pub struct ThreadRun {
    /// Worker threads requested (and, here, used — the gate workloads
    /// never trigger the DIFF/collect-rest single-partition fallback).
    pub threads: usize,
    /// Presort wall time, milliseconds.
    pub sort_ms: f64,
    /// Filter (partitioned SFS + winnow merge) wall time, milliseconds.
    pub filter_ms: f64,
    /// Aggregate dominance comparisons (workers + merge). Deterministic.
    pub comparisons: u64,
    /// Critical-path comparisons: `max(worker) + max(merge verifier)`
    /// (whole merge when the sequential fallback ran). Deterministic.
    pub critical_path: u64,
    /// Filter-phase temp traffic: pages written plus re-read beyond the
    /// one input scan.
    pub extra_pages: u64,
    /// External-pass count across workers and merge. Deterministic.
    pub passes: u64,
    /// Records spilled to temp files during the filter. Deterministic.
    pub temp_records: u64,
    /// Window insertions across workers and merge. Deterministic.
    pub window_inserts: u64,
    /// Records discarded as dominated. Deterministic.
    pub discarded: u64,
    /// Records emitted into the skyline (and winnow intermediates).
    pub emitted: u64,
    /// Records pulled from the filter inputs. Deterministic.
    pub input_records: u64,
    /// Whole blocks the columnar window kernel pruned via per-block
    /// summaries or the Theorem 4 score cutoff. Deterministic.
    pub blocks_skipped: u64,
    /// Physical f64 lanes the batched kernel examined. Deterministic.
    pub lanes_compared: u64,
    /// Column-major key batches formed across the whole pipeline
    /// (presort scan plus filter reloads); zero on row sections.
    /// Deterministic.
    pub batches: u64,
    /// Full-width rows materialized. Batch sections measure the late
    /// materialization at emission (exactly the skyline cardinality);
    /// row sections report the analytic equivalent `n + temp_records +
    /// emitted` — every record the row operators handled at full width.
    /// Deterministic.
    pub rows_materialized: u64,
    /// Modeled bytes crossing stage boundaries. Batch sections measure
    /// it ([`SkylineMetrics`]); row sections report the analytic
    /// equivalent `record_size × (3n + 2·temp_records + emitted)` —
    /// scan, sort write + read, spill write + re-read, and emission,
    /// all at full record width. Deterministic.
    pub bytes_moved: u64,
    /// Bytes serialized through the shard exchange. Always zero here:
    /// the row and batch sections are single-node; the sharded gate
    /// (`crate::shard_gate`) is where this counter moves. Carried so
    /// every [`SkylineMetrics`] counter lands in the report schema.
    pub bytes_exchanged: u64,
    /// Frames crossing the shard exchange; zero on single-node sections.
    pub exchange_frames: u64,
    /// Local-skyline entries dropped by broadcast representatives before
    /// serialization; zero on single-node sections.
    pub pruned_by_representatives: u64,
    /// Skyline cardinality.
    pub skyline: u64,
    /// FNV-1a over the sorted skyline key rows — order-independent.
    pub checksum: u64,
}

/// A completed section: config echo, machine info, per-thread runs.
#[derive(Debug, Clone)]
pub struct GateSection {
    /// The spec this section ran.
    pub spec: GateSpec,
    /// `available_parallelism` at run time (1 on this container ⇒ wall
    /// speedup is not enforceable).
    pub cores: usize,
    /// One entry per thread count, in `spec.threads` order.
    pub runs: Vec<ThreadRun>,
}

impl GateSection {
    fn run_at(&self, threads: usize) -> Option<&ThreadRun> {
        self.runs.iter().find(|r| r.threads == threads)
    }

    /// Measured wall-clock filter speedup of `threads` vs 1.
    pub fn speedup_wall(&self, threads: usize) -> Option<f64> {
        let base = self.run_at(1)?.filter_ms;
        let at = self.run_at(threads)?.filter_ms;
        (at > 0.0).then(|| base / at)
    }

    /// Deterministic model speedup: sequential comparisons over the
    /// parallel critical path at `threads`.
    pub fn speedup_model(&self, threads: usize) -> Option<f64> {
        let base = self.run_at(1)?.comparisons;
        let at = self.run_at(threads)?.critical_path;
        (at > 0).then(|| base as f64 / at as f64)
    }

    /// Structural checks (always) plus the speedup gate (when
    /// `enforce_speedup`): every thread count must produce the same
    /// skyline (count and checksum), and at the largest thread count the
    /// model speedup must reach `min_speedup`; the wall speedup must too,
    /// but only when the machine has that many cores.
    ///
    /// # Errors
    /// A human-readable description of the first violated check.
    pub fn validate(&self, enforce_speedup: bool, min_speedup: f64) -> Result<(), String> {
        let base = self
            .run_at(1)
            .ok_or_else(|| format!("{}: no threads=1 run", self.spec.label))?;
        for r in &self.runs {
            if (r.skyline, r.checksum) != (base.skyline, base.checksum) {
                return Err(format!(
                    "{}: threads={} skyline ({}, {:#018x}) differs from threads=1 ({}, {:#018x})",
                    self.spec.label, r.threads, r.skyline, r.checksum, base.skyline, base.checksum
                ));
            }
        }
        if !enforce_speedup {
            return Ok(());
        }
        let top = *self.spec.threads.iter().max().unwrap_or(&1);
        let model = self.speedup_model(top).unwrap_or(0.0);
        if model < min_speedup {
            return Err(format!(
                "{}: model speedup {model:.2}× at threads={top} below the {min_speedup:.1}× gate",
                self.spec.label
            ));
        }
        if self.cores >= top {
            let wall = self.speedup_wall(top).unwrap_or(0.0);
            if wall < min_speedup {
                return Err(format!(
                    "{}: wall speedup {wall:.2}× at threads={top} below the {min_speedup:.1}× \
                     gate ({} cores available)",
                    self.spec.label, self.cores
                ));
            }
        }
        Ok(())
    }
}

/// FNV-1a 64 over the sorted key rows — identical skylines hash alike
/// regardless of emission order (the parallel merge permutes it).
pub(crate) fn skyline_checksum(mut rows: Vec<Vec<i32>>) -> u64 {
    rows.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for row in &rows {
        for v in row {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

pub(crate) fn sum(snaps: &[MetricsSnapshot]) -> MetricsSnapshot {
    snaps
        .iter()
        .fold(MetricsSnapshot::default(), |acc, s| acc.plus(s))
}

/// Read the first `d` attributes of every record in a skyline heap.
pub(crate) fn collect_rows(
    skyline: &skyline_storage::HeapFile,
    ds: &Dataset,
    d: usize,
) -> Vec<Vec<i32>> {
    let mut rows = Vec::with_capacity(skyline.len() as usize);
    let mut scan = skyline.scan();
    while let Some(r) = scan.next_record().expect("scan skyline") {
        rows.push((0..d).map(|i| ds.layout.attr(r, i)).collect());
    }
    rows
}

/// One row-pipeline measurement: threaded entropy presort plus the
/// partitioned row SFS filter, with the exact-aggregation identity
/// (`caller metrics == Σ workers + merge`) asserted to the counter.
fn row_run(
    ds: &Dataset,
    spec: &GateSpec,
    sky_spec: &SkylineSpec,
    t: usize,
    base_pages: u64,
) -> ThreadRun {
    let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;
    let t0 = Instant::now();
    let mut sorted = presort_threaded(
        Arc::clone(&ds.heap),
        ds.layout,
        sky_spec.clone(),
        SortOrder::Entropy,
        Some(ds.entropy(spec.d)),
        SORT_PAGES,
        t,
        Arc::clone(&disk),
    )
    .expect("presort");
    let sort_ms = t0.elapsed().as_secs_f64() * 1e3;
    sorted.mark_temp();
    let sorted = Arc::new(sorted);
    let input_pages = sorted.num_pages();

    let metrics = SkylineMetrics::shared();
    let io_before = ds.disk.stats().snapshot();
    let t1 = Instant::now();
    let outcome = parallel_sfs_filter(
        Arc::clone(&sorted),
        ds.layout,
        sky_spec.clone(),
        SfsConfig::new(spec.window_pages),
        t,
        Arc::clone(&disk),
        Arc::clone(&metrics),
        None,
        None,
    )
    .expect("parallel filter");
    let filter_ms = t1.elapsed().as_secs_f64() * 1e3;
    let io = ds.disk.stats().snapshot().since(&io_before);
    let extra_pages = io.writes + io.reads.saturating_sub(input_pages);

    // exact aggregation: the caller's metrics must equal the sum of
    // every worker snapshot plus the merge snapshot, to the counter.
    let agg = metrics.snapshot();
    let parts = sum(&outcome.worker_metrics).plus(&outcome.merge_metrics);
    assert_eq!(
        agg, parts,
        "aggregate metrics must equal Σ workers + merge (threads={t})"
    );
    // merge leg: slowest verifier of the parallel in-memory merge,
    // or the whole sequential winnow when the fallback ran
    let merge_leg = outcome
        .merge_worker_metrics
        .iter()
        .map(|m| m.comparisons)
        .max()
        .unwrap_or(outcome.merge_metrics.comparisons);
    let critical_path = outcome
        .worker_metrics
        .iter()
        .map(|m| m.comparisons)
        .max()
        .unwrap_or(0)
        + merge_leg;

    let rows = collect_rows(&outcome.skyline, ds, spec.d);
    let skyline = outcome.skyline.len();
    let checksum = skyline_checksum(rows);

    outcome.skyline.delete();
    drop(sorted); // temp: self-deletes
    assert_eq!(
        ds.disk.allocated_pages(),
        base_pages,
        "gate run must not leak pages (threads={t})"
    );

    // Analytic equivalents of the batch pipeline's movement counters:
    // the row operators touch whole records at every stage — one input
    // scan plus sort write and read (3n), spill write plus re-read, and
    // emission. `batches` is zero by definition on the row path.
    let n = spec.n as u64;
    let record = ds.layout.record_size() as u64;

    ThreadRun {
        threads: t,
        sort_ms,
        filter_ms,
        comparisons: agg.comparisons,
        critical_path,
        extra_pages,
        passes: agg.passes,
        temp_records: agg.temp_records,
        window_inserts: agg.window_inserts,
        discarded: agg.discarded,
        emitted: agg.emitted,
        input_records: agg.input_records,
        blocks_skipped: agg.blocks_skipped,
        lanes_compared: agg.lanes_compared,
        batches: 0,
        rows_materialized: n + agg.temp_records + agg.emitted,
        bytes_moved: record * (3 * n + 2 * agg.temp_records + agg.emitted),
        bytes_exchanged: agg.bytes_exchanged,
        exchange_frames: agg.exchange_frames,
        pruned_by_representatives: agg.pruned_by_representatives,
        skyline,
        checksum,
    }
}

/// One batch-pipeline measurement: narrow [`batch_presort`] plus
/// [`parallel_batch_filter`] (strided batch SFS workers, prefix merge,
/// late materialization), with the exact-aggregation identity extended
/// to the materialize stage. The movement counters are measured by
/// [`SkylineMetrics`] across the whole pipeline (presort + filter).
fn batch_run(
    ds: &Dataset,
    spec: &GateSpec,
    sky_spec: &SkylineSpec,
    t: usize,
    base_pages: u64,
) -> ThreadRun {
    let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;
    let presort_metrics = SkylineMetrics::shared();
    let t0 = Instant::now();
    let mut sorted = batch_presort(
        Arc::clone(&ds.heap),
        &ds.layout,
        sky_spec,
        Arc::new(KeySumScore),
        skyline_exec::batch::BATCH_ROWS,
        SORT_PAGES,
        t,
        Arc::clone(&disk),
        Arc::clone(&presort_metrics),
        None,
    )
    .expect("batch presort");
    let sort_ms = t0.elapsed().as_secs_f64() * 1e3;
    sorted.mark_temp();
    let sorted = Arc::new(sorted);
    let input_pages = sorted.num_pages();

    let metrics = SkylineMetrics::shared();
    let io_before = ds.disk.stats().snapshot();
    let t1 = Instant::now();
    let outcome = parallel_batch_filter(
        Arc::clone(&sorted),
        Arc::clone(&ds.heap),
        NarrowLayout::new(spec.d),
        BatchConfig::new(spec.window_pages),
        t,
        Arc::clone(&disk),
        Arc::clone(&metrics),
        None,
        None,
    )
    .expect("parallel batch filter");
    let filter_ms = t1.elapsed().as_secs_f64() * 1e3;
    let io = ds.disk.stats().snapshot().since(&io_before);
    let extra_pages = io.writes + io.reads.saturating_sub(input_pages);

    // exact aggregation, extended by the late-materialization stage:
    // caller metrics == Σ workers + merge + materialize, to the counter.
    let agg = metrics.snapshot();
    let parts = sum(&outcome.worker_metrics)
        .plus(&outcome.merge_metrics)
        .plus(&outcome.materialize_metrics);
    assert_eq!(
        agg, parts,
        "aggregate metrics must equal Σ workers + merge + materialize (threads={t})"
    );
    let merge_leg = outcome
        .merge_worker_metrics
        .iter()
        .map(|m| m.comparisons)
        .max()
        .unwrap_or(outcome.merge_metrics.comparisons);
    let critical_path = outcome
        .worker_metrics
        .iter()
        .map(|m| m.comparisons)
        .max()
        .unwrap_or(0)
        + merge_leg;

    let rows = collect_rows(&outcome.skyline, ds, spec.d);
    let skyline = outcome.skyline.len();
    let checksum = skyline_checksum(rows);
    assert_eq!(
        agg.rows_materialized, skyline,
        "late materialization must touch exactly the skyline rows (threads={t})"
    );

    outcome.skyline.delete();
    drop(sorted); // temp: self-deletes
    assert_eq!(
        ds.disk.allocated_pages(),
        base_pages,
        "gate run must not leak pages (threads={t})"
    );

    // movement counters span the whole pipeline: presort scan + sort
    // plus the filter/merge/materialize stages measured above
    let total = agg.plus(&presort_metrics.snapshot());

    ThreadRun {
        threads: t,
        sort_ms,
        filter_ms,
        comparisons: agg.comparisons,
        critical_path,
        extra_pages,
        passes: agg.passes,
        temp_records: agg.temp_records,
        window_inserts: agg.window_inserts,
        discarded: agg.discarded,
        emitted: agg.emitted,
        input_records: agg.input_records,
        blocks_skipped: agg.blocks_skipped,
        lanes_compared: agg.lanes_compared,
        batches: total.batches,
        rows_materialized: total.rows_materialized,
        bytes_moved: total.bytes_moved,
        bytes_exchanged: total.bytes_exchanged,
        exchange_frames: total.exchange_frames,
        pruned_by_representatives: total.pruned_by_representatives,
        skyline,
        checksum,
    }
}

/// Run one section of the gate grid.
///
/// # Panics
/// Panics when a pipeline stage fails or when the parallel filter's
/// metrics break the exact-aggregation identity — in a benchmark a wrong
/// answer must not produce a plausible-looking report.
pub fn run_section(spec: &GateSpec) -> GateSection {
    let ds = Dataset::paper(spec.n, GATE_SEED);
    let sky_spec = SkylineSpec::max_all(spec.d);
    let base_pages = ds.disk.allocated_pages();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut runs = Vec::new();
    for &t in spec.threads {
        runs.push(if spec.batch {
            batch_run(&ds, spec, &sky_spec, t, base_pages)
        } else {
            row_run(&ds, spec, &sky_spec, t, base_pages)
        });
    }

    // Kernel cross-check: the scalar reference window must produce the
    // bit-identical skyline (count and checksum) the block kernel did.
    {
        let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;
        let (len, ck) = if spec.batch {
            let mut sorted = batch_presort(
                Arc::clone(&ds.heap),
                &ds.layout,
                &sky_spec,
                Arc::new(KeySumScore),
                skyline_exec::batch::BATCH_ROWS,
                SORT_PAGES,
                1,
                Arc::clone(&disk),
                SkylineMetrics::shared(),
                None,
            )
            .expect("batch presort (scalar cross-check)");
            sorted.mark_temp();
            let outcome = parallel_batch_filter(
                Arc::new(sorted),
                Arc::clone(&ds.heap),
                NarrowLayout::new(spec.d),
                BatchConfig::new(spec.window_pages).with_scalar_window(),
                1,
                disk,
                SkylineMetrics::shared(),
                None,
                None,
            )
            .expect("scalar-window batch filter");
            let rows = collect_rows(&outcome.skyline, &ds, spec.d);
            let out = (outcome.skyline.len(), skyline_checksum(rows));
            outcome.skyline.delete();
            out
        } else {
            let mut sorted = presort_threaded(
                Arc::clone(&ds.heap),
                ds.layout,
                sky_spec.clone(),
                SortOrder::Entropy,
                Some(ds.entropy(spec.d)),
                SORT_PAGES,
                1,
                Arc::clone(&disk),
            )
            .expect("presort (scalar cross-check)");
            sorted.mark_temp();
            let outcome = parallel_sfs_filter(
                Arc::new(sorted),
                ds.layout,
                sky_spec,
                SfsConfig::new(spec.window_pages).with_scalar_window(),
                1,
                disk,
                SkylineMetrics::shared(),
                None,
                None,
            )
            .expect("scalar-window filter");
            let rows = collect_rows(&outcome.skyline, &ds, spec.d);
            let out = (outcome.skyline.len(), skyline_checksum(rows));
            outcome.skyline.delete();
            out
        };
        let base = runs.first().expect("threads grid is non-empty");
        assert_eq!(
            (len, ck),
            (base.skyline, base.checksum),
            "scalar and block kernels must agree bit-for-bit ({})",
            spec.label
        );
    }

    GateSection {
        spec: *spec,
        cores,
        runs,
    }
}

/// Render the JSON report committed as `BENCH_pr5.json`. Hand-rolled:
/// the workspace takes no serialization dependency for one flat format.
/// `server`, when present, lands as a top-level `"server"` object with
/// the session-layer admission counters and latency percentiles.
pub fn report_json(
    sections: &[GateSection],
    server: Option<&crate::server_gate::ServerGateReport>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    let _ = writeln!(out, "  \"seed\": {GATE_SEED},");
    out.push_str("  \"sections\": [\n");
    for (si, s) in sections.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"label\": \"{}\",", s.spec.label);
        let _ = writeln!(out, "      \"n\": {},", s.spec.n);
        let _ = writeln!(out, "      \"d\": {},", s.spec.d);
        let _ = writeln!(out, "      \"window_pages\": {},", s.spec.window_pages);
        let _ = writeln!(out, "      \"cores\": {},", s.cores);
        out.push_str("      \"runs\": [\n");
        for (ri, r) in s.runs.iter().enumerate() {
            out.push_str("        { ");
            let _ = write!(out, "\"threads\": {}, ", r.threads);
            let _ = write!(out, "\"sort_ms\": {:.3}, ", r.sort_ms);
            let _ = write!(out, "\"filter_ms\": {:.3}, ", r.filter_ms);
            let _ = write!(out, "\"comparisons\": {}, ", r.comparisons);
            let _ = write!(out, "\"critical_path\": {}, ", r.critical_path);
            let _ = write!(out, "\"extra_pages\": {}, ", r.extra_pages);
            let _ = write!(out, "\"passes\": {}, ", r.passes);
            let _ = write!(out, "\"temp_records\": {}, ", r.temp_records);
            let _ = write!(out, "\"window_inserts\": {}, ", r.window_inserts);
            let _ = write!(out, "\"discarded\": {}, ", r.discarded);
            let _ = write!(out, "\"emitted\": {}, ", r.emitted);
            let _ = write!(out, "\"input_records\": {}, ", r.input_records);
            let _ = write!(out, "\"blocks_skipped\": {}, ", r.blocks_skipped);
            let _ = write!(out, "\"lanes_compared\": {}, ", r.lanes_compared);
            let _ = write!(out, "\"batches\": {}, ", r.batches);
            let _ = write!(out, "\"rows_materialized\": {}, ", r.rows_materialized);
            let _ = write!(out, "\"bytes_moved\": {}, ", r.bytes_moved);
            let _ = write!(out, "\"bytes_exchanged\": {}, ", r.bytes_exchanged);
            let _ = write!(out, "\"exchange_frames\": {}, ", r.exchange_frames);
            let _ = write!(
                out,
                "\"pruned_by_representatives\": {}, ",
                r.pruned_by_representatives
            );
            let _ = write!(out, "\"skyline\": {}, ", r.skyline);
            let _ = write!(out, "\"checksum\": \"{:#018x}\", ", r.checksum);
            let _ = write!(
                out,
                "\"speedup_wall\": {:.3}, ",
                s.speedup_wall(r.threads).unwrap_or(0.0)
            );
            let _ = write!(
                out,
                "\"speedup_model\": {:.3}",
                s.speedup_model(r.threads).unwrap_or(0.0)
            );
            out.push_str(if ri + 1 < s.runs.len() {
                " },\n"
            } else {
                " }\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 < sections.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]");
    if let Some(sv) = server {
        out.push_str(",\n  \"server\": { ");
        let _ = write!(out, "\"workers\": {}, ", sv.workers);
        let _ = write!(out, "\"queries\": {}, ", sv.queries);
        let _ = write!(out, "\"admitted\": {}, ", sv.admitted);
        let _ = write!(out, "\"rejected\": {}, ", sv.rejected);
        let _ = write!(out, "\"cancelled\": {}, ", sv.cancelled);
        let _ = write!(out, "\"completed\": {}, ", sv.completed);
        let _ = write!(out, "\"p50_ms\": {:.3}, ", sv.p50_ms);
        let _ = write!(out, "\"p99_ms\": {:.3}", sv.p99_ms);
        out.push_str(" }");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GateSpec {
        GateSpec {
            label: "tiny",
            n: 2_000,
            d: 5,
            window_pages: 4,
            threads: &[1, 2],
            batch: false,
        }
    }

    fn tiny_batch() -> GateSpec {
        GateSpec {
            label: "tiny-batch",
            batch: true,
            ..tiny()
        }
    }

    #[test]
    fn batch_section_matches_row_section_and_moves_less() {
        let row = run_section(&tiny());
        let batch = run_section(&tiny_batch());
        batch.validate(false, 1.5).expect("structural checks pass");
        for (rr, br) in row.runs.iter().zip(&batch.runs) {
            assert_eq!(rr.threads, br.threads);
            // identical answer, strictly less data movement
            assert_eq!((rr.skyline, rr.checksum), (br.skyline, br.checksum));
            assert!(br.batches > 0 && rr.batches == 0);
            assert!(br.rows_materialized < rr.rows_materialized);
            assert!(br.bytes_moved < rr.bytes_moved);
            // late materialization touches exactly the skyline rows
            assert_eq!(br.rows_materialized, br.skyline);
        }
    }

    #[test]
    fn section_runs_and_validates_structurally() {
        let s = run_section(&tiny());
        assert_eq!(s.runs.len(), 2);
        s.validate(false, 1.5).expect("structural checks pass");
        // identical deterministic fields across thread counts
        assert_eq!(s.runs[0].skyline, s.runs[1].skyline);
        assert_eq!(s.runs[0].checksum, s.runs[1].checksum);
        // t=1 has no merge: critical path == aggregate comparisons
        assert_eq!(s.runs[0].critical_path, s.runs[0].comparisons);
        // critical path (max worker + merge) never exceeds the aggregate
        // (Σ workers + merge); at this tiny scale the merge can keep it
        // above the sequential count, so only the aggregate bound holds
        assert!(s.runs[1].critical_path <= s.runs[1].comparisons);
        assert!(s.runs[1].critical_path > 0);
    }

    #[test]
    fn checksum_is_order_independent_and_value_sensitive() {
        let a = skyline_checksum(vec![vec![1, 2], vec![3, 4]]);
        let b = skyline_checksum(vec![vec![3, 4], vec![1, 2]]);
        let c = skyline_checksum(vec![vec![1, 2], vec![3, 5]]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn json_report_shape() {
        let s = run_section(&tiny());
        let j = report_json(std::slice::from_ref(&s), None);
        assert!(j.contains("\"label\": \"tiny\""));
        assert!(j.contains("\"threads\": 2"));
        assert!(j.contains("\"checksum\": \"0x"));
        assert!(!j.contains("\"server\""));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn json_report_carries_the_server_object() {
        let s = run_section(&tiny());
        let sv = crate::server_gate::ServerGateReport {
            workers: 2,
            queries: 60,
            admitted: 50,
            rejected: 10,
            cancelled: 10,
            completed: 40,
            p50_ms: 1.5,
            p99_ms: 3.25,
        };
        let j = report_json(std::slice::from_ref(&s), Some(&sv));
        assert!(j.contains("\"server\": { \"workers\": 2, \"queries\": 60"));
        assert!(j.contains("\"p99_ms\": 3.250"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn validate_flags_speedup_miss() {
        let mut s = run_section(&tiny());
        // forge a degenerate critical path to trip the model gate
        let flat = s.runs[0].comparisons.max(1);
        for r in &mut s.runs {
            r.critical_path = flat;
        }
        let err = s.validate(true, 1.5).unwrap_err();
        assert!(err.contains("model speedup"), "{err}");
    }
}
