//! §4.2's clustered-index input orders: BNL's cost varies with arrival
//! order; SFS does not care.

use skyline_bench::{parse_args, table_clustered, Dataset};

fn main() {
    let (scale, seed, _full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let t = table_clustered(&ds, 5, 2);
    t.print();
    t.save_csv("results", "table_clustered").expect("save csv");
}
