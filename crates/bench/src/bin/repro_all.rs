//! Regenerate every figure and table of the paper's evaluation in one go.
//! Results print to stdout and land as CSVs under `results/`.

use skyline_bench::*;

fn main() {
    let (scale, seed, full) = parse_args();
    eprintln!("== skyline repro, n={scale}, seed={seed}, full={full} ==");
    let ds = Dataset::paper(scale, seed);
    let windows = window_sweep();

    let (t9, t10) = fig09_10(&ds, 7, &windows);
    t9.print();
    t9.save_csv("results", "fig09_sfs_time").expect("csv");
    t10.print();
    t10.save_csv("results", "fig10_sfs_io").expect("csv");

    let t11 = fig11(&ds, &[5, 6, 7], &windows, full);
    t11.print();
    t11.save_csv("results", "fig11_bnl_dims").expect("csv");

    let (t12, t14) = fig_comparison(&ds, 5, &windows, full, "Fig 12", "Fig 14");
    t12.print();
    t12.save_csv("results", "fig12_time_5d").expect("csv");
    t14.print();
    t14.save_csv("results", "fig14_io_5d").expect("csv");

    let (t13, t15) = fig_comparison(&ds, 7, &windows, full, "Fig 13", "Fig 15");
    t13.print();
    t13.save_csv("results", "fig13_time_7d").expect("csv");
    t15.print();
    t15.save_csv("results", "fig15_io_7d").expect("csv");

    let ts = table_skyline_sizes(&ds, &[2, 3, 4, 5, 6, 7, 8]);
    ts.print();
    ts.save_csv("results", "table_skyline_sizes").expect("csv");

    let tt = table_sort_times(&ds, 7);
    tt.print();
    tt.save_csv("results", "table_sort_times").expect("csv");

    let td = table_dimred(scale, seed);
    td.print();
    td.save_csv("results", "table_dimred").expect("csv");

    let tst = table_strata(&ds, &[4, 5], 500);
    tst.print();
    tst.save_csv("results", "table_strata").expect("csv");

    let tdist = table_distributions(scale.min(100_000), seed, 4, 4);
    tdist.print();
    tdist
        .save_csv("results", "table_distributions")
        .expect("csv");

    let tclu = table_clustered(&ds, 5, 2);
    tclu.print();
    tclu.save_csv("results", "table_clustered").expect("csv");

    eprintln!("== done ==");
}
