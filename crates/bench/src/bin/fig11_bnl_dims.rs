//! Figure 11: BNL (and BNL w/RE, curtailed) times vs window size for
//! skylines of 5, 6, and 7 dimensions.

use skyline_bench::{fig11, parse_args, window_sweep, Dataset};

fn main() {
    let (scale, seed, full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let t = fig11(&ds, &[5, 6, 7], &window_sweep(), full);
    t.print();
    t.save_csv("results", "fig11_bnl_dims").expect("save csv");
}
