//! The sharded-skyline perf gate: run the seed-2003 strategy × shard
//! grid and write the JSON report the regression gate
//! (`cargo xtask bench --gate`) diffs against the committed
//! `BENCH_pr10.json`.
//!
//! ```text
//! shard_gate [--smoke] [--out PATH]
//! ```
//!
//! Default runs the `shard-full` (n=100k, d=7) and `shard-smoke`
//! (n=20k) sections, each sweeping strategies naive/grid/representative
//! at shards 2/4/8; `--smoke` runs only the small section (CI). Every
//! run must reproduce the single-node batch pipeline's skyline bit for
//! bit, and at every shard count grid routing and representative
//! filtering must each strictly reduce both bytes exchanged and
//! coordinator-side comparisons vs the naive round-robin exchange.
//! `--out` defaults to `BENCH_pr10.json` in the current directory.

use skyline_bench::shard_gate::{
    run_shard_section, shard_report_json, ShardGateSection, FULL_SHARD, SMOKE_SHARD,
};
use skyline_bench::{ms, save_text, ReportTable};
use std::process::ExitCode;

fn print_section(s: &ShardGateSection) {
    let mut t = ReportTable::new(
        format!(
            "gate `{}`: n={} d={} window={}p (single-node skyline {})",
            s.spec.label, s.spec.n, s.spec.d, s.spec.window_pages, s.baseline_skyline
        ),
        &[
            "strategy",
            "shards",
            "wall",
            "comparisons",
            "coord cmp",
            "union",
            "bytes exch",
            "frames",
            "pruned",
            "skyline",
        ],
    );
    for r in &s.runs {
        t.row(vec![
            r.strategy.name().to_string(),
            r.shards.to_string(),
            ms(r.wall_ms),
            r.comparisons.to_string(),
            r.coordinator_comparisons.to_string(),
            r.union_entries.to_string(),
            r.bytes_exchanged.to_string(),
            r.exchange_frames.to_string(),
            r.pruned_by_representatives.to_string(),
            r.skyline.to_string(),
        ]);
    }
    t.print();
}

fn main() -> ExitCode {
    let mut smoke_only = false;
    let mut out = String::from("BENCH_pr10.json");
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke_only = true;
                i += 1;
            }
            "--out" => {
                out = args
                    .get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| panic!("--out PATH"));
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other} (use --smoke --out PATH)");
                return ExitCode::FAILURE;
            }
        }
    }

    let specs = if smoke_only {
        vec![SMOKE_SHARD]
    } else {
        vec![FULL_SHARD, SMOKE_SHARD]
    };
    let mut sections = Vec::new();
    for spec in &specs {
        let s = run_shard_section(spec);
        print_section(&s);
        if let Err(e) = s.validate() {
            eprintln!("shard gate FAILED: {e}");
            return ExitCode::FAILURE;
        }
        sections.push(s);
    }
    let json = shard_report_json(&sections);
    if let Err(e) = save_text(&out, &json) {
        eprintln!("shard gate: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("shard gate: report written to {out}");
    ExitCode::SUCCESS
}
