//! §6's correlation caveat: skyline size and pass degeneration across
//! correlated / uniform / anti-correlated data.

use skyline_bench::{parse_args, table_distributions};

fn main() {
    let (scale, seed, _full) = parse_args();
    // anti-correlated skylines are enormous: cap this sweep's n
    let n = scale.min(100_000);
    let t = table_distributions(n, seed, 4, 4);
    t.print();
    t.save_csv("results", "table_distributions")
        .expect("save csv");
}
