//! Figure 9: SFS / SFS w/E / SFS w/E,P times vs window size (d = 7).

use skyline_bench::{fig09_10, parse_args, window_sweep, Dataset};

fn main() {
    let (scale, seed, _full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let (time, _io) = fig09_10(&ds, 7, &window_sweep());
    time.print();
    time.save_csv("results", "fig09_sfs_time")
        .expect("save csv");
}
