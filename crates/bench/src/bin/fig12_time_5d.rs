//! Figure 12: SFS vs BNL vs BNL w/RE times, 5-dimensional skyline.

use skyline_bench::{fig_comparison, parse_args, window_sweep, Dataset};

fn main() {
    let (scale, seed, full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let (time, _io) = fig_comparison(&ds, 5, &window_sweep(), full, "Fig 12", "Fig 14");
    time.print();
    time.save_csv("results", "fig12_time_5d").expect("save csv");
}
