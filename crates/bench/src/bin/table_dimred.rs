//! §5 in-text experiment: dimensional reduction on domains 0–9 (paper:
//! one million tuples reduce to 99,826 ≈ 10% before the filter phase).

use skyline_bench::{parse_args, table_dimred};

fn main() {
    let (scale, seed, _full) = parse_args();
    let t = table_dimred(scale, seed);
    t.print();
    t.save_csv("results", "table_dimred").expect("save csv");
}
