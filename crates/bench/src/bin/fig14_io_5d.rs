//! Figure 14: SFS vs BNL extra-page I/Os, 5-dimensional skyline.

use skyline_bench::{fig_comparison, parse_args, window_sweep, Dataset};

fn main() {
    let (scale, seed, full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let (_time, io) = fig_comparison(&ds, 5, &window_sweep(), full, "Fig 12", "Fig 14");
    io.print();
    io.save_csv("results", "fig14_io_5d").expect("save csv");
}
