//! §5 in-text table: nested vs entropy sort-phase times (paper: 57 s vs
//! 37 s at one million tuples).

use skyline_bench::{parse_args, table_sort_times, Dataset};

fn main() {
    let (scale, seed, _full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let t = table_sort_times(&ds, 7);
    t.print();
    t.save_csv("results", "table_sort_times").expect("save csv");
}
