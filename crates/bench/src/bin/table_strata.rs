//! §5 in-text experiment: the first four skyline strata at d = 4 and
//! d = 5 with a 500-page window.

use skyline_bench::{parse_args, table_strata, Dataset};

fn main() {
    let (scale, seed, _full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let t = table_strata(&ds, &[4, 5], 500);
    t.print();
    t.save_csv("results", "table_strata").expect("save csv");
}
