//! Figure 10: SFS variants' extra-page I/Os vs window size (d = 7).

use skyline_bench::{fig09_10, parse_args, window_sweep, Dataset};

fn main() {
    let (scale, seed, _full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let (_time, io) = fig09_10(&ds, 7, &window_sweep());
    io.print();
    io.save_csv("results", "fig10_sfs_io").expect("save csv");
}
