//! Figure 15: SFS vs BNL extra-page I/Os, 7-dimensional skyline.

use skyline_bench::{fig_comparison, parse_args, window_sweep, Dataset};

fn main() {
    let (scale, seed, full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let (_time, io) = fig_comparison(&ds, 7, &window_sweep(), full, "Fig 13", "Fig 15");
    io.print();
    io.save_csv("results", "fig15_io_7d").expect("save csv");
}
