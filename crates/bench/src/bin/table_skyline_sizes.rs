//! §5 in-text table: skyline size per dimension vs the cardinality model.

use skyline_bench::{parse_args, table_skyline_sizes, Dataset};

fn main() {
    let (scale, seed, _full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let t = table_skyline_sizes(&ds, &[2, 3, 4, 5, 6, 7, 8]);
    t.print();
    t.save_csv("results", "table_skyline_sizes")
        .expect("save csv");
}
