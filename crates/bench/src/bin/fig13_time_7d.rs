//! Figure 13: SFS vs BNL vs BNL w/RE times, 7-dimensional skyline.

use skyline_bench::{fig_comparison, parse_args, window_sweep, Dataset};

fn main() {
    let (scale, seed, full) = parse_args();
    let ds = Dataset::paper(scale, seed);
    let (time, _io) = fig_comparison(&ds, 7, &window_sweep(), full, "Fig 13", "Fig 15");
    time.print();
    time.save_csv("results", "fig13_time_7d").expect("save csv");
}
