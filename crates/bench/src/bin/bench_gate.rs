//! The parallel-SFS perf gate: run the seed-2003 thread grid and write
//! the JSON report the regression gate (`cargo xtask bench --gate`)
//! diffs against the committed `BENCH_pr9.json`.
//!
//! ```text
//! bench_gate [--smoke] [--out PATH]
//! ```
//!
//! Default runs the `full` (n=100k, d=7, threads 1/2/4) and `smoke`
//! (n=20k, threads 1/2) row sections plus their columnar twins
//! (`full-batch`, `smoke-batch`) and enforces the 1.5× speedup gate on
//! `full`; `--smoke` runs only the small pair (CI), where only the
//! structural checks (identical skylines, exact metric aggregation,
//! scalar-vs-block kernel agreement) apply. Each row/batch pair must
//! produce a bit-identical skyline, and the batch side must strictly
//! reduce `rows_materialized` and `bytes_moved` — the columnar
//! pipeline's reason to exist. `--out` defaults to `BENCH_pr9.json`
//! in the current directory.
//!
//! Both modes also run the session-server gate (closed-loop p50/p99
//! plus exact admission counters) and emit it as the report's
//! top-level `"server"` object.

use skyline_bench::gate::{
    report_json, run_section, GateSection, FULL, FULL_BATCH, SMOKE, SMOKE_BATCH,
};
use skyline_bench::server_gate::{run_server_gate, ServerGateReport};
use skyline_bench::{ms, save_text, ReportTable};
use std::process::ExitCode;

fn print_section(s: &GateSection) {
    let mut t = ReportTable::new(
        format!(
            "gate `{}`: n={} d={} window={}p (cores={})",
            s.spec.label, s.spec.n, s.spec.d, s.spec.window_pages, s.cores
        ),
        &[
            "threads",
            "sort",
            "filter",
            "comparisons",
            "critical-path",
            "extra pages",
            "blocks skipped",
            "rows mat",
            "bytes moved",
            "skyline",
            "speedup wall",
            "speedup model",
        ],
    );
    for r in &s.runs {
        t.row(vec![
            r.threads.to_string(),
            ms(r.sort_ms),
            ms(r.filter_ms),
            r.comparisons.to_string(),
            r.critical_path.to_string(),
            r.extra_pages.to_string(),
            r.blocks_skipped.to_string(),
            r.rows_materialized.to_string(),
            r.bytes_moved.to_string(),
            r.skyline.to_string(),
            format!("{:.2}x", s.speedup_wall(r.threads).unwrap_or(0.0)),
            format!("{:.2}x", s.speedup_model(r.threads).unwrap_or(0.0)),
        ]);
    }
    t.print();
}

fn print_server(sv: &ServerGateReport) {
    let mut t = ReportTable::new(
        format!("gate `server`: session layer ({} workers)", sv.workers),
        &[
            "queries",
            "admitted",
            "rejected",
            "cancelled",
            "completed",
            "p50",
            "p99",
        ],
    );
    t.row(vec![
        sv.queries.to_string(),
        sv.admitted.to_string(),
        sv.rejected.to_string(),
        sv.cancelled.to_string(),
        sv.completed.to_string(),
        ms(sv.p50_ms),
        ms(sv.p99_ms),
    ]);
    t.print();
}

/// Each row section and its `-batch` twin must agree bit-for-bit on the
/// skyline while the batch side strictly reduces data movement.
fn check_pairs(sections: &[GateSection]) -> Result<(), String> {
    let find = |label: &str| sections.iter().find(|s| s.spec.label == label);
    for (row_label, batch_label) in [("full", "full-batch"), ("smoke", "smoke-batch")] {
        let (Some(row), Some(batch)) = (find(row_label), find(batch_label)) else {
            continue;
        };
        for rr in &row.runs {
            let Some(br) = batch.runs.iter().find(|b| b.threads == rr.threads) else {
                return Err(format!(
                    "`{batch_label}` has no threads={} run to pair with `{row_label}`",
                    rr.threads
                ));
            };
            if (br.skyline, br.checksum) != (rr.skyline, rr.checksum) {
                return Err(format!(
                    "`{batch_label}` threads={}: skyline ({}, {:#018x}) differs from \
                     `{row_label}` ({}, {:#018x})",
                    rr.threads, br.skyline, br.checksum, rr.skyline, rr.checksum
                ));
            }
            if br.rows_materialized >= rr.rows_materialized {
                return Err(format!(
                    "`{batch_label}` threads={}: rows_materialized {} does not beat \
                     `{row_label}`'s {}",
                    rr.threads, br.rows_materialized, rr.rows_materialized
                ));
            }
            if br.bytes_moved >= rr.bytes_moved {
                return Err(format!(
                    "`{batch_label}` threads={}: bytes_moved {} does not beat \
                     `{row_label}`'s {}",
                    rr.threads, br.bytes_moved, rr.bytes_moved
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke_only = false;
    let mut out = String::from("BENCH_pr9.json");
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke_only = true;
                i += 1;
            }
            "--out" => {
                out = args
                    .get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| panic!("--out PATH"));
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other} (use --smoke --out PATH)");
                return ExitCode::FAILURE;
            }
        }
    }

    let specs = if smoke_only {
        vec![SMOKE, SMOKE_BATCH]
    } else {
        vec![FULL, SMOKE, FULL_BATCH, SMOKE_BATCH]
    };
    let mut sections = Vec::new();
    for spec in &specs {
        let s = run_section(spec);
        print_section(&s);
        // the 1.5× acceptance gate applies to the full grid only; smoke
        // still gets the structural checks
        if let Err(e) = s.validate(spec.label == "full", 1.5) {
            eprintln!("bench gate FAILED: {e}");
            return ExitCode::FAILURE;
        }
        sections.push(s);
    }
    if let Err(e) = check_pairs(&sections) {
        eprintln!("bench gate FAILED: {e}");
        return ExitCode::FAILURE;
    }
    let server = run_server_gate();
    print_server(&server);
    let json = report_json(&sections, Some(&server));
    if let Err(e) = save_text(&out, &json) {
        eprintln!("bench gate: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench gate: report written to {out}");
    ExitCode::SUCCESS
}
