//! The parallel-SFS perf gate: run the seed-2003 thread grid and write
//! the JSON report the regression gate (`cargo xtask bench --gate`)
//! diffs against the committed `BENCH_pr5.json`.
//!
//! ```text
//! bench_gate [--smoke] [--out PATH]
//! ```
//!
//! Default runs both the `full` (n=100k, d=7, threads 1/2/4) and `smoke`
//! (n=20k, threads 1/2) sections and enforces the 1.5× speedup gate on
//! `full`; `--smoke` runs only the small section (CI), where only the
//! structural checks (identical skylines, exact metric aggregation,
//! scalar-vs-block kernel agreement) apply. `--out` defaults to
//! `BENCH_pr5.json` in the current directory.
//!
//! Both modes also run the session-server gate (closed-loop p50/p99
//! plus exact admission counters) and emit it as the report's
//! top-level `"server"` object.

use skyline_bench::gate::{report_json, run_section, GateSection, FULL, SMOKE};
use skyline_bench::server_gate::{run_server_gate, ServerGateReport};
use skyline_bench::{ms, save_text, ReportTable};
use std::process::ExitCode;

fn print_section(s: &GateSection) {
    let mut t = ReportTable::new(
        format!(
            "gate `{}`: n={} d={} window={}p (cores={})",
            s.spec.label, s.spec.n, s.spec.d, s.spec.window_pages, s.cores
        ),
        &[
            "threads",
            "sort",
            "filter",
            "comparisons",
            "critical-path",
            "extra pages",
            "blocks skipped",
            "skyline",
            "speedup wall",
            "speedup model",
        ],
    );
    for r in &s.runs {
        t.row(vec![
            r.threads.to_string(),
            ms(r.sort_ms),
            ms(r.filter_ms),
            r.comparisons.to_string(),
            r.critical_path.to_string(),
            r.extra_pages.to_string(),
            r.blocks_skipped.to_string(),
            r.skyline.to_string(),
            format!("{:.2}x", s.speedup_wall(r.threads).unwrap_or(0.0)),
            format!("{:.2}x", s.speedup_model(r.threads).unwrap_or(0.0)),
        ]);
    }
    t.print();
}

fn print_server(sv: &ServerGateReport) {
    let mut t = ReportTable::new(
        format!("gate `server`: session layer ({} workers)", sv.workers),
        &[
            "queries",
            "admitted",
            "rejected",
            "cancelled",
            "completed",
            "p50",
            "p99",
        ],
    );
    t.row(vec![
        sv.queries.to_string(),
        sv.admitted.to_string(),
        sv.rejected.to_string(),
        sv.cancelled.to_string(),
        sv.completed.to_string(),
        ms(sv.p50_ms),
        ms(sv.p99_ms),
    ]);
    t.print();
}

fn main() -> ExitCode {
    let mut smoke_only = false;
    let mut out = String::from("BENCH_pr5.json");
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke_only = true;
                i += 1;
            }
            "--out" => {
                out = args
                    .get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| panic!("--out PATH"));
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other} (use --smoke --out PATH)");
                return ExitCode::FAILURE;
            }
        }
    }

    let specs = if smoke_only {
        vec![SMOKE]
    } else {
        vec![FULL, SMOKE]
    };
    let mut sections = Vec::new();
    for spec in &specs {
        let s = run_section(spec);
        print_section(&s);
        // the 1.5× acceptance gate applies to the full grid only; smoke
        // still gets the structural checks
        if let Err(e) = s.validate(spec.label == "full", 1.5) {
            eprintln!("bench gate FAILED: {e}");
            return ExitCode::FAILURE;
        }
        sections.push(s);
    }
    let server = run_server_gate();
    print_server(&server);
    let json = report_json(&sections, Some(&server));
    if let Err(e) = save_text(&out, &json) {
        eprintln!("bench gate: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench gate: report written to {out}");
    ExitCode::SUCCESS
}
