//! The sharded-skyline perf gate (PR 10 acceptance bar).
//!
//! Runs the seed-2003 paper workload through
//! [`skyline_core::planner::sharded_skyline_pipeline`] across a grid of
//! shard counts × exchange strategies and reports, per run: wall time,
//! aggregate and coordinator-side dominance comparisons, per-shard
//! comparison counts and bytes serialized, exchange traffic
//! (`bytes_exchanged`, `exchange_frames`), representative pruning, the
//! union cardinality the coordinator merged, and the skyline's size and
//! order-independent checksum.
//!
//! The laws the gate enforces (here in [`ShardGateSection::validate`]
//! and again in `cargo xtask bench --gate` over the committed
//! `BENCH_pr10.json`):
//!
//! * every (strategy, shard count) run reproduces the single-node batch
//!   pipeline's skyline **bit for bit** — the partition identity
//!   `sky(R) = sky(sky(R₁) ∪ … ∪ sky(R_N))` holds for any partition,
//!   so routing may change costs but never the answer;
//! * at every shard count, **grid** routing and **representative**
//!   filtering each *strictly* reduce both bytes exchanged and
//!   coordinator-side comparisons vs the naive round-robin exchange —
//!   the two optimizations' reason to exist;
//! * representative runs actually prune (`pruned_by_representatives >
//!   0`) — a vacuously passing broadcast would hide a routing bug;
//! * exact metric aggregation: the caller's counters equal the sum of
//!   every shard worker's plus the coordinator's, to the counter, and
//!   the exchange meter agrees with the `bytes_exchanged` /
//!   `exchange_frames` counters it mirrors.

use crate::gate::{collect_rows, skyline_checksum, sum, GATE_SEED};
use crate::harness::Dataset;
use skyline_core::planner::{batch_skyline_pipeline, sharded_skyline_pipeline};
use skyline_core::{BatchConfig, ShardConfig, ShardStrategy, SkylineMetrics, SkylineSpec};
use skyline_storage::Disk;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The three exchange strategies, in report order.
pub const STRATEGIES: &[ShardStrategy] = &[
    ShardStrategy::Naive,
    ShardStrategy::Grid,
    ShardStrategy::Representative,
];

/// One shard-gate section: a workload size and a shard-count grid.
#[derive(Debug, Clone, Copy)]
pub struct ShardGateSpec {
    /// Section name in the JSON report.
    pub label: &'static str,
    /// Tuple count.
    pub n: usize,
    /// Skyline dimensions (all-max over the first `d` attributes).
    pub d: usize,
    /// Per-shard filter window budget in pages.
    pub window_pages: usize,
    /// Shard counts to sweep, ascending.
    pub shards: &'static [usize],
}

/// The acceptance-criteria grid: d=7, n=100k, shards 2/4/8.
pub const FULL_SHARD: ShardGateSpec = ShardGateSpec {
    label: "shard-full",
    n: 100_000,
    d: 7,
    window_pages: 64,
    shards: &[2, 4, 8],
};

/// A CI-sized section that finishes in seconds.
pub const SMOKE_SHARD: ShardGateSpec = ShardGateSpec {
    label: "shard-smoke",
    n: 20_000,
    d: 7,
    window_pages: 16,
    shards: &[2, 4, 8],
};

/// Measurements for one (strategy, shard count) run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Exchange strategy.
    pub strategy: ShardStrategy,
    /// Shard count.
    pub shards: usize,
    /// End-to-end wall time, milliseconds (routing through
    /// materialization).
    pub wall_ms: f64,
    /// Aggregate dominance comparisons (all shards + coordinator).
    /// Deterministic.
    pub comparisons: u64,
    /// Coordinator-side comparisons: the score-sorted prefix merge
    /// (loader + verifiers) over the decoded union. Deterministic.
    pub coordinator_comparisons: u64,
    /// Per-shard comparison counts, in shard order. Deterministic.
    pub shard_comparisons: Vec<u64>,
    /// Per-shard bytes serialized into the exchange (local-skyline
    /// frames), in shard order. Deterministic.
    pub shard_bytes_exchanged: Vec<u64>,
    /// Total bytes through the exchange: local-skyline uploads plus
    /// representative broadcasts charged per receiver. Deterministic.
    pub bytes_exchanged: u64,
    /// Frames through the exchange. Deterministic.
    pub exchange_frames: u64,
    /// Local-skyline entries dropped by broadcast representatives
    /// before serialization. Deterministic; zero except under
    /// [`ShardStrategy::Representative`].
    pub pruned_by_representatives: u64,
    /// Entries in the decoded union the coordinator merged.
    pub union_entries: u64,
    /// Skyline cardinality.
    pub skyline: u64,
    /// FNV-1a over the sorted skyline key rows — order-independent.
    pub checksum: u64,
}

/// A completed shard-gate section: the single-node baseline plus one
/// run per (strategy, shard count).
#[derive(Debug, Clone)]
pub struct ShardGateSection {
    /// The spec this section ran.
    pub spec: ShardGateSpec,
    /// Single-node batch-pipeline skyline cardinality (the oracle).
    pub baseline_skyline: u64,
    /// Single-node batch-pipeline checksum.
    pub baseline_checksum: u64,
    /// One entry per (strategy, shard count), strategies outer.
    pub runs: Vec<ShardRun>,
}

impl ShardGateSection {
    /// The run at (`strategy`, `shards`), if present.
    pub fn run_at(&self, strategy: ShardStrategy, shards: usize) -> Option<&ShardRun> {
        self.runs
            .iter()
            .find(|r| r.strategy == strategy && r.shards == shards)
    }

    /// Enforce the section's laws: bit-identical skylines everywhere,
    /// and grid + representative filtering strictly below naive on both
    /// bytes exchanged and coordinator comparisons at every shard
    /// count, with representative runs actually pruning.
    ///
    /// # Errors
    /// A human-readable description of the first violated check.
    pub fn validate(&self) -> Result<(), String> {
        for r in &self.runs {
            if (r.skyline, r.checksum) != (self.baseline_skyline, self.baseline_checksum) {
                return Err(format!(
                    "{}: {} shards={} skyline ({}, {:#018x}) differs from the single-node \
                     baseline ({}, {:#018x})",
                    self.spec.label,
                    r.strategy.name(),
                    r.shards,
                    r.skyline,
                    r.checksum,
                    self.baseline_skyline,
                    self.baseline_checksum
                ));
            }
        }
        for &s in self.spec.shards {
            let naive = self
                .run_at(ShardStrategy::Naive, s)
                .ok_or_else(|| format!("{}: no naive run at shards={s}", self.spec.label))?;
            for strat in [ShardStrategy::Grid, ShardStrategy::Representative] {
                let run = self.run_at(strat, s).ok_or_else(|| {
                    format!("{}: no {} run at shards={s}", self.spec.label, strat.name())
                })?;
                if run.bytes_exchanged >= naive.bytes_exchanged {
                    return Err(format!(
                        "{}: {} shards={s} bytes_exchanged {} does not beat naive's {}",
                        self.spec.label,
                        strat.name(),
                        run.bytes_exchanged,
                        naive.bytes_exchanged
                    ));
                }
                if run.coordinator_comparisons >= naive.coordinator_comparisons {
                    return Err(format!(
                        "{}: {} shards={s} coordinator comparisons {} do not beat naive's {}",
                        self.spec.label,
                        strat.name(),
                        run.coordinator_comparisons,
                        naive.coordinator_comparisons
                    ));
                }
            }
            let rep = self
                .run_at(ShardStrategy::Representative, s)
                .ok_or_else(|| {
                    format!("{}: no representative run at shards={s}", self.spec.label)
                })?;
            if rep.pruned_by_representatives == 0 {
                return Err(format!(
                    "{}: representative shards={s} pruned nothing — the broadcast is vacuous",
                    self.spec.label
                ));
            }
        }
        Ok(())
    }
}

/// One sharded run, with the exact-aggregation and exchange-meter
/// identities asserted to the counter.
fn shard_run(
    ds: &Dataset,
    spec: &ShardGateSpec,
    sky_spec: &SkylineSpec,
    strategy: ShardStrategy,
    shards: usize,
    base_pages: u64,
) -> ShardRun {
    let disk = Arc::clone(&ds.disk) as Arc<dyn Disk>;
    let metrics = SkylineMetrics::shared();
    let cfg = ShardConfig::new(shards, strategy, spec.window_pages);
    let t0 = Instant::now();
    let outcome = sharded_skyline_pipeline(
        Arc::clone(&ds.heap),
        &ds.layout,
        sky_spec,
        cfg,
        disk,
        Arc::clone(&metrics),
        None,
    )
    .expect("sharded skyline");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // exact aggregation: caller metrics == Σ shard workers + coordinator
    let agg = metrics.snapshot();
    let shard_metrics: Vec<_> = outcome.shard_stats.iter().map(|s| s.metrics).collect();
    let parts = sum(&shard_metrics).plus(&outcome.coordinator_metrics);
    assert_eq!(
        agg,
        parts,
        "aggregate metrics must equal Σ shards + coordinator ({} shards={shards})",
        strategy.name()
    );
    // the exchange meter and the metrics counters watch the same wire
    assert_eq!(
        (agg.bytes_exchanged, agg.exchange_frames),
        (
            outcome.exchange.bytes_exchanged,
            outcome.exchange.exchange_frames
        ),
        "exchange meter must agree with the counters ({} shards={shards})",
        strategy.name()
    );

    let rows = collect_rows(&outcome.skyline, ds, spec.d);
    let skyline = outcome.skyline.len();
    let checksum = skyline_checksum(rows);
    outcome.skyline.delete();
    assert_eq!(
        ds.disk.allocated_pages(),
        base_pages,
        "gate run must not leak pages ({} shards={shards})",
        strategy.name()
    );

    ShardRun {
        strategy,
        shards,
        wall_ms,
        comparisons: agg.comparisons,
        coordinator_comparisons: outcome.coordinator_metrics.comparisons,
        shard_comparisons: outcome
            .shard_stats
            .iter()
            .map(|s| s.metrics.comparisons)
            .collect(),
        shard_bytes_exchanged: outcome
            .shard_stats
            .iter()
            .map(|s| s.metrics.bytes_exchanged)
            .collect(),
        bytes_exchanged: agg.bytes_exchanged,
        exchange_frames: agg.exchange_frames,
        pruned_by_representatives: agg.pruned_by_representatives,
        union_entries: outcome.union_entries,
        skyline,
        checksum,
    }
}

/// Run one section of the shard-gate grid: the single-node baseline,
/// then every strategy at every shard count.
///
/// # Panics
/// Panics when a pipeline stage fails, when a run leaks pages, or when
/// the exact-aggregation / exchange-meter identities break — a wrong
/// answer must not produce a plausible-looking report.
pub fn run_shard_section(spec: &ShardGateSpec) -> ShardGateSection {
    let ds = Dataset::paper(spec.n, GATE_SEED);
    let sky_spec = SkylineSpec::max_all(spec.d);
    let base_pages = ds.disk.allocated_pages();

    // single-node batch pipeline: the oracle every sharded run must hit
    let (baseline_skyline, baseline_checksum) = {
        let outcome = batch_skyline_pipeline(
            Arc::clone(&ds.heap),
            &ds.layout,
            &sky_spec,
            BatchConfig::new(spec.window_pages),
            crate::gate::SORT_PAGES,
            1,
            Arc::clone(&ds.disk) as Arc<dyn Disk>,
            SkylineMetrics::shared(),
            None,
            None,
        )
        .expect("single-node baseline");
        let rows = collect_rows(&outcome.skyline, &ds, spec.d);
        let out = (outcome.skyline.len(), skyline_checksum(rows));
        outcome.skyline.delete();
        out
    };

    let mut runs = Vec::new();
    for &strategy in STRATEGIES {
        for &s in spec.shards {
            runs.push(shard_run(&ds, spec, &sky_spec, strategy, s, base_pages));
        }
    }

    ShardGateSection {
        spec: *spec,
        baseline_skyline,
        baseline_checksum,
        runs,
    }
}

/// Render the JSON report committed as `BENCH_pr10.json`. Hand-rolled
/// like [`crate::gate::report_json`]: the workspace takes no
/// serialization dependency for one flat format.
pub fn shard_report_json(sections: &[ShardGateSection]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    let _ = writeln!(out, "  \"seed\": {GATE_SEED},");
    out.push_str("  \"sections\": [\n");
    for (si, s) in sections.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"label\": \"{}\",", s.spec.label);
        let _ = writeln!(out, "      \"n\": {},", s.spec.n);
        let _ = writeln!(out, "      \"d\": {},", s.spec.d);
        let _ = writeln!(out, "      \"window_pages\": {},", s.spec.window_pages);
        let _ = writeln!(out, "      \"baseline_skyline\": {},", s.baseline_skyline);
        let _ = writeln!(
            out,
            "      \"baseline_checksum\": \"{:#018x}\",",
            s.baseline_checksum
        );
        out.push_str("      \"runs\": [\n");
        for (ri, r) in s.runs.iter().enumerate() {
            out.push_str("        { ");
            let _ = write!(out, "\"strategy\": \"{}\", ", r.strategy.name());
            let _ = write!(out, "\"shards\": {}, ", r.shards);
            let _ = write!(out, "\"wall_ms\": {:.3}, ", r.wall_ms);
            let _ = write!(out, "\"comparisons\": {}, ", r.comparisons);
            let _ = write!(
                out,
                "\"coordinator_comparisons\": {}, ",
                r.coordinator_comparisons
            );
            let join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
            let _ = write!(
                out,
                "\"shard_comparisons\": [{}], ",
                join(&r.shard_comparisons)
            );
            let _ = write!(
                out,
                "\"shard_bytes_exchanged\": [{}], ",
                join(&r.shard_bytes_exchanged)
            );
            let _ = write!(out, "\"bytes_exchanged\": {}, ", r.bytes_exchanged);
            let _ = write!(out, "\"exchange_frames\": {}, ", r.exchange_frames);
            let _ = write!(
                out,
                "\"pruned_by_representatives\": {}, ",
                r.pruned_by_representatives
            );
            let _ = write!(out, "\"union_entries\": {}, ", r.union_entries);
            let _ = write!(out, "\"skyline\": {}, ", r.skyline);
            let _ = write!(out, "\"checksum\": \"{:#018x}\"", r.checksum);
            out.push_str(if ri + 1 < s.runs.len() {
                " },\n"
            } else {
                " }\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 < sections.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShardGateSpec {
        ShardGateSpec {
            label: "shard-tiny",
            n: 4_000,
            d: 5,
            window_pages: 4,
            shards: &[2, 3],
        }
    }

    #[test]
    fn section_runs_and_validates() {
        let s = run_shard_section(&tiny());
        assert_eq!(s.runs.len(), STRATEGIES.len() * 2);
        s.validate().expect("laws hold at tiny scale");
        // determinism: a second run reproduces every counter
        let again = run_shard_section(&tiny());
        for (a, b) in s.runs.iter().zip(&again.runs) {
            assert_eq!(
                (a.comparisons, a.bytes_exchanged, a.exchange_frames),
                (b.comparisons, b.bytes_exchanged, b.exchange_frames),
                "{} shards={}",
                a.strategy.name(),
                a.shards
            );
        }
    }

    #[test]
    fn json_report_shape() {
        let s = run_shard_section(&tiny());
        let j = shard_report_json(std::slice::from_ref(&s));
        assert!(j.contains("\"label\": \"shard-tiny\""));
        assert!(j.contains("\"strategy\": \"grid\""));
        assert!(j.contains("\"shard_comparisons\": ["));
        assert!(j.contains("\"bytes_exchanged\": "));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn validate_flags_a_forged_regression() {
        let mut s = run_shard_section(&tiny());
        let naive_bytes = s
            .run_at(ShardStrategy::Naive, 2)
            .expect("naive run")
            .bytes_exchanged;
        for r in &mut s.runs {
            if r.strategy == ShardStrategy::Grid && r.shards == 2 {
                r.bytes_exchanged = naive_bytes;
            }
        }
        let err = s.validate().unwrap_err();
        assert!(err.contains("does not beat naive"), "{err}");
    }
}
