//! Experiment harness reproducing the paper's evaluation (§5).
//!
//! Every figure/table has a binary in `src/bin/` built from the runners
//! here. All experiments share the paper's setup: `n` 100-byte tuples
//! (ten i32 attributes + 60-byte string, 40/page), uniform independent
//! values over ±MAXINT, skylines over the first `d` attributes, windows
//! measured in 4096-byte pages, and I/O reported as *extra pages* — temp
//! pages written (and re-read) by the filter phase beyond the initial
//! scan. The sort phase is timed and accounted separately, exactly as the
//! paper schedules it.
//!
//! Scale: the paper uses n = 1,000,000. Binaries default to
//! `SKYLINE_SCALE` or `--scale` (default 100,000 so the whole suite runs
//! in minutes); pass `--scale 1000000` for the paper's full size. Shapes
//! (who wins, where lines flatten or cross) are scale-stable.

pub mod crit;
pub mod gate;
pub mod harness;
pub mod report;
pub mod server_gate;
pub mod shard_gate;
pub mod sweeps;

pub use harness::*;
pub use report::*;
pub use sweeps::*;
