//! The session-server section of the PR perf gate.
//!
//! Three deterministic phases drive a [`SkylineServer`] over the seeded
//! gate workload:
//!
//! * **A — latency.** A closed loop submits and fully collects
//!   [`LATENCY_QUERIES`] external skyline queries; per-query round-trip
//!   wall times yield the reported p50/p99.
//! * **B — admission.** [`SHED_QUERIES`] submissions ask for a page
//!   quota larger than the whole server pool; every one must be shed
//!   with a typed `Overloaded` before touching a worker.
//! * **C — deadlines.** [`DEADLINE_QUERIES`] submissions carry an
//!   already-elapsed deadline; every one must come back as a typed
//!   cancellation.
//!
//! The admission counters (queries, admitted, rejected, cancelled,
//! completed) are therefore exact functions of the three phase sizes —
//! the regression gate compares them exactly — while the latency
//! percentiles are wall-clock and compared within the same tolerance as
//! the filter times.

use crate::gate::GATE_SEED;
use skyline_query::catalog::Catalog;
use skyline_relation::rng::Rng;
use skyline_relation::{tuple, ColumnType, Schema, Table};
use skyline_server::{QueryOptions, ServerConfig, SkylineServer};
use std::time::{Duration, Instant};

/// Phase A closed-loop query count.
pub const LATENCY_QUERIES: usize = 40;
/// Phase B oversized-quota submissions (all shed).
pub const SHED_QUERIES: usize = 10;
/// Phase C elapsed-deadline submissions (all cancelled).
pub const DEADLINE_QUERIES: usize = 10;

/// Rows in the gate table — above the configured external threshold, so
/// phase A exercises the paged engine end to end.
const N: usize = 10_000;

const SQL: &str = "SELECT * FROM t SKYLINE OF a MIN, b MIN, c MAX, d MAX";

/// One completed server-gate run: deterministic admission counters plus
/// wall-clock latency percentiles.
#[derive(Debug, Clone, Copy)]
pub struct ServerGateReport {
    /// Worker threads the server ran.
    pub workers: usize,
    /// Total submissions across the three phases.
    pub queries: u64,
    /// Submissions that passed admission (phases A and C).
    pub admitted: u64,
    /// Submissions shed at admission (phase B).
    pub rejected: u64,
    /// Admitted queries ended by their deadline (phase C).
    pub cancelled: u64,
    /// Admitted queries that streamed a full result (phase A).
    pub completed: u64,
    /// Median phase-A round-trip latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile phase-A round-trip latency, milliseconds.
    pub p99_ms: f64,
}

fn catalog() -> Catalog {
    let schema = Schema::of(&[
        ("a", ColumnType::Int),
        ("b", ColumnType::Int),
        ("c", ColumnType::Int),
        ("d", ColumnType::Int),
    ]);
    let mut t = Table::empty(schema);
    let mut rng = Rng::seed_from_u64(GATE_SEED);
    for _ in 0..N {
        t.push(tuple![
            rng.i64_inclusive(0, 9_999),
            rng.i64_inclusive(0, 9_999),
            rng.i64_inclusive(0, 9_999),
            rng.i64_inclusive(0, 9_999)
        ])
        .unwrap();
    }
    let mut cat = Catalog::new();
    cat.register("t", t);
    cat
}

/// Nearest-rank percentile of an ascending-sorted latency list.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Run the three server phases and return the section report.
///
/// # Panics
/// Panics when any phase breaks its contract (a phase-A query fails, a
/// phase-B query is admitted, a phase-C query is not cancelled, or the
/// final counters are not conserved) — a benchmark must not produce a
/// plausible-looking report from a broken server.
#[must_use]
pub fn run_server_gate() -> ServerGateReport {
    let cfg = ServerConfig {
        workers: 2,
        external_threshold: 1_000,
        ..ServerConfig::default()
    };
    let workers = cfg.workers;
    let pool_pages = cfg.pool_pages;
    let server = SkylineServer::new(catalog(), cfg);
    let session = server.session();

    // Phase A: closed-loop latency over the external engine.
    let mut latencies = Vec::with_capacity(LATENCY_QUERIES);
    for _ in 0..LATENCY_QUERIES {
        let t0 = Instant::now();
        let rows = session
            .submit(SQL)
            .expect("phase A: no watermark pressure, must admit")
            .collect()
            .expect("phase A: no fault/quota/deadline, must complete");
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(!rows.is_empty(), "phase A: empty skyline");
    }

    // Phase B: a quota larger than the whole pool is shed at admission.
    for _ in 0..SHED_QUERIES {
        let err = session
            .submit_with(
                SQL,
                &QueryOptions::default().with_quota_pages(pool_pages + 1),
            )
            .expect_err("phase B: an oversized quota must be shed");
        assert!(err.is_overloaded(), "phase B: expected Overloaded: {err:?}");
    }

    // Phase C: an already-elapsed deadline cancels at first token check.
    for _ in 0..DEADLINE_QUERIES {
        let err = session
            .submit_with(SQL, &QueryOptions::default().with_deadline(Duration::ZERO))
            .expect("phase C: deadline queries are admitted")
            .collect()
            .expect_err("phase C: an elapsed deadline must cancel");
        assert!(err.is_cancelled(), "phase C: expected Cancelled: {err:?}");
    }

    server.shutdown();
    let totals = server.snapshot().totals;
    assert!(totals.conserved(), "server books not conserved: {totals:?}");
    assert_eq!(server.inflight_pages(), 0, "page charges leaked");
    let (l, s, d) = (
        LATENCY_QUERIES as u64,
        SHED_QUERIES as u64,
        DEADLINE_QUERIES as u64,
    );
    assert_eq!(
        (
            totals.submitted,
            totals.admitted,
            totals.rejected,
            totals.completed,
            totals.cancelled,
            totals.failed,
            totals.in_flight,
        ),
        (l + s + d, l + d, s, l, d, 0, 0),
        "phase counters drifted"
    );

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    ServerGateReport {
        workers,
        queries: l + s + d,
        admitted: l + d,
        rejected: s,
        cancelled: d,
        completed: l,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn server_gate_counters_are_exact() {
        let r = run_server_gate();
        assert_eq!(r.queries, 60);
        assert_eq!(r.admitted, 50);
        assert_eq!(r.rejected, 10);
        assert_eq!(r.cancelled, 10);
        assert_eq!(r.completed, 40);
        assert!(r.p50_ms > 0.0 && r.p99_ms >= r.p50_ms);
    }
}
