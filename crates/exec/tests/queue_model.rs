//! Model-checked concurrency tests for [`WorkQueue`] and its
//! buffer-lease handoff — the channel through which the parallel sort
//! and the partitioned filter pass work between threads.
//!
//! One mutex guards the queue's whole state, so every operation is a
//! single linearizable step; `skyline_testkit::interleave` therefore
//! explores the *full* linearization space of short per-thread
//! programs. Each schedule replays against the real object *and* a
//! trivially-sequential reference model, asserting step-for-step result
//! equality — any ordering-dependent divergence a real scheduler could
//! produce is caught exhaustively. A real-thread stress companion
//! covers the axis the model cannot (actual blocking and wakeups).

use skyline_exec::{PushTimeout, TryPop, WorkQueue};
use skyline_storage::{BufferLease, BufferPool};
use skyline_testkit::interleave::{interleavings, schedule_count};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Pure sequential reference for the queue's observable behavior.
struct ModelQueue {
    items: VecDeque<u32>,
    closed: bool,
    cap: usize,
}

impl ModelQueue {
    fn new(cap: usize) -> Self {
        ModelQueue {
            items: VecDeque::new(),
            closed: false,
            cap,
        }
    }

    fn try_push(&mut self, item: u32) -> Result<(), u32> {
        if self.closed || self.items.len() >= self.cap {
            return Err(item);
        }
        self.items.push_back(item);
        Ok(())
    }

    fn try_pop(&mut self) -> TryPop<u32> {
        match self.items.pop_front() {
            Some(item) => TryPop::Item(item),
            None if self.closed => TryPop::Closed,
            None => TryPop::Empty,
        }
    }
}

#[test]
fn queue_matches_reference_model_on_every_interleaving() {
    // producer: try_push 0, 1; consumer: try_pop ×3; closer: close.
    // Capacity 1 exercises full-rejection; the late pops exercise the
    // drain-then-Closed protocol.
    let shape = [2usize, 3, 1];
    let explored = interleavings(&shape, |schedule| {
        let real = WorkQueue::bounded(1);
        let mut model = ModelQueue::new(1);
        let mut next_item = 0u32;
        let mut pops_done = 0usize;
        for &t in schedule {
            match t {
                0 => {
                    let got = real.try_push(next_item);
                    let want = model.try_push(next_item);
                    assert_eq!(got, want, "push at {schedule:?}");
                    next_item += 1;
                }
                1 => {
                    let got = real.try_pop();
                    let want = model.try_pop();
                    assert_eq!(got, want, "pop {pops_done} at {schedule:?}");
                    pops_done += 1;
                }
                _ => {
                    real.close();
                    model.closed = true;
                }
            }
            // step invariants: bounded, conservation, closed agreement
            assert!(real.len() <= 1);
            assert_eq!(real.pushed() - real.popped(), real.len() as u64);
            assert_eq!(real.is_closed(), model.closed);
            assert_eq!(real.len(), model.items.len());
        }
    });
    assert_eq!(explored, schedule_count(&shape));
}

#[test]
fn close_during_push_returns_or_keeps_every_item_on_every_interleaving() {
    // The close-during-push race: producer pushes 0 then 1 (capacity 2,
    // so neither push can block — each is one linearizable step);
    // closer closes between any pair of steps. A push ordered before
    // the close must enqueue an item that later drains; a push ordered
    // after it must hand the item back. No interleaving may drop an
    // item or accept one past the close point.
    let shape = [2usize, 1];
    let explored = interleavings(&shape, |schedule| {
        let q = WorkQueue::bounded(2);
        let mut accepted = Vec::new();
        let mut returned = Vec::new();
        let mut next = 0u32;
        let mut closed = false;
        for &t in schedule {
            if t == 0 {
                match q.push(next) {
                    Ok(()) => {
                        assert!(!closed, "push after close must fail ({schedule:?})");
                        accepted.push(next);
                    }
                    Err(item) => {
                        assert!(closed, "push may only fail once closed ({schedule:?})");
                        assert_eq!(item, next, "the producer keeps its exact item");
                        returned.push(item);
                    }
                }
                next += 1;
            } else {
                q.close();
                closed = true;
            }
        }
        let mut drained = Vec::new();
        while let TryPop::Item(i) = q.try_pop() {
            drained.push(i);
        }
        assert_eq!(
            drained, accepted,
            "pre-close pushes drain FIFO ({schedule:?})"
        );
        assert_eq!(q.try_pop(), TryPop::Closed);
        assert_eq!(
            accepted.len() + returned.len(),
            2,
            "every item is accepted or returned, never dropped ({schedule:?})"
        );
    });
    assert_eq!(explored, schedule_count(&shape));
}

#[test]
fn deadline_push_race_with_close_times_out_or_refuses_on_every_interleaving() {
    // Same race for the deadline-bounded push, on a queue kept full so
    // the only outcomes are the two typed refusals. The deadline is
    // already past, so the wait collapses to its timeout check and each
    // push stays a single non-blocking step: before the close it must
    // report TimedOut, after it Closed — and both hand the item back
    // while the queued item survives to drain.
    let shape = [2usize, 1];
    let explored = interleavings(&shape, |schedule| {
        let q = WorkQueue::bounded(1);
        q.try_push(7u32).unwrap();
        let deadline = Instant::now();
        let mut closed = false;
        for &t in schedule {
            if t == 0 {
                match q.push_deadline(9, deadline) {
                    Err(PushTimeout::TimedOut(9)) => {
                        assert!(!closed, "timeout only while open ({schedule:?})");
                    }
                    Err(PushTimeout::Closed(9)) => {
                        assert!(closed, "refusal only once closed ({schedule:?})");
                    }
                    other => panic!("full queue must refuse: {other:?} ({schedule:?})"),
                }
            } else {
                q.close();
                closed = true;
            }
        }
        assert_eq!(q.pop(), Some(7), "the queued item is never displaced");
        assert_eq!(q.pop(), None);
    });
    assert_eq!(explored, schedule_count(&shape));
}

#[test]
fn lease_handoff_conserves_pool_pages_on_every_interleaving() {
    // The run-formation protocol in miniature: the producer reserves a
    // one-page arena from the shared pool and hands the *lease itself*
    // through the queue; the worker pops and drops it. The pool must
    // account exactly one page per queued-or-held lease at every step,
    // and end empty — under every possible order of those steps.
    let shape = [3usize, 3];
    let explored = interleavings(&shape, |schedule| {
        let pool = BufferPool::new(2);
        let queue: WorkQueue<BufferLease> = WorkQueue::bounded(1);
        let mut producer_rejections = 0usize;
        for &t in schedule {
            if t == 0 {
                // reserve-then-push is two lock acquisitions, but the
                // lease never escapes this op: on a full queue it is
                // dropped (released) before the op completes, so the
                // op is atomic as far as pool accounting is concerned
                match pool.reserve(1) {
                    Ok(lease) => {
                        if queue.try_push(lease).is_err() {
                            producer_rejections += 1; // lease dropped
                        }
                    }
                    Err(_) => producer_rejections += 1,
                }
            } else {
                // worker: pop an arena and immediately release it
                drop(queue.try_pop());
            }
            assert_eq!(
                pool.used(),
                queue.len(),
                "one page per queued lease at every step ({schedule:?})"
            );
        }
        while let TryPop::Item(lease) = queue.try_pop() {
            drop(lease);
        }
        assert_eq!(pool.used(), 0, "pool empty after drain ({schedule:?})");
        assert!(pool.peak() <= 2);
        assert!(producer_rejections <= 3);
    });
    assert_eq!(explored, schedule_count(&shape));
}

#[test]
fn real_thread_stress_conserves_leases_and_bounds_memory() {
    // Companion to the models above with actual blocking: 2 producers ×
    // 100 arenas through a capacity-2 queue into 2 draining workers.
    // Backpressure bounds live leases by queue capacity + one in-flight
    // arena per thread; everything is released by the end.
    const PER_PRODUCER: u64 = 100;
    let cap = 2usize;
    // worst case live: queued (cap) + one per producer + one per worker
    let pool = Arc::new(BufferPool::new(cap + 4));
    let queue: Arc<WorkQueue<BufferLease>> = Arc::new(WorkQueue::bounded(cap));
    let drained: u64 = std::thread::scope(|s| {
        for _ in 0..2 {
            let pool = Arc::clone(&pool);
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                for _ in 0..PER_PRODUCER {
                    let lease = pool.reserve(1).expect("pool sized for worst case");
                    if queue.push(lease).is_err() {
                        panic!("queue closed while producing");
                    }
                }
            });
        }
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                s.spawn(move || {
                    let mut n = 0u64;
                    while let Some(lease) = queue.pop() {
                        drop(lease);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        while queue.pushed() < 2 * PER_PRODUCER {
            std::thread::yield_now();
        }
        queue.close();
        workers.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(drained, 2 * PER_PRODUCER);
    assert_eq!(queue.popped(), 2 * PER_PRODUCER);
    assert_eq!(pool.used(), 0, "every lease released");
    assert!(
        pool.peak() <= cap + 4,
        "backpressure bounds live arenas: peak {} > {}",
        pool.peak(),
        cap + 4
    );
}
