//! Differential property test for the [`KeyBatch`] selection-vector
//! algebra.
//!
//! The reference model is the obvious one: a `Vec<(key, row_id)>` of
//! the live logical rows, in logical order. `select` gathers by index
//! (repeats allowed), `filter` retains, `slice` takes a subrange,
//! `compact` is the identity on the logical view, and `push` appends.
//! Each seeded case replays a random program of those operations
//! against both the real batch and the model, asserting after every
//! step that the full observable surface agrees: `len`, `is_empty`,
//! `bytes`, `value`, `row_id_at`, and `key_at`. Because `select`
//! composes with whatever selection is already in place, a passing grid
//! here proves the physical indirection is never observable — the one
//! invariant every batch operator leans on.

use skyline_exec::batch::KeyBatch;
use skyline_testkit::{cases, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The live logical rows in logical order: `(key, row_id)`.
type Model = Vec<(Vec<f64>, u64)>;

/// Assert every observable of `batch` matches the model.
fn assert_agrees(batch: &KeyBatch, model: &Model, d: usize, ctx: &str) {
    assert_eq!(batch.dims(), d, "{ctx}: dims");
    assert_eq!(batch.len(), model.len(), "{ctx}: len");
    assert_eq!(batch.is_empty(), model.is_empty(), "{ctx}: is_empty");
    assert_eq!(
        batch.bytes(),
        (model.len() * 8 * (d + 1)) as u64,
        "{ctx}: bytes"
    );
    let mut key = Vec::new();
    for (i, (want_key, want_id)) in model.iter().enumerate() {
        assert_eq!(batch.row_id_at(i), *want_id, "{ctx}: row_id_at({i})");
        batch.key_at(i, &mut key);
        assert_eq!(&key, want_key, "{ctx}: key_at({i})");
        for (j, want) in want_key.iter().enumerate() {
            assert_eq!(batch.value(j, i), *want, "{ctx}: value({j},{i})");
        }
    }
}

/// Append `count` random rows to both sides (legal only when no
/// selection is active — callers compact first).
fn push_rows(rng: &mut Rng, batch: &mut KeyBatch, model: &mut Model, d: usize, count: usize) {
    for _ in 0..count {
        let key: Vec<f64> = (0..d).map(|_| rng.i32_inclusive(-8, 8) as f64).collect();
        let row_id = rng.u64_below(1 << 40);
        batch.push(&key, row_id);
        model.push((key, row_id));
    }
}

#[test]
fn key_batch_matches_the_vec_model_over_random_programs() {
    cases(64, 0x0920_030B, |rng| {
        let d = 1 + rng.usize_below(6);
        let mut batch = KeyBatch::new(d);
        let mut model: Model = Vec::new();
        let mut compacted = true; // no selection yet
        let fill = 4 + rng.usize_below(60);
        push_rows(rng, &mut batch, &mut model, d, fill);
        assert_agrees(&batch, &model, d, "initial fill");

        for step in 0..40 {
            match rng.usize_below(6) {
                // select: random gather, repeats and reorders allowed —
                // must compose with any existing selection.
                0 => {
                    let take = rng.usize_below(model.len() + 1);
                    let idx: Vec<u32> = (0..take)
                        .map(|_| rng.usize_below(model.len().max(1)) as u32)
                        .collect();
                    let idx = if model.is_empty() { Vec::new() } else { idx };
                    batch.select(&idx);
                    model = idx.iter().map(|&i| model[i as usize].clone()).collect();
                    compacted = false;
                }
                // filter: keep rows whose key in a random dimension
                // clears a random threshold.
                1 => {
                    let j = rng.usize_below(d);
                    let cut = rng.i32_inclusive(-8, 8) as f64;
                    batch.filter(|b, i| b.value(j, i) >= cut);
                    model.retain(|(key, _)| key[j] >= cut);
                    compacted = false;
                }
                // slice: random in-range window.
                2 => {
                    let offset = rng.usize_below(model.len() + 1);
                    let len = rng.usize_below(model.len() - offset + 1);
                    batch.slice(offset, len);
                    model = model[offset..offset + len].to_vec();
                    compacted = false;
                }
                // compact: identity on the logical view, but afterwards
                // the physical storage must equal the logical view.
                3 => {
                    batch.compact();
                    assert!(batch.selection().is_none(), "compact drops the selection");
                    assert_eq!(batch.physical_len(), model.len(), "compact physical_len");
                    for j in 0..d {
                        let col: Vec<f64> = model.iter().map(|(k, _)| k[j]).collect();
                        assert_eq!(batch.col(j), col.as_slice(), "compacted col {j}");
                    }
                    compacted = true;
                }
                // push: legal only on a compacted batch.
                4 => {
                    if !compacted {
                        batch.compact();
                        compacted = true;
                    }
                    let count = 1 + rng.usize_below(8);
                    push_rows(rng, &mut batch, &mut model, d, count);
                }
                // clear: back to empty, same shape.
                _ => {
                    batch.clear();
                    model.clear();
                    compacted = true;
                    if rng.bool() {
                        let count = rng.usize_below(12);
                        push_rows(rng, &mut batch, &mut model, d, count);
                    }
                }
            }
            assert_agrees(&batch, &model, d, &format!("step {step}"));
        }
    });
}

#[test]
fn select_composes_like_function_application() {
    // select(a) then select(b) must equal select(a ∘ b) applied to the
    // original rows — the law the filter/slice sugar relies on.
    cases(32, 0x0A16_EB2A, |rng| {
        let d = 1 + rng.usize_below(4);
        let n = 8 + rng.usize_below(24);
        let mut base = KeyBatch::new(d);
        let mut model: Model = Vec::new();
        push_rows(rng, &mut base, &mut model, d, n);

        let a: Vec<u32> = (0..rng.usize_below(n + 1))
            .map(|_| rng.usize_below(n) as u32)
            .collect();
        let b: Vec<u32> = (0..rng.usize_below(a.len() + 1))
            .map(|_| rng.usize_below(a.len().max(1)) as u32)
            .collect();
        let b = if a.is_empty() { Vec::new() } else { b };

        base.select(&a);
        base.select(&b);

        let composed: Model = b
            .iter()
            .map(|&i| model[a[i as usize] as usize].clone())
            .collect();
        assert_agrees(&base, &composed, d, "select∘select");

        // compact must not change the logical view it materializes.
        base.compact();
        assert_agrees(&base, &composed, d, "compact(select∘select)");
    });
}

#[test]
fn reset_reshapes_and_empties() {
    let mut batch = KeyBatch::new(3);
    batch.push(&[1.0, 2.0, 3.0], 7);
    batch.slice(0, 1);
    batch.reset(5);
    assert_eq!(batch.dims(), 5);
    assert!(batch.is_empty());
    assert!(batch.selection().is_none());
    batch.push(&[0.0; 5], 9);
    assert_eq!(batch.len(), 1);
    assert_eq!(batch.row_id_at(0), 9);
}

#[test]
fn contract_violations_panic() {
    // push under a live selection
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut b = KeyBatch::new(2);
        b.push(&[1.0, 2.0], 0);
        b.slice(0, 1);
        b.push(&[3.0, 4.0], 1);
    }));
    assert!(err.is_err(), "push under a selection must panic");

    // select past the logical end
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut b = KeyBatch::new(2);
        b.push(&[1.0, 2.0], 0);
        b.slice(0, 0);
        b.select(&[0]);
    }));
    assert!(err.is_err(), "select beyond the logical length must panic");

    // slice past the logical end
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut b = KeyBatch::new(2);
        b.push(&[1.0, 2.0], 0);
        b.slice(0, 2);
    }));
    assert!(err.is_err(), "out-of-range slice must panic");

    // width mismatch
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut b = KeyBatch::new(2);
        b.push(&[1.0], 0);
    }));
    assert!(err.is_err(), "key width mismatch must panic");
}
