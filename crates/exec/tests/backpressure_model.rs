//! Model-checked concurrency tests for [`Backpressure`] — the
//! admission gate the server arc will put in front of long-lived
//! sessions.
//!
//! Same method as `queue_model.rs`: one mutex guards the gate's whole
//! state, so every operation is a single linearizable step and
//! `skyline_testkit::interleave` explores the *full* linearization
//! space of short per-thread programs against a trivially-sequential
//! reference model. Real-thread companions cover the axis the model
//! cannot — actual blocking — asserting no lost wakeups (every release
//! wakes an admitter) and that close() releases all waiters.

use skyline_exec::{Backpressure, TryAcquire};
use skyline_testkit::interleave::{interleavings, schedule_count};
use std::sync::Arc;

/// Pure sequential reference for the gate's observable behavior.
struct ModelGate {
    available: usize,
    closed: bool,
    granted: u64,
    returned: u64,
}

impl ModelGate {
    fn new(credits: usize) -> Self {
        ModelGate {
            available: credits,
            closed: false,
            granted: 0,
            returned: 0,
        }
    }

    fn try_acquire(&mut self) -> TryAcquire {
        if self.closed {
            TryAcquire::Closed
        } else if self.available > 0 {
            self.available -= 1;
            self.granted += 1;
            TryAcquire::Granted
        } else {
            TryAcquire::Exhausted
        }
    }

    fn release(&mut self) {
        self.available += 1;
        self.returned += 1;
    }
}

#[test]
fn gate_matches_reference_model_on_every_interleaving() {
    // admitter: try_acquire ×2; finisher: release; closer: close.
    // One credit exercises exhaustion; the closer exercises refusal in
    // every position relative to the grants.
    let shape = [2usize, 1, 1];
    let explored = interleavings(&shape, |schedule| {
        let real = Backpressure::new(1);
        let mut model = ModelGate::new(1);
        for &t in schedule {
            match t {
                0 => {
                    let got = real.try_acquire();
                    let want = model.try_acquire();
                    assert_eq!(got, want, "acquire at {schedule:?}");
                }
                1 => {
                    real.release();
                    model.release();
                }
                _ => {
                    real.close();
                    model.closed = true;
                }
            }
            // step invariants: state agreement and grant/return
            // conservation at every prefix of every schedule
            assert_eq!(real.available(), model.available);
            assert_eq!(real.is_closed(), model.closed);
            assert_eq!(real.granted(), model.granted);
            assert_eq!(real.returned(), model.returned);
            assert_eq!(
                real.outstanding(),
                model.granted.saturating_sub(model.returned)
            );
        }
    });
    assert_eq!(explored, schedule_count(&shape));
}

#[test]
fn two_admitters_conserve_credits_on_every_interleaving() {
    // Two competing admitters against a 1-credit gate, with a finisher
    // returning one credit: however the grants interleave, at most one
    // credit is ever outstanding per un-returned grant.
    let shape = [2usize, 2, 1];
    let explored = interleavings(&shape, |schedule| {
        let real = Backpressure::new(1);
        let mut model = ModelGate::new(1);
        for &t in schedule {
            match t {
                0 | 1 => {
                    let got = real.try_acquire();
                    let want = model.try_acquire();
                    assert_eq!(got, want, "admitter {t} at {schedule:?}");
                }
                _ => {
                    real.release();
                    model.release();
                }
            }
            assert_eq!(real.available(), model.available);
            assert_eq!(real.granted(), model.granted);
            // credit conservation: every acquire moves one credit from
            // the pool to a holder, every release moves one back, so
            // available + granted − returned is always the capacity
            assert_eq!(
                real.available() as u64 + real.granted() - real.returned(),
                1,
                "credit conservation at {schedule:?}"
            );
        }
    });
    assert_eq!(explored, schedule_count(&shape));
}

#[test]
fn real_thread_stress_has_no_lost_wakeups() {
    // 4 admitters × 50 rounds through a 2-credit gate, with blocking
    // acquire. A lost wakeup (a release whose notify lands nowhere
    // while an acquirer sleeps) would deadlock this test; completion
    // plus exact conservation is the assertion.
    const ROUNDS: u64 = 50;
    const THREADS: u64 = 4;
    let gate = Arc::new(Backpressure::new(2));
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let gate = Arc::clone(&gate);
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    assert!(gate.acquire(), "gate is never closed here");
                    std::thread::yield_now();
                    gate.release();
                }
            });
        }
    });
    assert_eq!(gate.granted(), THREADS * ROUNDS);
    assert_eq!(gate.returned(), THREADS * ROUNDS);
    assert_eq!(gate.outstanding(), 0);
    assert_eq!(gate.available(), 2, "all credits back in the pool");
}

#[test]
fn real_thread_close_releases_all_waiters() {
    // Exhaust the gate, park three blocking acquirers on it, close.
    // Every waiter must wake with a refusal — none may hang (the
    // shutdown-liveness contract).
    let gate = Arc::new(Backpressure::new(1));
    assert!(gate.acquire());
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.acquire())
        })
        .collect();
    // give the waiters time to actually block on the empty gate
    std::thread::sleep(std::time::Duration::from_millis(20));
    gate.close();
    for h in waiters {
        assert!(!h.join().unwrap(), "close must refuse every waiter");
    }
    // the in-flight credit still comes home after close
    gate.release();
    assert_eq!(gate.outstanding(), 0);
}
