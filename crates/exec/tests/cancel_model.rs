//! Model-checked concurrency tests for [`CancelToken`].
//!
//! The token is one atomic flag (plus an immutable deadline), so every
//! `cancel`/`check` call is a single linearizable step; exploring all
//! interleavings of short per-thread programs with
//! `skyline_testkit::interleave` covers every ordering a real scheduler
//! could produce. The property under test is *monotonicity*: once any
//! observer sees the token tripped, no later observation — on any
//! clone — may see it untripped.

use skyline_exec::cancel::{poll, CANCEL_CHECK_INTERVAL};
use skyline_exec::{CancelToken, ExecError};
use std::time::Duration;

/// Replay: thread 0 cancels (its single op); threads 1..n each check
/// the token twice through their own clone. Assert per-observer
/// monotonicity and that the cancel is globally visible afterwards.
fn replay_cancel_vs_observers(observers: usize, schedule: &[usize]) {
    let token = CancelToken::new();
    let clones: Vec<CancelToken> = (0..observers).map(|_| token.clone()).collect();
    let mut seen: Vec<Vec<bool>> = vec![Vec::new(); observers];
    let mut cancelled_at: Option<usize> = None;
    for (step, &t) in schedule.iter().enumerate() {
        if t == 0 {
            token.cancel();
            cancelled_at = Some(step);
        } else {
            let tripped = clones[t - 1].check(step as u64).is_err();
            assert_eq!(tripped, clones[t - 1].is_cancelled());
            // an observation after the cancel step must see it
            if cancelled_at.is_some() {
                assert!(tripped, "check after cancel returned Ok");
            }
            seen[t - 1].push(tripped);
        }
    }
    for history in &seen {
        // monotone: no true followed by false
        assert!(
            history.windows(2).all(|w| w[0] <= w[1]),
            "observer saw the token un-trip: {history:?}"
        );
    }
    assert!(token.is_cancelled());
}

#[test]
fn cancellation_is_monotone_across_every_interleaving() {
    // 1 canceller + 2 observers × 2 checks: 5!/(1!2!2!) = 30 schedules
    let explored = skyline_testkit::interleave::interleavings(&[1, 2, 2], |s| {
        replay_cancel_vs_observers(2, s);
    });
    assert_eq!(explored, 30);
}

#[test]
fn double_cancel_is_idempotent_in_every_interleaving() {
    // two cancellers racing + one observer checking twice
    skyline_testkit::interleave::interleavings(&[1, 1, 2], |schedule| {
        let token = CancelToken::new();
        let observer = token.clone();
        let mut cancels = 0usize;
        for &t in schedule {
            match t {
                0 | 1 => {
                    token.cancel();
                    cancels += 1;
                }
                _ => {
                    let r = observer.check(0);
                    if cancels > 0 {
                        assert!(matches!(
                            r,
                            Err(ExecError::Cancelled {
                                records_processed: 0
                            })
                        ));
                    } else {
                        assert!(r.is_ok());
                    }
                }
            }
        }
        assert!(token.is_cancelled());
    });
}

/// Linked-token fan-out: thread 0 cancels the parent, thread 1 cancels
/// child `a`, thread 2 observes child `b` twice. In every interleaving
/// `b` must trip exactly when the *parent* cancel has happened — a
/// sibling's cancel is never visible — and the observation history must
/// stay monotone.
#[test]
fn linked_tokens_fan_out_down_but_never_sideways() {
    let explored = skyline_testkit::interleave::interleavings(&[1, 1, 2], |schedule| {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        let mut parent_cancelled = false;
        let mut history = Vec::new();
        for &t in schedule {
            match t {
                0 => {
                    parent.cancel();
                    parent_cancelled = true;
                }
                1 => {
                    a.cancel();
                    assert!(a.is_cancelled(), "own cancel is immediately visible");
                }
                _ => {
                    let tripped = b.is_cancelled();
                    assert_eq!(
                        tripped, parent_cancelled,
                        "child must trip exactly with its parent, never its sibling"
                    );
                    history.push(tripped);
                }
            }
        }
        assert!(
            parent.is_cancelled() && a.is_cancelled() && b.is_cancelled(),
            "after both cancels the whole family is tripped"
        );
        assert!(
            history.windows(2).all(|w| w[0] <= w[1]),
            "observer saw a child un-trip: {history:?}"
        );
    });
    assert_eq!(explored, 12); // 4!/(1!·1!·2!)
}

/// A child's typed error carries the caller's progress count, same as a
/// root token's.
#[test]
fn child_check_reports_partial_progress() {
    let parent = CancelToken::new();
    let child = parent.child();
    parent.cancel();
    assert!(matches!(
        child.check(42),
        Err(ExecError::Cancelled {
            records_processed: 42
        })
    ));
}

#[test]
fn elapsed_deadline_trips_without_any_cancel_call() {
    let token = CancelToken::with_deadline(Duration::ZERO);
    assert!(token.is_cancelled());
    assert!(matches!(
        token.check(3),
        Err(ExecError::Cancelled {
            records_processed: 3
        })
    ));
    // and a generous deadline does not trip on its own
    let patient = CancelToken::with_deadline(Duration::from_secs(3600));
    assert!(patient.check(0).is_ok());
}

#[test]
fn poll_only_observes_at_interval_boundaries() {
    let token = CancelToken::new();
    token.cancel();
    assert!(poll(Some(&token), CANCEL_CHECK_INTERVAL - 1).is_ok());
    assert!(poll(Some(&token), CANCEL_CHECK_INTERVAL).is_err());
    assert!(poll(Some(&token), 0).is_err(), "count 0 always checks");
    assert!(poll(None, 0).is_ok());
}

/// Real threads: pollers spin until they observe the cancel; the test
/// terminating at all proves propagation to every clone (this is the
/// program the TSan CI job runs under instrumentation).
#[test]
fn parallel_pollers_all_observe_a_real_cancel() {
    let token = CancelToken::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = token.clone();
                s.spawn(move || {
                    let mut polls = 0u64;
                    while t.check(polls).is_ok() {
                        polls += 1;
                        std::thread::yield_now();
                    }
                    polls
                })
            })
            .collect();
        token.cancel();
        for h in handles {
            let _polls = h.join().expect("poller panicked");
        }
    });
    assert!(token.is_cancelled());
}
