//! Selection operator.

use crate::error::ExecError;
use crate::op::{BoxedOperator, Operator};

/// Predicate over a raw record.
pub type RecordPredicate = Box<dyn Fn(&[u8]) -> bool + Send>;

/// Streams only the child records satisfying a predicate.
///
/// Selections matter to skyline processing: the paper notes the skyline
/// operator is *holistic* — it does not commute with selection — so a
/// `WHERE` clause must be applied below the skyline operator, which is why
/// skyline algorithms must compose with arbitrary inputs (and why
/// index-based skyline methods fall down).
pub struct Filter {
    child: BoxedOperator,
    pred: RecordPredicate,
    // Passing records are copied here: returning the child's slice from
    // inside the probe loop would extend its borrow across loop iterations,
    // which the current borrow checker rejects. One ≤100-byte memcpy per
    // emitted record is noise next to the predicate itself.
    buf: Vec<u8>,
}

impl Filter {
    /// Filter `child` by `pred`.
    pub fn new(child: BoxedOperator, pred: RecordPredicate) -> Self {
        Filter {
            child,
            pred,
            buf: Vec::new(),
        }
    }
}

impl Operator for Filter {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        loop {
            match self.child.next()? {
                None => return Ok(None),
                Some(r) => {
                    if (self.pred)(r) {
                        self.buf.clear();
                        self.buf.extend_from_slice(r);
                        break;
                    }
                }
            }
        }
        Ok(Some(&self.buf))
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn record_size(&self) -> usize {
        self.child.record_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, MemSource};

    #[test]
    fn filters_records() {
        let recs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        let src = Box::new(MemSource::new(recs, 1));
        let mut f = Filter::new(src, Box::new(|r| r[0] % 2 == 0));
        let out = collect(&mut f).unwrap();
        assert_eq!(out, vec![vec![0], vec![2], vec![4], vec![6], vec![8]]);
    }

    #[test]
    fn empty_result_ok() {
        let recs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i]).collect();
        let src = Box::new(MemSource::new(recs, 1));
        let mut f = Filter::new(src, Box::new(|_| false));
        assert!(collect(&mut f).unwrap().is_empty());
    }

    #[test]
    fn all_pass_preserves_order() {
        let recs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i]).collect();
        let src = Box::new(MemSource::new(recs.clone(), 1));
        let mut f = Filter::new(src, Box::new(|_| true));
        assert_eq!(collect(&mut f).unwrap(), recs);
    }
}
