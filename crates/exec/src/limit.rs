//! LIMIT / top-N truncation.

use crate::error::ExecError;
use crate::op::{BoxedOperator, Operator};

/// Stops the stream after `n` records.
///
/// SFS's pipelined output makes `Limit` genuinely useful above a skyline
/// operator (paper §4.4: "the algorithm can be stopped early … if the user
/// only wants some answers, or the top N answers"); above BNL it saves
/// nothing, because BNL blocks until the full pass structure completes.
pub struct Limit {
    child: BoxedOperator,
    n: u64,
    emitted: u64,
    /// Whether the child has been closed early.
    exhausted: bool,
}

impl Limit {
    /// Pass through at most `n` records of `child`.
    pub fn new(child: BoxedOperator, n: u64) -> Self {
        Limit {
            child,
            n,
            emitted: 0,
            exhausted: false,
        }
    }
}

impl Operator for Limit {
    fn open(&mut self) -> Result<(), ExecError> {
        self.emitted = 0;
        self.exhausted = false;
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        if self.emitted >= self.n {
            if !self.exhausted {
                // Early stop: release the child's resources right away.
                self.child.close();
                self.exhausted = true;
            }
            return Ok(None);
        }
        match self.child.next()? {
            None => {
                self.exhausted = true;
                Ok(None)
            }
            Some(r) => {
                self.emitted += 1;
                Ok(Some(r))
            }
        }
    }

    fn close(&mut self) {
        if !self.exhausted {
            self.child.close();
            self.exhausted = true;
        }
    }

    fn record_size(&self) -> usize {
        self.child.record_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, MemSource};

    #[test]
    fn truncates() {
        let recs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        let src = Box::new(MemSource::new(recs, 1));
        let mut l = Limit::new(src, 3);
        assert_eq!(collect(&mut l).unwrap(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn limit_zero_emits_nothing() {
        let recs: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i]).collect();
        let src = Box::new(MemSource::new(recs, 1));
        let mut l = Limit::new(src, 0);
        assert!(collect(&mut l).unwrap().is_empty());
    }

    #[test]
    fn limit_larger_than_stream() {
        let recs: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i]).collect();
        let src = Box::new(MemSource::new(recs.clone(), 1));
        let mut l = Limit::new(src, 100);
        assert_eq!(collect(&mut l).unwrap(), recs);
    }

    #[test]
    fn reopen_resets_count() {
        let recs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i]).collect();
        let src = Box::new(MemSource::new(recs, 1));
        let mut l = Limit::new(src, 2);
        assert_eq!(collect(&mut l).unwrap().len(), 2);
        assert_eq!(collect(&mut l).unwrap().len(), 2);
    }
}
