//! Record-layout projection.

use crate::error::ExecError;
use crate::op::{BoxedOperator, Operator};
use skyline_relation::RecordLayout;

/// Rewrites each child record into a new layout: a chosen subset/reordering
/// of the i32 attributes, optionally keeping the payload.
///
/// This is the building block of the paper's *projection optimization*:
/// window entries keep only the skyline attributes (dropping the 60-byte
/// string), so ~2.5× more entries fit per window page.
pub struct Project {
    child: BoxedOperator,
    in_layout: RecordLayout,
    out_layout: RecordLayout,
    attr_map: Vec<usize>,
    keep_payload: bool,
    buf: Vec<u8>,
}

impl Project {
    /// Project `child` (whose records follow `in_layout`) onto the
    /// attributes listed in `attr_map` (indices into the input layout),
    /// keeping the payload iff `keep_payload`.
    ///
    /// # Errors
    /// [`ExecError::Config`] when the child's record size disagrees with
    /// `in_layout` or an `attr_map` index is out of range.
    pub fn new(
        child: BoxedOperator,
        in_layout: RecordLayout,
        attr_map: Vec<usize>,
        keep_payload: bool,
    ) -> Result<Self, ExecError> {
        if child.record_size() != in_layout.record_size() {
            return Err(ExecError::Config(format!(
                "child records are {} bytes but layout says {}",
                child.record_size(),
                in_layout.record_size()
            )));
        }
        if let Some(&bad) = attr_map.iter().find(|&&i| i >= in_layout.dims) {
            return Err(ExecError::Config(format!(
                "attribute index {bad} out of range (layout has {} dims)",
                in_layout.dims
            )));
        }
        let out_layout = RecordLayout::new(
            attr_map.len(),
            if keep_payload { in_layout.payload } else { 0 },
        );
        Ok(Project {
            child,
            in_layout,
            out_layout,
            attr_map,
            keep_payload,
            buf: Vec::new(),
        })
    }

    /// The output layout.
    pub fn out_layout(&self) -> RecordLayout {
        self.out_layout
    }
}

impl Operator for Project {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        let Some(r) = self.child.next()? else {
            return Ok(None);
        };
        self.buf.clear();
        for &i in &self.attr_map {
            self.buf
                .extend_from_slice(&self.in_layout.attr(r, i).to_le_bytes());
        }
        if self.keep_payload {
            self.buf.extend_from_slice(self.in_layout.payload_of(r));
        }
        Ok(Some(&self.buf))
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn record_size(&self) -> usize {
        self.out_layout.record_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, MemSource};

    #[test]
    fn projects_and_reorders_attrs() {
        let layout = RecordLayout::new(3, 4);
        let recs = vec![
            layout.encode(&[1, 2, 3], b"abcd"),
            layout.encode(&[4, 5, 6], b"wxyz"),
        ];
        let src = Box::new(MemSource::new(recs, layout.record_size()));
        let mut p = Project::new(src, layout, vec![2, 0], false).unwrap();
        let out = collect(&mut p).unwrap();
        let out_layout = RecordLayout::new(2, 0);
        assert_eq!(out_layout.decode_attrs(&out[0]), vec![3, 1]);
        assert_eq!(out_layout.decode_attrs(&out[1]), vec![6, 4]);
        assert_eq!(out[0].len(), 8);
    }

    #[test]
    fn keeps_payload_when_asked() {
        let layout = RecordLayout::new(2, 3);
        let recs = vec![layout.encode(&[7, 8], b"pay")];
        let src = Box::new(MemSource::new(recs, layout.record_size()));
        let mut p = Project::new(src, layout, vec![1], true).unwrap();
        let out = collect(&mut p).unwrap();
        let out_layout = RecordLayout::new(1, 3);
        assert_eq!(out_layout.decode_attrs(&out[0]), vec![8]);
        assert_eq!(out_layout.payload_of(&out[0]), b"pay");
    }

    #[test]
    fn bad_attr_index_rejected() {
        let layout = RecordLayout::new(2, 0);
        let src = Box::new(MemSource::new(vec![], layout.record_size()));
        assert!(matches!(
            Project::new(src, layout, vec![2], false),
            Err(ExecError::Config(_))
        ));
    }

    #[test]
    fn size_mismatch_rejected() {
        let layout = RecordLayout::new(2, 0);
        let src = Box::new(MemSource::new(vec![], 99));
        assert!(matches!(
            Project::new(src, layout, vec![0], false),
            Err(ExecError::Config(_))
        ));
    }
}
