//! Small locking helpers shared by the exec-crate concurrency primitives.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Acquire `m`, recovering the data on poison.
///
/// The queue and worker structures guard plain bookkeeping (VecDeques,
/// flags, counters); a panic while holding the lock cannot leave them in
/// a torn state, so poisoning carries no information here and is
/// deliberately ignored.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv`, recovering the guard on poison (same rationale as
/// [`lock`]).
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv` for at most `dur`, recovering the guard on poison (same
/// rationale as [`lock`]). Returns the reacquired guard and whether the
/// wait ended by timeout — callers re-check their predicate either way,
/// so a spurious wakeup and a raced timeout are both harmless.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    }
}

/// Extract a human-readable message from a worker panic payload, when
/// the payload was a string (the overwhelmingly common case).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    }
}
