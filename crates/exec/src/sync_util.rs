//! Small locking helpers shared by the exec-crate concurrency primitives.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Acquire `m`, recovering the data on poison.
///
/// The queue and worker structures guard plain bookkeeping (VecDeques,
/// flags, counters); a panic while holding the lock cannot leave them in
/// a torn state, so poisoning carries no information here and is
/// deliberately ignored.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv`, recovering the guard on poison (same rationale as
/// [`lock`]).
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Extract a human-readable message from a worker panic payload, when
/// the payload was a string (the overwhelmingly common case).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    }
}
