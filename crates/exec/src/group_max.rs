//! Group-max aggregation over grouped (sorted) input — the paper's
//! *dimensional reduction* pre-pass (Figure 8).
//!
//! ```sql
//! SELECT a_1, ..., a_{k-1}, MAX(a_k) AS a_k FROM R
//!   GROUP BY a_1, ..., a_{k-1}
//!   ORDER BY a_1 DESC, ..., a_{k-1} DESC;
//! ```
//!
//! Any tuple of a `(a₁..a_{k−1})` group with a non-maximal `a_k` cannot be
//! skyline, so the filter phase can run on one record per group. The paper:
//! with attribute domains 0–9 and a 4-dimensional skyline over a million
//! tuples this shrank the filter input to 99,826 tuples (~10%).

use crate::error::ExecError;
use crate::op::{BoxedOperator, Operator};
use skyline_relation::RecordLayout;

/// Emits, for each run of consecutive records sharing the `group_attrs`
/// values, one representative record: the one with the largest `max_attr`
/// (other attributes and payload are preserved from that representative —
/// the paper notes "other attributes of R … could be preserved during the
/// group-by computation").
///
/// Input must arrive grouped (e.g. nested-sorted on `group_attrs`), as
/// produced by [`crate::ExternalSort`].
pub struct GroupMax {
    child: BoxedOperator,
    layout: RecordLayout,
    group_attrs: Vec<usize>,
    max_attr: usize,
    /// Best record of the group currently being consumed.
    cur_best: Option<Vec<u8>>,
    /// Record handed back to the caller.
    out: Vec<u8>,
    input_done: bool,
}

impl GroupMax {
    /// Build the operator; `group_attrs` and `max_attr` index into
    /// `layout`'s attributes and must be disjoint.
    ///
    /// # Errors
    /// [`ExecError::Config`] when the child's record size disagrees with
    /// `layout`, or an attribute index is out of range / non-disjoint.
    pub fn new(
        child: BoxedOperator,
        layout: RecordLayout,
        group_attrs: Vec<usize>,
        max_attr: usize,
    ) -> Result<Self, ExecError> {
        if child.record_size() != layout.record_size() {
            return Err(ExecError::Config(format!(
                "child records are {} bytes but layout says {}",
                child.record_size(),
                layout.record_size()
            )));
        }
        if group_attrs.iter().any(|&i| i >= layout.dims) || max_attr >= layout.dims {
            return Err(ExecError::Config("attribute index out of range".into()));
        }
        if group_attrs.contains(&max_attr) {
            return Err(ExecError::Config(
                "max attribute cannot also be a group attribute".into(),
            ));
        }
        Ok(GroupMax {
            child,
            layout,
            group_attrs,
            max_attr,
            cur_best: None,
            out: Vec::new(),
            input_done: false,
        })
    }
}

impl Operator for GroupMax {
    fn open(&mut self) -> Result<(), ExecError> {
        self.cur_best = None;
        self.input_done = false;
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        if self.input_done {
            return Ok(match self.cur_best.take() {
                Some(b) => {
                    self.out = b;
                    Some(&self.out)
                }
                None => None,
            });
        }
        loop {
            match self.child.next()? {
                None => {
                    self.input_done = true;
                    return Ok(match self.cur_best.take() {
                        Some(b) => {
                            self.out = b;
                            Some(&self.out)
                        }
                        None => None,
                    });
                }
                Some(r) => match &mut self.cur_best {
                    None => self.cur_best = Some(r.to_vec()),
                    Some(best) => {
                        if self.layout.attr(best, self.max_attr)
                            == self.layout.attr(r, self.max_attr)
                            && best.as_slice() == r
                        {
                            continue; // exact duplicate, keep one
                        }
                        if self
                            .group_attrs
                            .iter()
                            .all(|&i| self.layout.attr(best, i) == self.layout.attr(r, i))
                        {
                            if self.layout.attr(r, self.max_attr)
                                > self.layout.attr(best, self.max_attr)
                            {
                                best.clear();
                                best.extend_from_slice(r);
                            }
                        } else {
                            // New group: emit the finished one, start fresh.
                            let finished = std::mem::replace(best, r.to_vec());
                            self.out = finished;
                            return Ok(Some(&self.out));
                        }
                    }
                },
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
        self.cur_best = None;
    }

    fn record_size(&self) -> usize {
        self.layout.record_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, MemSource};

    fn run(
        layout: RecordLayout,
        rows: Vec<Vec<i32>>,
        group: Vec<usize>,
        max: usize,
    ) -> Vec<Vec<i32>> {
        let recs: Vec<Vec<u8>> = rows.iter().map(|r| layout.encode(r, &[])).collect();
        let src = Box::new(MemSource::new(recs, layout.record_size()));
        let mut g = GroupMax::new(src, layout, group, max).unwrap();
        collect(&mut g)
            .unwrap()
            .iter()
            .map(|r| layout.decode_attrs(r))
            .collect()
    }

    #[test]
    fn one_record_per_group_with_max() {
        let layout = RecordLayout::new(3, 0);
        let rows = vec![
            vec![9, 9, 1],
            vec![9, 9, 7],
            vec![9, 9, 3],
            vec![9, 5, 2],
            vec![8, 5, 4],
            vec![8, 5, 9],
        ];
        let out = run(layout, rows, vec![0, 1], 2);
        assert_eq!(out, vec![vec![9, 9, 7], vec![9, 5, 2], vec![8, 5, 9]]);
    }

    #[test]
    fn singleton_groups_pass_through() {
        let layout = RecordLayout::new(2, 0);
        let rows = vec![vec![3, 1], vec![2, 5], vec![1, 9]];
        let out = run(layout, rows, vec![0], 1);
        assert_eq!(out, vec![vec![3, 1], vec![2, 5], vec![1, 9]]);
    }

    #[test]
    fn empty_input_empty_output() {
        let layout = RecordLayout::new(2, 0);
        let out = run(layout, vec![], vec![0], 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_group_collapses_to_one() {
        let layout = RecordLayout::new(2, 0);
        let rows = vec![vec![1, 4], vec![1, 8], vec![1, 2]];
        let out = run(layout, rows, vec![0], 1);
        assert_eq!(out, vec![vec![1, 8]]);
    }

    #[test]
    fn overlapping_group_and_max_rejected() {
        let layout = RecordLayout::new(2, 0);
        let src = Box::new(MemSource::new(vec![], layout.record_size()));
        assert!(GroupMax::new(src, layout, vec![0], 0).is_err());
    }

    #[test]
    fn representative_keeps_payload() {
        let layout = RecordLayout::new(2, 4);
        let recs = vec![
            layout.encode(&[1, 4], b"lose"),
            layout.encode(&[1, 8], b"win!"),
        ];
        let src = Box::new(MemSource::new(recs, layout.record_size()));
        let mut g = GroupMax::new(src, layout, vec![0], 1).unwrap();
        let out = collect(&mut g).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(layout.payload_of(&out[0]), b"win!");
    }
}
