//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheaply-cloneable handle combining an atomic
//! cancel flag with an optional deadline. Long-running operators
//! (multipass skyline filters, external sort) poll it at pass boundaries
//! and every few hundred records, returning
//! [`crate::ExecError::Cancelled`] with partial-progress accounting when
//! it trips. Checks are cooperative: an operator that never polls is
//! never interrupted.

use crate::error::ExecError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many records an operator processes between cancellation polls.
/// Coarse enough that the atomic load vanishes in the per-record cost,
/// fine enough that cancellation latency stays in the microsecond range.
pub const CANCEL_CHECK_INTERVAL: u64 = 256;

struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cancellation signal shared between a query's operators and whoever
/// may abort it. Clones share state.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only trips when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `timeout` has elapsed from
    /// construction.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Raise the cancel flag. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True when the flag is raised or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Check the token, converting a trip into a typed error carrying the
    /// caller's progress count.
    ///
    /// # Errors
    /// [`ExecError::Cancelled`] when the token has tripped.
    pub fn check(&self, records_processed: u64) -> Result<(), ExecError> {
        if self.is_cancelled() {
            Err(ExecError::Cancelled { records_processed })
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Poll `token` every [`CANCEL_CHECK_INTERVAL`] records: checks only when
/// `count` hits the interval boundary (and always at `count == 0`, so a
/// pre-cancelled token is caught before any work).
///
/// # Errors
/// [`ExecError::Cancelled`] when the token has tripped at a poll point.
pub fn poll(token: Option<&CancelToken>, count: u64) -> Result<(), ExecError> {
    match token {
        Some(t) if count.is_multiple_of(CANCEL_CHECK_INTERVAL) => t.check(count),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(
            t.check(7),
            Err(ExecError::Cancelled {
                records_processed: 7
            })
        ));
    }

    #[test]
    fn deadline_trips_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled(), "zero deadline is already past");
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn poll_checks_on_interval_boundaries_only() {
        let t = CancelToken::new();
        t.cancel();
        assert!(poll(Some(&t), 0).is_err(), "count 0 is a poll point");
        assert!(poll(Some(&t), 1).is_ok(), "off-boundary counts skip");
        assert!(poll(Some(&t), CANCEL_CHECK_INTERVAL).is_err());
        assert!(poll(None, 0).is_ok(), "no token, no trip");
    }
}
