//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheaply-cloneable handle combining an atomic
//! cancel flag with an optional deadline. Long-running operators
//! (multipass skyline filters, external sort) poll it at pass boundaries
//! and every few hundred records, returning
//! [`crate::ExecError::Cancelled`] with partial-progress accounting when
//! it trips. Checks are cooperative: an operator that never polls is
//! never interrupted.

use crate::error::ExecError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many records an operator processes between cancellation polls.
/// Coarse enough that the atomic load vanishes in the per-record cost,
/// fine enough that cancellation latency stays in the microsecond range.
pub const CANCEL_CHECK_INTERVAL: u64 = 256;

struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Linked-token fan-out: a child trips when any ancestor trips, but
    /// cancelling a child never touches its parent or siblings.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn tripped(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        match &self.parent {
            Some(p) => p.tripped(),
            None => false,
        }
    }
}

/// A cancellation signal shared between a query's operators and whoever
/// may abort it. Clones share state.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only trips when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that additionally trips once `timeout` has elapsed from
    /// construction.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: None,
            }),
        }
    }

    /// A child token linked to this one: it trips when *either* its own
    /// flag is raised or any ancestor trips, while cancelling the child
    /// leaves the parent — and therefore every sibling — untouched. This
    /// is the server fan-out shape: one shutdown token parents every
    /// per-query token, so shutdown cancels all sessions at once but a
    /// single session abort stays local.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// A child token (see [`CancelToken::child`]) that additionally trips
    /// once `timeout` has elapsed from construction — the per-query
    /// deadline shape.
    pub fn child_with_deadline(&self, timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Raise the cancel flag. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True when the flag is raised, the deadline has passed, or any
    /// ancestor token (see [`CancelToken::child`]) has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.inner.tripped()
    }

    /// Check the token, converting a trip into a typed error carrying the
    /// caller's progress count.
    ///
    /// # Errors
    /// [`ExecError::Cancelled`] when the token has tripped.
    pub fn check(&self, records_processed: u64) -> Result<(), ExecError> {
        if self.is_cancelled() {
            Err(ExecError::Cancelled { records_processed })
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Poll `token` every [`CANCEL_CHECK_INTERVAL`] records: checks only when
/// `count` hits the interval boundary (and always at `count == 0`, so a
/// pre-cancelled token is caught before any work).
///
/// # Errors
/// [`ExecError::Cancelled`] when the token has tripped at a poll point.
pub fn poll(token: Option<&CancelToken>, count: u64) -> Result<(), ExecError> {
    match token {
        Some(t) if count.is_multiple_of(CANCEL_CHECK_INTERVAL) => t.check(count),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(
            t.check(7),
            Err(ExecError::Cancelled {
                records_processed: 7
            })
        ));
    }

    #[test]
    fn deadline_trips_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled(), "zero deadline is already past");
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn parent_cancel_fans_out_to_children() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        parent.cancel();
        assert!(a.is_cancelled(), "parent cancel must reach child a");
        assert!(b.is_cancelled(), "parent cancel must reach child b");
    }

    #[test]
    fn child_cancel_stays_local() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not climb");
        assert!(!b.is_cancelled(), "child cancel must not reach siblings");
    }

    #[test]
    fn child_deadline_is_independent_of_parent() {
        let parent = CancelToken::new();
        let fast = parent.child_with_deadline(Duration::ZERO);
        let slow = parent.child_with_deadline(Duration::from_secs(3600));
        assert!(fast.is_cancelled(), "zero deadline is already past");
        assert!(!slow.is_cancelled());
        assert!(!parent.is_cancelled(), "deadline trips never climb");
    }

    #[test]
    fn grandchild_sees_root_cancel() {
        let root = CancelToken::new();
        let mid = root.child();
        let leaf = mid.child();
        root.cancel();
        assert!(leaf.is_cancelled(), "trips propagate down the whole chain");
    }

    #[test]
    fn poll_checks_on_interval_boundaries_only() {
        let t = CancelToken::new();
        t.cancel();
        assert!(poll(Some(&t), 0).is_err(), "count 0 is a poll point");
        assert!(poll(Some(&t), 1).is_ok(), "off-boundary counts skip");
        assert!(poll(Some(&t), CANCEL_CHECK_INTERVAL).is_err());
        assert!(poll(None, 0).is_ok(), "no token, no trip");
    }
}
