//! The operator trait and the leaf sources.

use crate::error::ExecError;
use skyline_storage::{HeapFile, SharedScanner};
use std::sync::Arc;

/// A physical operator producing a stream of fixed-width records.
///
/// Protocol: `open` once, then `next` until it returns `Ok(None)`, then
/// `close`. The slice returned by `next` is valid only until the following
/// `next`/`close` call (lending-iterator style), which keeps the hot path
/// allocation-free.
pub trait Operator {
    /// Prepare the stream. Blocking operators (sort) do their work here.
    fn open(&mut self) -> Result<(), ExecError>;

    /// Produce the next record, or `Ok(None)` at end of stream.
    fn next(&mut self) -> Result<Option<&[u8]>, ExecError>;

    /// Release resources (temp files, buffer leases). Idempotent.
    fn close(&mut self);

    /// Size in bytes of the records this operator emits.
    fn record_size(&self) -> usize;
}

/// Boxed operator, the unit of plan composition.
pub type BoxedOperator = Box<dyn Operator>;

/// Drain an operator into owned records (runs open/next*/close).
/// Convenience for tests, examples, and top-of-plan collection.
///
/// # Errors
/// Propagates whatever [`Operator::open`] / [`Operator::next`] return;
/// the operator is *not* closed on error (its own drop handles cleanup).
pub fn collect(op: &mut dyn Operator) -> Result<Vec<Vec<u8>>, ExecError> {
    op.open()?;
    let mut out = Vec::new();
    while let Some(r) = op.next()? {
        out.push(r.to_vec());
    }
    op.close();
    Ok(out)
}

/// Leaf operator scanning a heap file front to back.
pub struct HeapScan {
    heap: Arc<HeapFile>,
    scan: Option<SharedScanner>,
}

impl HeapScan {
    /// Scan `heap`.
    pub fn new(heap: Arc<HeapFile>) -> Self {
        HeapScan { heap, scan: None }
    }
}

impl Operator for HeapScan {
    fn open(&mut self) -> Result<(), ExecError> {
        self.scan = Some(SharedScanner::new(Arc::clone(&self.heap)));
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        let scan = self
            .scan
            .as_mut()
            .ok_or(ExecError::Protocol("HeapScan::next before open"))?;
        Ok(scan.next_record()?)
    }

    fn close(&mut self) {
        self.scan = None;
    }

    fn record_size(&self) -> usize {
        self.heap.record_size()
    }
}

/// Leaf operator scanning a contiguous record range `[lo, hi)` of a heap
/// file — one worker's partition of the parallel filter phase. Because a
/// range of a presorted file is itself presorted, the downstream SFS
/// window stays provably correct on each partition.
pub struct HeapRangeScan {
    heap: Arc<HeapFile>,
    lo: u64,
    hi: u64,
    scan: Option<SharedScanner>,
}

impl HeapRangeScan {
    /// Scan records `lo..hi` (0-based, half-open, clamped to the file).
    pub fn new(heap: Arc<HeapFile>, lo: u64, hi: u64) -> Self {
        HeapRangeScan {
            heap,
            lo,
            hi,
            scan: None,
        }
    }
}

impl Operator for HeapRangeScan {
    fn open(&mut self) -> Result<(), ExecError> {
        let mut scan = SharedScanner::new(Arc::clone(&self.heap));
        scan.seek(self.lo);
        self.scan = Some(scan);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        let scan = self
            .scan
            .as_mut()
            .ok_or(ExecError::Protocol("HeapRangeScan::next before open"))?;
        if scan.position() >= self.hi {
            return Ok(None);
        }
        Ok(scan.next_record()?)
    }

    fn close(&mut self) {
        self.scan = None;
    }

    fn record_size(&self) -> usize {
        self.heap.record_size()
    }
}

/// Leaf operator yielding every `stride`-th record starting at `offset`
/// — one stratum of a round-robin partitioning. A strided subsequence of
/// a presorted file is itself presorted, so a downstream SFS window stays
/// provably correct per stratum; unlike a contiguous range, each stratum
/// is a stratified sample of the whole file, so strata of a score-sorted
/// input have comparable skyline density (a contiguous tail range of a
/// presorted file concentrates exactly the records whose dominators live
/// in earlier ranges, and its local skyline explodes).
///
/// Every stratum scan reads the pages it crosses, so `t` strided scans
/// cost up to `t×` the page reads of one full scan — the price of
/// balance, paid in sequential I/O.
pub struct StridedHeapScan {
    heap: Arc<HeapFile>,
    offset: u64,
    stride: u64,
    scan: Option<SharedScanner>,
}

impl StridedHeapScan {
    /// Scan records at positions `offset, offset+stride, offset+2·stride…`.
    ///
    /// # Panics
    /// Panics when `stride == 0` or `offset >= stride`.
    pub fn new(heap: Arc<HeapFile>, offset: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(offset < stride, "offset must be below the stride");
        StridedHeapScan {
            heap,
            offset,
            stride,
            scan: None,
        }
    }
}

impl Operator for StridedHeapScan {
    fn open(&mut self) -> Result<(), ExecError> {
        let mut scan = SharedScanner::new(Arc::clone(&self.heap));
        scan.seek(self.offset);
        self.scan = Some(scan);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        // Skip-then-lend split, as in ChainScan: a record lent from
        // inside the loop would hold its borrow across iterations, so
        // the loop only advances past foreign positions and the single
        // lending call sits after it.
        loop {
            let scan = self
                .scan
                .as_mut()
                .ok_or(ExecError::Protocol("StridedHeapScan::next before open"))?;
            if scan.position() >= self.heap.len() {
                return Ok(None);
            }
            if scan.position() % self.stride == self.offset {
                break;
            }
            if scan.next_record()?.is_none() {
                return Ok(None);
            }
        }
        let scan = self
            .scan
            .as_mut()
            .ok_or(ExecError::Protocol("StridedHeapScan scanner vanished"))?;
        Ok(scan.next_record()?)
    }

    fn close(&mut self) {
        self.scan = None;
    }

    fn record_size(&self) -> usize {
        self.heap.record_size()
    }
}

/// Leaf operator concatenating several heap files front to back — the
/// merge phase's view of the per-partition local skylines, which (being
/// ranges of one presorted file, filtered order-preservingly) are
/// globally sorted when read in partition order.
pub struct ChainScan {
    heaps: Vec<Arc<HeapFile>>,
    record_size: usize,
    current: usize,
    scan: Option<SharedScanner>,
}

impl ChainScan {
    /// Scan `heaps` in order; all must share one record size.
    ///
    /// # Panics
    /// Panics if `heaps` is empty or the record sizes disagree.
    pub fn new(heaps: Vec<Arc<HeapFile>>) -> Self {
        assert!(!heaps.is_empty(), "ChainScan needs at least one file");
        let record_size = heaps[0].record_size();
        for h in &heaps {
            assert_eq!(h.record_size(), record_size, "record size mismatch");
        }
        ChainScan {
            heaps,
            record_size,
            current: 0,
            scan: None,
        }
    }
}

impl Operator for ChainScan {
    fn open(&mut self) -> Result<(), ExecError> {
        self.current = 0;
        self.scan = Some(SharedScanner::new(Arc::clone(&self.heaps[0])));
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        loop {
            // Scoped end-of-file probe first, lending re-borrow second:
            // returning a lent record from the same borrow that the loop
            // later mutates does not pass the borrow checker.
            let exhausted = {
                let scan = self
                    .scan
                    .as_ref()
                    .ok_or(ExecError::Protocol("ChainScan::next before open"))?;
                scan.position() >= scan.heap().len()
            };
            if !exhausted {
                let scan = self
                    .scan
                    .as_mut()
                    .ok_or(ExecError::Protocol("ChainScan scanner vanished"))?;
                return Ok(scan.next_record()?);
            }
            self.current += 1;
            if self.current >= self.heaps.len() {
                return Ok(None);
            }
            self.scan = Some(SharedScanner::new(Arc::clone(&self.heaps[self.current])));
        }
    }

    fn close(&mut self) {
        self.scan = None;
        self.current = 0;
    }

    fn record_size(&self) -> usize {
        self.record_size
    }
}

/// Leaf operator scanning a clustered B+-tree in key order — the
/// "clustered (tree) index" input ordering the paper's §4.2 warns makes
/// BNL's run time unpredictable.
pub struct IndexScan {
    tree: Arc<skyline_storage::BTree>,
    scan: Option<skyline_storage::SharedBTreeScan>,
    record_size: usize,
}

impl IndexScan {
    /// Scan `tree` front to back in key order.
    pub fn new(tree: Arc<skyline_storage::BTree>, record_size: usize) -> Self {
        IndexScan {
            tree,
            scan: None,
            record_size,
        }
    }
}

impl Operator for IndexScan {
    fn open(&mut self) -> Result<(), ExecError> {
        self.scan = Some(skyline_storage::SharedBTreeScan::new(Arc::clone(
            &self.tree,
        ))?);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        let scan = self
            .scan
            .as_mut()
            .ok_or(ExecError::Protocol("IndexScan::next before open"))?;
        Ok(scan.next_record()?)
    }

    fn close(&mut self) {
        self.scan = None;
    }

    fn record_size(&self) -> usize {
        self.record_size
    }
}

/// Leaf operator over in-memory records (tests, small tables pushed down
/// from the query layer).
pub struct MemSource {
    records: Vec<Vec<u8>>,
    record_size: usize,
    pos: usize,
    opened: bool,
}

impl MemSource {
    /// Build from owned records; all must share one size.
    ///
    /// # Panics
    /// Panics if records disagree on size or `record_size` is zero.
    pub fn new(records: Vec<Vec<u8>>, record_size: usize) -> Self {
        assert!(record_size > 0, "record size must be positive");
        for r in &records {
            assert_eq!(r.len(), record_size, "record size mismatch");
        }
        MemSource {
            records,
            record_size,
            pos: 0,
            opened: false,
        }
    }
}

impl Operator for MemSource {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        if !self.opened {
            return Err(ExecError::Protocol("MemSource::next before open"));
        }
        if self.pos >= self.records.len() {
            return Ok(None);
        }
        let r = &self.records[self.pos];
        self.pos += 1;
        Ok(Some(r))
    }

    fn close(&mut self) {
        self.opened = false;
    }

    fn record_size(&self) -> usize {
        self.record_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_storage::MemDisk;

    #[test]
    fn mem_source_streams_in_order() {
        let recs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 4]).collect();
        let mut src = MemSource::new(recs.clone(), 4);
        assert_eq!(collect(&mut src).unwrap(), recs);
    }

    #[test]
    fn next_before_open_is_protocol_error() {
        let mut src = MemSource::new(vec![], 4);
        assert!(matches!(src.next(), Err(ExecError::Protocol(_))));
    }

    #[test]
    fn heap_scan_round_trip() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, 8).unwrap();
        let recs: Vec<Vec<u8>> = (0..600u64).map(|i| i.to_le_bytes().to_vec()).collect();
        h.append_all(recs.iter().map(Vec::as_slice)).unwrap();
        let mut scan = HeapScan::new(Arc::new(h));
        assert_eq!(collect(&mut scan).unwrap(), recs);
        // reopen works
        assert_eq!(collect(&mut scan).unwrap().len(), 600);
    }

    #[test]
    #[should_panic(expected = "record size mismatch")]
    fn mem_source_checks_sizes() {
        MemSource::new(vec![vec![0; 3], vec![0; 4]], 3);
    }

    fn heap_of(n: u64) -> Arc<HeapFile> {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, 8).unwrap();
        let recs: Vec<Vec<u8>> = (0..n).map(|i| i.to_le_bytes().to_vec()).collect();
        h.append_all(recs.iter().map(Vec::as_slice)).unwrap();
        Arc::new(h)
    }

    fn ids(out: &[Vec<u8>]) -> Vec<u64> {
        out.iter()
            .map(|r| u64::from_le_bytes(r.as_slice().try_into().expect("8-byte record")))
            .collect()
    }

    #[test]
    fn heap_range_scan_covers_exact_range() {
        let heap = heap_of(600);
        // mid-range, page-unaligned boundaries
        let mut scan = HeapRangeScan::new(Arc::clone(&heap), 123, 457);
        assert_eq!(
            ids(&collect(&mut scan).unwrap()),
            (123..457).collect::<Vec<_>>()
        );
        // clamped past the end
        let mut scan = HeapRangeScan::new(Arc::clone(&heap), 590, 10_000);
        assert_eq!(
            ids(&collect(&mut scan).unwrap()),
            (590..600).collect::<Vec<_>>()
        );
        // empty range
        let mut scan = HeapRangeScan::new(Arc::clone(&heap), 400, 400);
        assert!(collect(&mut scan).unwrap().is_empty());
        // ranges tile the file exactly
        let mut all = Vec::new();
        for (lo, hi) in [(0, 200), (200, 401), (401, 600)] {
            let mut scan = HeapRangeScan::new(Arc::clone(&heap), lo, hi);
            all.extend(ids(&collect(&mut scan).unwrap()));
        }
        assert_eq!(all, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn strided_scan_partitions_into_strata() {
        let heap = heap_of(601); // deliberately not a multiple of the stride
        for stride in [1u64, 2, 3, 4, 7] {
            let mut all: Vec<u64> = Vec::new();
            for offset in 0..stride {
                let mut scan = StridedHeapScan::new(Arc::clone(&heap), offset, stride);
                let got = ids(&collect(&mut scan).unwrap());
                assert!(got.iter().all(|i| i % stride == offset), "stride {stride}");
                // reopen rescans from the top
                assert_eq!(ids(&collect(&mut scan).unwrap()), got);
                all.extend(got);
            }
            all.sort_unstable();
            assert_eq!(all, (0..601).collect::<Vec<_>>(), "strata must tile");
        }
        // stride 1 is a plain full scan
        let mut scan = StridedHeapScan::new(Arc::clone(&heap), 0, 1);
        assert_eq!(collect(&mut scan).unwrap().len(), 601);
        // empty file
        let mut scan = StridedHeapScan::new(heap_of(0), 1, 3);
        assert!(collect(&mut scan).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "offset must be below the stride")]
    fn strided_scan_rejects_offset_at_stride() {
        let _ = StridedHeapScan::new(heap_of(3), 2, 2);
    }

    #[test]
    fn chain_scan_concatenates_in_order() {
        let a = heap_of(600);
        let b = heap_of(0); // empty file in the middle
        let c = heap_of(5);
        let mut scan = ChainScan::new(vec![a, b, c]);
        let out = ids(&collect(&mut scan).unwrap());
        let expect: Vec<u64> = (0..600).chain(0..5).collect();
        assert_eq!(out, expect);
        // reopen rescans from the top
        assert_eq!(ids(&collect(&mut scan).unwrap()), expect);
    }

    #[test]
    fn range_and_chain_protocol_errors() {
        let heap = heap_of(3);
        let mut scan = HeapRangeScan::new(Arc::clone(&heap), 0, 3);
        assert!(matches!(scan.next(), Err(ExecError::Protocol(_))));
        let mut strided = StridedHeapScan::new(Arc::clone(&heap), 0, 2);
        assert!(matches!(strided.next(), Err(ExecError::Protocol(_))));
        let mut chain = ChainScan::new(vec![heap]);
        assert!(matches!(chain.next(), Err(ExecError::Protocol(_))));
    }

    #[test]
    fn index_scan_streams_in_key_order() -> Result<(), Box<dyn std::error::Error>> {
        use skyline_storage::btree::key_codec::i32_key;
        let disk = MemDisk::shared();
        let mut tree = skyline_storage::BTree::new(disk as Arc<dyn skyline_storage::Disk>, 4, 8)?;
        for v in [9i32, 3, 7, 1, 5] {
            let mut r = [0u8; 8];
            r[..4].copy_from_slice(&v.to_le_bytes());
            tree.insert(&i32_key(v), &r)?;
        }
        let mut scan = IndexScan::new(Arc::new(tree), 8);
        let out = collect(&mut scan)?;
        let got: Vec<i32> = out
            .iter()
            .map(|r| i32::from_le_bytes(r[..4].try_into().expect("4-byte key prefix")))
            .collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
        Ok(())
    }
}
