//! The operator trait and the leaf sources.

use crate::error::ExecError;
use skyline_storage::{HeapFile, SharedScanner};
use std::sync::Arc;

/// A physical operator producing a stream of fixed-width records.
///
/// Protocol: `open` once, then `next` until it returns `Ok(None)`, then
/// `close`. The slice returned by `next` is valid only until the following
/// `next`/`close` call (lending-iterator style), which keeps the hot path
/// allocation-free.
pub trait Operator {
    /// Prepare the stream. Blocking operators (sort) do their work here.
    fn open(&mut self) -> Result<(), ExecError>;

    /// Produce the next record, or `Ok(None)` at end of stream.
    fn next(&mut self) -> Result<Option<&[u8]>, ExecError>;

    /// Release resources (temp files, buffer leases). Idempotent.
    fn close(&mut self);

    /// Size in bytes of the records this operator emits.
    fn record_size(&self) -> usize;
}

/// Boxed operator, the unit of plan composition.
pub type BoxedOperator = Box<dyn Operator>;

/// Drain an operator into owned records (runs open/next*/close).
/// Convenience for tests, examples, and top-of-plan collection.
///
/// # Errors
/// Propagates whatever [`Operator::open`] / [`Operator::next`] return;
/// the operator is *not* closed on error (its own drop handles cleanup).
pub fn collect(op: &mut dyn Operator) -> Result<Vec<Vec<u8>>, ExecError> {
    op.open()?;
    let mut out = Vec::new();
    while let Some(r) = op.next()? {
        out.push(r.to_vec());
    }
    op.close();
    Ok(out)
}

/// Leaf operator scanning a heap file front to back.
pub struct HeapScan {
    heap: Arc<HeapFile>,
    scan: Option<SharedScanner>,
}

impl HeapScan {
    /// Scan `heap`.
    pub fn new(heap: Arc<HeapFile>) -> Self {
        HeapScan { heap, scan: None }
    }
}

impl Operator for HeapScan {
    fn open(&mut self) -> Result<(), ExecError> {
        self.scan = Some(SharedScanner::new(Arc::clone(&self.heap)));
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        let scan = self
            .scan
            .as_mut()
            .ok_or(ExecError::Protocol("HeapScan::next before open"))?;
        Ok(scan.next_record()?)
    }

    fn close(&mut self) {
        self.scan = None;
    }

    fn record_size(&self) -> usize {
        self.heap.record_size()
    }
}

/// Leaf operator scanning a clustered B+-tree in key order — the
/// "clustered (tree) index" input ordering the paper's §4.2 warns makes
/// BNL's run time unpredictable.
pub struct IndexScan {
    tree: Arc<skyline_storage::BTree>,
    scan: Option<skyline_storage::SharedBTreeScan>,
    record_size: usize,
}

impl IndexScan {
    /// Scan `tree` front to back in key order.
    pub fn new(tree: Arc<skyline_storage::BTree>, record_size: usize) -> Self {
        IndexScan {
            tree,
            scan: None,
            record_size,
        }
    }
}

impl Operator for IndexScan {
    fn open(&mut self) -> Result<(), ExecError> {
        self.scan = Some(skyline_storage::SharedBTreeScan::new(Arc::clone(
            &self.tree,
        ))?);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        let scan = self
            .scan
            .as_mut()
            .ok_or(ExecError::Protocol("IndexScan::next before open"))?;
        Ok(scan.next_record()?)
    }

    fn close(&mut self) {
        self.scan = None;
    }

    fn record_size(&self) -> usize {
        self.record_size
    }
}

/// Leaf operator over in-memory records (tests, small tables pushed down
/// from the query layer).
pub struct MemSource {
    records: Vec<Vec<u8>>,
    record_size: usize,
    pos: usize,
    opened: bool,
}

impl MemSource {
    /// Build from owned records; all must share one size.
    ///
    /// # Panics
    /// Panics if records disagree on size or `record_size` is zero.
    pub fn new(records: Vec<Vec<u8>>, record_size: usize) -> Self {
        assert!(record_size > 0, "record size must be positive");
        for r in &records {
            assert_eq!(r.len(), record_size, "record size mismatch");
        }
        MemSource {
            records,
            record_size,
            pos: 0,
            opened: false,
        }
    }
}

impl Operator for MemSource {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        if !self.opened {
            return Err(ExecError::Protocol("MemSource::next before open"));
        }
        if self.pos >= self.records.len() {
            return Ok(None);
        }
        let r = &self.records[self.pos];
        self.pos += 1;
        Ok(Some(r))
    }

    fn close(&mut self) {
        self.opened = false;
    }

    fn record_size(&self) -> usize {
        self.record_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_storage::MemDisk;

    #[test]
    fn mem_source_streams_in_order() {
        let recs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 4]).collect();
        let mut src = MemSource::new(recs.clone(), 4);
        assert_eq!(collect(&mut src).unwrap(), recs);
    }

    #[test]
    fn next_before_open_is_protocol_error() {
        let mut src = MemSource::new(vec![], 4);
        assert!(matches!(src.next(), Err(ExecError::Protocol(_))));
    }

    #[test]
    fn heap_scan_round_trip() {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, 8).unwrap();
        let recs: Vec<Vec<u8>> = (0..600u64).map(|i| i.to_le_bytes().to_vec()).collect();
        h.append_all(recs.iter().map(Vec::as_slice)).unwrap();
        let mut scan = HeapScan::new(Arc::new(h));
        assert_eq!(collect(&mut scan).unwrap(), recs);
        // reopen works
        assert_eq!(collect(&mut scan).unwrap().len(), 600);
    }

    #[test]
    #[should_panic(expected = "record size mismatch")]
    fn mem_source_checks_sizes() {
        MemSource::new(vec![vec![0; 3], vec![0; 4]], 3);
    }

    #[test]
    fn index_scan_streams_in_key_order() -> Result<(), Box<dyn std::error::Error>> {
        use skyline_storage::btree::key_codec::i32_key;
        let disk = MemDisk::shared();
        let mut tree = skyline_storage::BTree::new(disk as Arc<dyn skyline_storage::Disk>, 4, 8)?;
        for v in [9i32, 3, 7, 1, 5] {
            let mut r = [0u8; 8];
            r[..4].copy_from_slice(&v.to_le_bytes());
            tree.insert(&i32_key(v), &r)?;
        }
        let mut scan = IndexScan::new(Arc::new(tree), 8);
        let out = collect(&mut scan)?;
        let got: Vec<i32> = out
            .iter()
            .map(|r| i32::from_le_bytes(r[..4].try_into().expect("4-byte key prefix")))
            .collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
        Ok(())
    }
}
