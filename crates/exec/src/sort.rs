//! External merge sort under a page budget — SFS's presort.
//!
//! Run formation fills a `budget`-page arena, sorts it, and writes a run to
//! a temp heap file; runs are then merged `budget − 1` at a time; the final
//! merge streams through [`Operator::next`] so the sort's consumer (the
//! skyline filter) starts receiving tuples as soon as the last merge pass
//! begins. If the whole input fits in the arena no run file is written and
//! the sort is purely in-memory — the same fast path a real engine takes.
//!
//! The comparator is pluggable: the paper sorts by *any monotone scoring
//! function* (nested `ORDER BY a₁ DESC, …, a_k DESC`, or the entropy score
//! `E`), and `skyline-core` provides those comparators.

use crate::cancel::{poll, CancelToken};
use crate::error::ExecError;
use crate::op::{BoxedOperator, Operator};
use crate::queue::WorkQueue;
use crate::sync_util::lock;
use skyline_storage::{Disk, HeapFile, SharedScanner};
use std::cmp::Ordering;
use std::sync::{Arc, Mutex};

/// Total order over raw records. Implementations must be consistent
/// (transitive, antisymmetric up to ties).
pub trait RecordComparator: Send + Sync {
    /// Compare two records; `Less` sorts first.
    fn cmp(&self, a: &[u8], b: &[u8]) -> Ordering;

    /// Optional decorate-sort-undecorate key: a 64-bit value computed
    /// once per record whose **ascending** order refines the comparator —
    /// `prefix_key(a) < prefix_key(b)` must imply `cmp(a, b) == Less`
    /// (equal keys fall back to `cmp`). Implementations should return
    /// `Some` for every record or `None` for every record; a comparator
    /// that stops offering keys mid-stream demotes the sort to pure
    /// comparisons (correct, just slower) rather than aborting.
    ///
    /// This is how the paper's entropy sort wins over the nested sort:
    /// "sorting on a single attribute (the tuples' E value, computed
    /// on-the-fly) … is faster than nested-sorting over a number of
    /// attributes." The score is computed once per record instead of
    /// twice per comparison.
    fn prefix_key(&self, _record: &[u8]) -> Option<u64> {
        None
    }
}

/// Map an f64 onto a u64 whose unsigned order equals the float's order
/// (total for non-NaN inputs). Standard sign-flip trick.
#[inline]
pub fn f64_ascending_bits(v: f64) -> u64 {
    debug_assert!(!v.is_nan());
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Like [`f64_ascending_bits`] but for sorting **descending** (largest
/// value gets the smallest key).
#[inline]
pub fn f64_descending_bits(v: f64) -> u64 {
    !f64_ascending_bits(v)
}

impl<F> RecordComparator for F
where
    F: Fn(&[u8], &[u8]) -> Ordering + Send + Sync,
{
    fn cmp(&self, a: &[u8], b: &[u8]) -> Ordering {
        self(a, b)
    }
}

/// Memory budget for the sort, in pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortBudget {
    /// Pages available for run formation / merge fan-in. Minimum 3
    /// (two inputs + one output, the classic external-sort floor).
    pub pages: usize,
}

impl SortBudget {
    /// A budget of `pages` pages.
    ///
    /// # Panics
    /// Panics if `pages < 3`.
    pub fn pages(pages: usize) -> Self {
        assert!(pages >= 3, "external sort needs at least 3 pages");
        SortBudget { pages }
    }

    fn arena_bytes(self) -> usize {
        self.pages * skyline_storage::PAGE_SIZE
    }

    fn fan_in(self) -> usize {
        self.pages - 1
    }
}

enum SortState {
    /// Not opened yet.
    Idle,
    /// Whole input fit in memory; stream from the sorted arena.
    InMemory {
        arena: Vec<u8>,
        order: Vec<u32>,
        pos: usize,
    },
    /// Streaming the final k-way merge.
    Merging(KWayMerge),
}

/// What run formation produced: either the whole input in one arena (no
/// spill) or a set of sorted run files, plus the records consumed (the
/// progress count cancellation errors report at merge-pass boundaries).
enum FormOutcome {
    InMemory(Vec<u8>),
    Runs(Vec<Arc<HeapFile>>, u64),
}

/// Resolve a thread-count knob: 0 means one per available core, and the
/// result is clamped to `1..=64` (matching `par.rs` upstream).
pub fn effective_threads(threads: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    };
    t.clamp(1, 64)
}

/// The worker-shareable core of run formation: everything needed to sort
/// an arena and write or merge runs, detached from the operator so scoped
/// worker threads can use it while the producer thread owns `self.child`.
struct RunFormer {
    cmp: Arc<dyn RecordComparator>,
    disk: Arc<dyn Disk>,
    record_size: usize,
}

impl RunFormer {
    fn sort_arena(&self, arena: &[u8]) -> Vec<u32> {
        let n = arena.len() / self.record_size;
        let mut order: Vec<u32> = (0..n as u32).collect();
        let rs = self.record_size;
        let rec = |i: u32| &arena[i as usize * rs..i as usize * rs + rs];
        // decorate-sort-undecorate when the comparator offers prefix keys
        // for every record; a comparator that stops offering them midway
        // just loses the fast path (collect short-circuits on first None)
        let keys: Option<Vec<u64>> = (0..n as u32).map(|i| self.cmp.prefix_key(rec(i))).collect();
        match keys {
            Some(keys) => order.sort_unstable_by(|&a, &b| {
                keys[a as usize]
                    .cmp(&keys[b as usize])
                    .then_with(|| self.cmp.cmp(rec(a), rec(b)))
            }),
            None => order.sort_unstable_by(|&a, &b| self.cmp.cmp(rec(a), rec(b))),
        }
        order
    }

    fn write_run(&self, arena: &[u8], order: &[u32]) -> Result<HeapFile, ExecError> {
        let mut run = HeapFile::create_temp(Arc::clone(&self.disk), self.record_size)?;
        let rs = self.record_size;
        let mut w = run.writer()?;
        for &i in order {
            w.push(&arena[i as usize * rs..i as usize * rs + rs])?;
        }
        w.finish()?;
        Ok(run)
    }

    /// Merge `runs` into a single new run file (non-final pass).
    fn merge_to_run(
        &self,
        runs: Vec<Arc<HeapFile>>,
        cancel: Option<CancelToken>,
    ) -> Result<HeapFile, ExecError> {
        let mut out = HeapFile::create_temp(Arc::clone(&self.disk), self.record_size)?;
        let mut merge = KWayMerge::new(runs, Arc::clone(&self.cmp), cancel);
        let mut w = out.writer()?;
        while let Some(r) = merge.next_record()? {
            w.push(r)?;
        }
        w.finish()?;
        Ok(out)
    }
}

/// Record the first error a parallel stage observes; later ones are
/// dropped (the stage is already doomed, the first cause is the one to
/// report).
fn store_first(slot: &Mutex<Option<ExecError>>, e: ExecError) {
    let mut guard = lock(slot);
    if guard.is_none() {
        *guard = Some(e);
    }
}

/// External merge sort operator.
pub struct ExternalSort {
    child: BoxedOperator,
    cmp: Arc<dyn RecordComparator>,
    disk: Arc<dyn Disk>,
    budget: SortBudget,
    record_size: usize,
    state: SortState,
    cancel: Option<CancelToken>,
    /// Worker-thread knob: 0 = auto, 1 = sequential (default).
    threads: usize,
    /// Number of runs written during the last open (for tests/metrics).
    runs_written: usize,
    /// Number of merge passes performed (excluding the streamed final one).
    merge_passes: usize,
}

impl ExternalSort {
    /// Sort `child` by `cmp` using temp space on `disk` within `budget`.
    pub fn new(
        child: BoxedOperator,
        cmp: Arc<dyn RecordComparator>,
        disk: Arc<dyn Disk>,
        budget: SortBudget,
    ) -> Self {
        let record_size = child.record_size();
        ExternalSort {
            child,
            cmp,
            disk,
            budget,
            record_size,
            state: SortState::Idle,
            cancel: None,
            threads: 1,
            runs_written: 0,
            merge_passes: 0,
        }
    }

    /// Observe `token` during run formation, between merge passes, and
    /// every few hundred merged records.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sort runs and perform intermediate merge passes on `threads`
    /// worker threads (0 = one per available core, clamped to 64).
    ///
    /// The child is still consumed by the calling thread (operators are
    /// single-threaded by contract) and the final merge still streams
    /// through [`Operator::next`]; parallelism covers the CPU-heavy run
    /// sorting/writing and the intermediate merge passes. With `t`
    /// workers each run arena is `budget/t` pages, so runs are smaller
    /// and there may be more of them — same sorted output, more write
    /// parallelism. The in-memory fast path (no spill) is unchanged.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs written by the last `open` (0 when the in-memory path ran).
    pub fn runs_written(&self) -> usize {
        self.runs_written
    }

    /// Intermediate (non-final) merge passes performed by the last `open`.
    pub fn merge_passes(&self) -> usize {
        self.merge_passes
    }

    fn former(&self) -> RunFormer {
        RunFormer {
            cmp: Arc::clone(&self.cmp),
            disk: Arc::clone(&self.disk),
            record_size: self.record_size,
        }
    }

    /// Sequential run formation (threads == 1): the original single-core
    /// fill-sort-spill loop.
    fn form_runs_seq(&mut self) -> Result<FormOutcome, ExecError> {
        let arena_cap = self.budget.arena_bytes();
        let former = self.former();
        let mut arena: Vec<u8> = Vec::with_capacity(arena_cap.min(1 << 24));
        let mut runs: Vec<Arc<HeapFile>> = Vec::new();
        let mut consumed: u64 = 0;
        loop {
            poll(self.cancel.as_ref(), consumed)?;
            // Spill check happens between records so the borrow of the
            // child's lent slice never overlaps the spill's `&self` calls.
            if arena.len() + self.record_size > arena_cap {
                let order = former.sort_arena(&arena);
                runs.push(Arc::new(former.write_run(&arena, &order)?));
                self.runs_written += 1;
                arena.clear();
            }
            match self.child.next()? {
                Some(r) => {
                    arena.extend_from_slice(r);
                    consumed += 1;
                }
                None => break,
            }
        }
        if runs.is_empty() {
            return Ok(FormOutcome::InMemory(arena));
        }
        if !arena.is_empty() {
            let order = former.sort_arena(&arena);
            runs.push(Arc::new(former.write_run(&arena, &order)?));
            self.runs_written += 1;
        }
        Ok(FormOutcome::Runs(runs, consumed))
    }

    /// Parallel run formation: the calling thread keeps draining the
    /// child (operators are single-consumer) into chunk arenas of
    /// `budget/t` pages and hands them through a bounded [`WorkQueue`]
    /// to `t` scoped workers, which sort and write runs concurrently.
    ///
    /// Queue capacity `t` bounds in-flight memory at roughly `2×` the
    /// arena budget (t queued chunks + t being sorted + 1 being filled).
    /// The first full-budget arena is only split once it overflows, so an
    /// input that fits in memory takes the no-spill fast path exactly
    /// like the sequential sort.
    ///
    /// Failure protocol mirrors `par.rs`: the first worker error is
    /// stored in a shared slot and the erroring worker keeps draining the
    /// queue (dropping arenas) so the producer can never block on a full
    /// queue; worker panics surface as [`ExecError::Worker`].
    fn form_runs_par(&mut self, t: usize) -> Result<FormOutcome, ExecError> {
        let arena_cap = self.budget.arena_bytes();
        let rs = self.record_size;
        let chunk_records = (arena_cap / t / rs).max(1);
        let chunk_bytes = chunk_records * rs;
        let former = self.former();
        let queue: WorkQueue<(usize, Vec<u8>)> = WorkQueue::bounded(t);
        let results: Mutex<Vec<(usize, HeapFile)>> = Mutex::new(Vec::new());
        let first_err: Mutex<Option<ExecError>> = Mutex::new(None);

        let child = &mut self.child;
        let cancel = self.cancel.as_ref();
        let (in_memory, consumed) =
            std::thread::scope(|s| -> Result<(Option<Vec<u8>>, u64), ExecError> {
                let mut handles = Vec::with_capacity(t);
                for _ in 0..t {
                    handles.push(s.spawn(|| {
                        while let Some((seq, arena)) = queue.pop() {
                            if lock(&first_err).is_some() {
                                continue; // doomed: drain so the producer never blocks
                            }
                            let order = former.sort_arena(&arena);
                            match former.write_run(&arena, &order) {
                                Ok(run) => lock(&results).push((seq, run)),
                                Err(e) => store_first(&first_err, e),
                            }
                        }
                    }));
                }

                let mut arena: Vec<u8> = Vec::with_capacity(arena_cap.min(1 << 24));
                let mut consumed: u64 = 0;
                let mut seq = 0usize;
                let mut spilled = false;
                let mut prod_err: Option<ExecError> = None;
                loop {
                    if let Err(e) = poll(cancel, consumed) {
                        prod_err = Some(e);
                        break;
                    }
                    if lock(&first_err).is_some() {
                        break;
                    }
                    let cap = if spilled { chunk_bytes } else { arena_cap };
                    if arena.len() + rs > cap {
                        if spilled {
                            let next = Vec::with_capacity(chunk_bytes);
                            if queue
                                .push((seq, std::mem::replace(&mut arena, next)))
                                .is_err()
                            {
                                break; // closed: only happens on teardown
                            }
                            seq += 1;
                        } else {
                            // first overflow: we now know we're external —
                            // split the full-budget arena into worker chunks
                            spilled = true;
                            for chunk in arena.chunks(chunk_bytes) {
                                if queue.push((seq, chunk.to_vec())).is_err() {
                                    break;
                                }
                                seq += 1;
                            }
                            arena.clear();
                            arena.shrink_to(chunk_bytes);
                        }
                    }
                    match child.next() {
                        Ok(Some(r)) => {
                            arena.extend_from_slice(r);
                            consumed += 1;
                        }
                        Ok(None) => break,
                        Err(e) => {
                            prod_err = Some(e);
                            break;
                        }
                    }
                }
                if spilled
                    && !arena.is_empty()
                    && prod_err.is_none()
                    && lock(&first_err).is_none()
                    && queue.push((seq, std::mem::take(&mut arena))).is_err()
                {
                    // closed queue here means workers are gone; the join
                    // below reports the underlying panic
                }
                queue.close();
                let mut panic_msg: Option<Option<String>> = None;
                for h in handles {
                    if let Err(payload) = h.join() {
                        panic_msg = Some(crate::sync_util::panic_message(payload.as_ref()));
                    }
                }
                if let Some(message) = panic_msg {
                    return Err(ExecError::Worker { message });
                }
                if let Some(e) = lock(&first_err).take() {
                    return Err(e);
                }
                if let Some(e) = prod_err {
                    return Err(e);
                }
                Ok((if spilled { None } else { Some(arena) }, consumed))
            })?;

        if let Some(arena) = in_memory {
            return Ok(FormOutcome::InMemory(arena));
        }
        let mut formed = match results.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        formed.sort_unstable_by_key(|(seq, _)| *seq);
        self.runs_written += formed.len();
        Ok(FormOutcome::Runs(
            formed.into_iter().map(|(_, run)| Arc::new(run)).collect(),
            consumed,
        ))
    }

    /// One intermediate merge pass over `runs`, distributing the
    /// `fan_in`-sized groups across `t` workers when it pays.
    fn merge_pass(
        &mut self,
        runs: Vec<Arc<HeapFile>>,
        fan_in: usize,
        t: usize,
    ) -> Result<Vec<Arc<HeapFile>>, ExecError> {
        let former = self.former();
        let cancel = self.cancel.clone();
        let groups: Vec<Vec<Arc<HeapFile>>> = runs.chunks(fan_in).map(<[_]>::to_vec).collect();
        let multi = groups.iter().filter(|g| g.len() > 1).count();
        if t <= 1 || multi <= 1 {
            let mut next: Vec<Arc<HeapFile>> = Vec::new();
            for mut group in groups {
                if group.len() == 1 {
                    next.push(group.swap_remove(0));
                } else {
                    next.push(Arc::new(former.merge_to_run(group, cancel.clone())?));
                    self.runs_written += 1;
                }
            }
            return Ok(next);
        }

        let workers = t.min(multi);
        let queue: WorkQueue<(usize, Vec<Arc<HeapFile>>)> = WorkQueue::bounded(groups.len());
        let results: Mutex<Vec<(usize, Arc<HeapFile>)>> = Mutex::new(Vec::new());
        let first_err: Mutex<Option<ExecError>> = Mutex::new(None);
        let merged = std::thread::scope(|s| -> Result<usize, ExecError> {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cancel = cancel.clone();
                let former = &former;
                let queue = &queue;
                let results = &results;
                let first_err = &first_err;
                handles.push(s.spawn(move || {
                    let mut merged = 0usize;
                    while let Some((idx, group)) = queue.pop() {
                        if lock(first_err).is_some() {
                            continue;
                        }
                        match former.merge_to_run(group, cancel.clone()) {
                            Ok(run) => {
                                lock(results).push((idx, Arc::new(run)));
                                merged += 1;
                            }
                            Err(e) => store_first(first_err, e),
                        }
                    }
                    merged
                }));
            }
            for (idx, group) in groups.into_iter().enumerate() {
                if group.len() == 1 {
                    lock(&results).extend(group.into_iter().map(|r| (idx, r)));
                } else if queue.push((idx, group)).is_err() {
                    break;
                }
            }
            queue.close();
            let mut panic_msg: Option<Option<String>> = None;
            let mut merged = 0usize;
            for h in handles {
                match h.join() {
                    Ok(n) => merged += n,
                    Err(payload) => {
                        panic_msg = Some(crate::sync_util::panic_message(payload.as_ref()));
                    }
                }
            }
            if let Some(message) = panic_msg {
                return Err(ExecError::Worker { message });
            }
            if let Some(e) = lock(&first_err).take() {
                return Err(e);
            }
            Ok(merged)
        })?;
        self.runs_written += merged;
        let mut next = match results.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        next.sort_unstable_by_key(|(idx, _)| *idx);
        Ok(next.into_iter().map(|(_, run)| run).collect())
    }
}

impl Operator for ExternalSort {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()?;
        self.runs_written = 0;
        self.merge_passes = 0;
        let t = effective_threads(self.threads);

        // --- Run formation ---
        let outcome = if t <= 1 {
            self.form_runs_seq()?
        } else {
            self.form_runs_par(t)?
        };
        self.child.close();

        let (mut runs, consumed) = match outcome {
            FormOutcome::InMemory(arena) => {
                // Everything fit: no spill at all.
                let order = self.former().sort_arena(&arena);
                self.state = SortState::InMemory {
                    arena,
                    order,
                    pos: 0,
                };
                return Ok(());
            }
            FormOutcome::Runs(runs, consumed) => (runs, consumed),
        };

        // --- Intermediate merge passes until fan-in suffices ---
        let fan_in = self.budget.fan_in().max(2);
        while runs.len() > fan_in {
            // pass boundary: a natural cancellation point
            if let Some(tok) = &self.cancel {
                tok.check(consumed)?;
            }
            runs = self.merge_pass(runs, fan_in, t)?;
            self.merge_passes += 1;
        }

        // --- Final merge, streamed ---
        self.state = SortState::Merging(KWayMerge::new(
            runs,
            Arc::clone(&self.cmp),
            self.cancel.clone(),
        ));
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        match &mut self.state {
            SortState::Idle => Err(ExecError::Protocol("ExternalSort::next before open")),
            SortState::InMemory { arena, order, pos } => {
                if *pos >= order.len() {
                    return Ok(None);
                }
                let i = order[*pos] as usize;
                *pos += 1;
                let rs = self.record_size;
                Ok(Some(&arena[i * rs..i * rs + rs]))
            }
            SortState::Merging(m) => m.next_record(),
        }
    }

    fn close(&mut self) {
        self.state = SortState::Idle; // drops runs (temp files delete themselves)
    }

    fn record_size(&self) -> usize {
        self.record_size
    }
}

/// Streaming k-way merge over run files, using a hand-rolled binary heap so
/// the comparator can be a trait object. Heap entries own reusable record
/// buffers — one memcpy per record, no per-record allocation.
struct KWayMerge {
    scanners: Vec<SharedScanner>,
    cmp: Arc<dyn RecordComparator>,
    /// (prefix key, record bytes, scanner index); a min-heap by
    /// `(key, cmp)` on the bytes. Keys are 0 when the comparator offers
    /// none.
    heap: Vec<(u64, Vec<u8>, usize)>,
    use_keys: bool,
    /// Buffer handed to the caller.
    out: Vec<u8>,
    primed: bool,
    cancel: Option<CancelToken>,
    /// Records emitted so far — the merge's cancellation progress count.
    emitted: u64,
}

impl KWayMerge {
    fn new(
        runs: Vec<Arc<HeapFile>>,
        cmp: Arc<dyn RecordComparator>,
        cancel: Option<CancelToken>,
    ) -> Self {
        KWayMerge {
            scanners: runs.into_iter().map(SharedScanner::new).collect(),
            cmp,
            heap: Vec::new(),
            use_keys: false,
            out: Vec::new(),
            primed: false,
            cancel,
            emitted: 0,
        }
    }

    fn less(&self, a: &(u64, Vec<u8>, usize), b: &(u64, Vec<u8>, usize)) -> bool {
        match a.0.cmp(&b.0) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => self.cmp.cmp(&a.1, &b.1) == Ordering::Less,
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(&self.heap[i], &self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.less(&self.heap[l], &self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.less(&self.heap[r], &self.heap[smallest]) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }

    /// The prefix key for `bytes`, or 0 after [`Self::degrade_keys`].
    /// A comparator that stops offering keys mid-stream (contract
    /// breach) demotes the whole merge to pure-comparison order rather
    /// than aborting or mis-sorting.
    fn key_of(&mut self, bytes: &[u8]) -> u64 {
        if !self.use_keys {
            return 0;
        }
        match self.cmp.prefix_key(bytes) {
            Some(k) => k,
            None => {
                self.degrade_keys();
                0
            }
        }
    }

    /// Zero every heap key and re-heapify under pure `cmp` order.
    fn degrade_keys(&mut self) {
        self.use_keys = false;
        for e in &mut self.heap {
            e.0 = 0;
        }
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    fn prime(&mut self) -> Result<(), ExecError> {
        for idx in 0..self.scanners.len() {
            let mut buf = Vec::new();
            let got = match self.scanners[idx].next_record()? {
                Some(r) => {
                    buf.extend_from_slice(r);
                    true
                }
                None => false,
            };
            if got {
                if self.heap.is_empty() {
                    // probe once whether the comparator offers keys
                    self.use_keys = self.cmp.prefix_key(&buf).is_some();
                }
                let key = self.key_of(&buf);
                self.heap.push((key, buf, idx));
                let last = self.heap.len() - 1;
                self.sift_up(last);
            }
        }
        self.primed = true;
        Ok(())
    }

    fn next_record(&mut self) -> Result<Option<&[u8]>, ExecError> {
        poll(self.cancel.as_ref(), self.emitted)?;
        if !self.primed {
            self.prime()?;
        }
        if self.heap.is_empty() {
            return Ok(None);
        }
        // Move the minimum out, refill from its scanner, restore the heap.
        let (bytes, idx) = {
            let top = &mut self.heap[0];
            (std::mem::take(&mut top.1), top.2)
        };
        self.out = bytes;
        match self.scanners[idx].next_record()? {
            Some(r) => {
                let top = &mut self.heap[0];
                top.1.clear();
                top.1.extend_from_slice(r);
                let key = if self.use_keys {
                    self.cmp.prefix_key(&self.heap[0].1)
                } else {
                    Some(0)
                };
                match key {
                    Some(k) => self.heap[0].0 = k,
                    // degradation zeroes every key (incl. this one) and
                    // re-heapifies under pure cmp order
                    None => self.degrade_keys(),
                }
                self.sift_down(0);
            }
            None => {
                let last = self.heap.len() - 1;
                self.heap.swap(0, last);
                self.heap.pop();
                if !self.heap.is_empty() {
                    self.sift_down(0);
                }
            }
        }
        self.emitted += 1;
        Ok(Some(&self.out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, MemSource};
    use skyline_storage::MemDisk;

    fn asc() -> Arc<dyn RecordComparator> {
        Arc::new(|a: &[u8], b: &[u8]| a.cmp(b))
    }

    fn mk_records(n: usize, size: usize, seed: u64) -> Vec<Vec<u8>> {
        // simple xorshift so tests don't need rand here
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                (0..size)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x & 0xff) as u8
                    })
                    .collect()
            })
            .collect()
    }

    fn sort_via(records: Vec<Vec<u8>>, size: usize, pages: usize) -> (Vec<Vec<u8>>, usize) {
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(records, size));
        let mut sort = ExternalSort::new(src, asc(), disk, SortBudget::pages(pages));
        let out = collect(&mut sort).unwrap();
        (out, sort.runs_written())
    }

    #[test]
    fn in_memory_path_when_input_fits() {
        let recs = mk_records(100, 16, 3);
        let mut expect = recs.clone();
        expect.sort();
        let (out, runs) = sort_via(recs, 16, 10);
        assert_eq!(out, expect);
        assert_eq!(runs, 0, "should not spill");
    }

    #[test]
    fn external_path_with_tiny_budget() {
        // 2000 × 64B = 128000 B = 31.25 pages; 3-page budget → many runs,
        // fan-in 2 → multiple merge passes.
        let recs = mk_records(2000, 64, 7);
        let mut expect = recs.clone();
        expect.sort();
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs, 64));
        let mut sort = ExternalSort::new(src, asc(), Arc::clone(&disk) as _, SortBudget::pages(3));
        let out = collect(&mut sort).unwrap();
        assert_eq!(out, expect);
        assert!(sort.runs_written() > 10);
        assert!(sort.merge_passes() >= 2);
        // temp files cleaned up
        assert_eq!(disk.allocated_pages(), 0);
    }

    #[test]
    fn comparator_that_drops_prefix_keys_midway_still_sorts() {
        // Contract breach: prefix keys for most records, None for some.
        // The sort must degrade to pure comparisons, never abort or
        // mis-sort — multi-run budget so KWayMerge degrades too.
        struct Flaky;
        impl RecordComparator for Flaky {
            fn cmp(&self, a: &[u8], b: &[u8]) -> Ordering {
                a.cmp(b)
            }
            fn prefix_key(&self, r: &[u8]) -> Option<u64> {
                // refines lexicographic order when offered at all
                if r[0].is_multiple_of(5) {
                    None
                } else {
                    Some(u64::from(r[0]))
                }
            }
        }
        let recs = mk_records(800, 32, 13);
        let mut expect = recs.clone();
        expect.sort();
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs, 32));
        let mut sort = ExternalSort::new(
            src,
            Arc::new(Flaky),
            Arc::clone(&disk) as _,
            SortBudget::pages(3),
        );
        let out = collect(&mut sort).unwrap();
        assert_eq!(out, expect);
        assert!(sort.runs_written() > 1, "must exercise the merge path");
    }

    #[test]
    fn sorted_input_stays_sorted() {
        let mut recs = mk_records(500, 8, 9);
        recs.sort();
        let (out, _) = sort_via(recs.clone(), 8, 3);
        assert_eq!(out, recs);
    }

    #[test]
    fn duplicates_preserved() {
        let mut recs = mk_records(50, 8, 11);
        let dup = recs[0].clone();
        for _ in 0..20 {
            recs.push(dup.clone());
        }
        let mut expect = recs.clone();
        expect.sort();
        let (out, _) = sort_via(recs, 8, 3);
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input() {
        let (out, runs) = sort_via(vec![], 8, 3);
        assert!(out.is_empty());
        assert_eq!(runs, 0);
    }

    #[test]
    fn custom_comparator_descending() {
        let recs = mk_records(300, 8, 13);
        let mut expect = recs.clone();
        expect.sort_by(|a, b| b.cmp(a));
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs, 8));
        let cmp: Arc<dyn RecordComparator> = Arc::new(|a: &[u8], b: &[u8]| b.cmp(a));
        let mut sort = ExternalSort::new(src, cmp, disk, SortBudget::pages(4));
        assert_eq!(collect(&mut sort).unwrap(), expect);
    }

    #[test]
    fn reopen_resorts() {
        let recs = mk_records(100, 8, 17);
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs.clone(), 8));
        let mut sort = ExternalSort::new(src, asc(), disk, SortBudget::pages(3));
        let a = collect(&mut sort).unwrap();
        let b = collect(&mut sort).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cancelled_sort_returns_typed_error_and_cleans_up() {
        let recs = mk_records(2000, 64, 23);
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs, 64));
        let token = CancelToken::new();
        token.cancel();
        let mut sort = ExternalSort::new(src, asc(), Arc::clone(&disk) as _, SortBudget::pages(3))
            .with_cancel(token);
        match sort.open() {
            Err(ExecError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        sort.close();
        assert_eq!(disk.allocated_pages(), 0, "no leaked run files");
    }

    #[test]
    fn deadline_cancel_mid_merge_cleans_up() {
        // Cancel after open: run formation completes, the streamed final
        // merge then observes the flag at its first poll point.
        let recs = mk_records(2000, 64, 29);
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs, 64));
        let token = CancelToken::new();
        let mut sort = ExternalSort::new(src, asc(), Arc::clone(&disk) as _, SortBudget::pages(3))
            .with_cancel(token.clone());
        sort.open().unwrap();
        token.cancel();
        let mut err = None;
        loop {
            match sort.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(err, Some(ExecError::Cancelled { .. })),
            "merge must notice the cancel: {err:?}"
        );
        sort.close();
        assert_eq!(disk.allocated_pages(), 0, "no leaked run files");
    }

    #[test]
    fn parallel_sort_matches_sequential_output() {
        let recs = mk_records(2000, 64, 31);
        let mut expect = recs.clone();
        expect.sort();
        for t in [2, 4, 0] {
            let disk = MemDisk::shared();
            let src = Box::new(MemSource::new(recs.clone(), 64));
            let mut sort =
                ExternalSort::new(src, asc(), Arc::clone(&disk) as _, SortBudget::pages(3))
                    .with_threads(t);
            let out = collect(&mut sort).unwrap();
            assert_eq!(out, expect, "threads={t}");
            assert!(sort.runs_written() > 1, "must spill under a 3-page budget");
            sort.close();
            assert_eq!(disk.allocated_pages(), 0, "threads={t}: leaked run files");
        }
    }

    #[test]
    fn parallel_sort_keeps_in_memory_fast_path() {
        let recs = mk_records(100, 16, 37);
        let mut expect = recs.clone();
        expect.sort();
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs, 16));
        let mut sort = ExternalSort::new(src, asc(), Arc::clone(&disk) as _, SortBudget::pages(10))
            .with_threads(4);
        let out = collect(&mut sort).unwrap();
        assert_eq!(out, expect);
        assert_eq!(sort.runs_written(), 0, "fitting input must not spill");
        assert_eq!(disk.allocated_pages(), 0);
    }

    #[test]
    fn parallel_sort_with_prefix_keys_and_many_merge_passes() {
        // exercises parallel intermediate merge passes (fan-in 2) under
        // the decorate-sort-undecorate path
        struct FirstByte;
        impl RecordComparator for FirstByte {
            fn cmp(&self, a: &[u8], b: &[u8]) -> Ordering {
                a.cmp(b)
            }
            fn prefix_key(&self, r: &[u8]) -> Option<u64> {
                Some(u64::from(r[0]))
            }
        }
        let recs = mk_records(3000, 64, 41);
        let mut expect = recs.clone();
        expect.sort();
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs, 64));
        let mut sort = ExternalSort::new(
            src,
            Arc::new(FirstByte),
            Arc::clone(&disk) as _,
            SortBudget::pages(3),
        )
        .with_threads(3);
        let out = collect(&mut sort).unwrap();
        assert_eq!(out, expect);
        assert!(sort.merge_passes() >= 2, "must take intermediate passes");
        sort.close();
        assert_eq!(disk.allocated_pages(), 0);
    }

    #[test]
    fn parallel_cancelled_sort_returns_typed_error_and_cleans_up() {
        let recs = mk_records(2000, 64, 43);
        let disk = MemDisk::shared();
        let src = Box::new(MemSource::new(recs, 64));
        let token = CancelToken::new();
        token.cancel();
        let mut sort = ExternalSort::new(src, asc(), Arc::clone(&disk) as _, SortBudget::pages(3))
            .with_threads(4)
            .with_cancel(token);
        match sort.open() {
            Err(ExecError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        sort.close();
        assert_eq!(disk.allocated_pages(), 0, "no leaked run files");
    }

    #[test]
    fn sort_io_is_counted() {
        let recs = mk_records(2000, 64, 19);
        let disk = MemDisk::shared();
        let before = disk.stats().snapshot();
        let src = Box::new(MemSource::new(recs, 64));
        let mut sort = ExternalSort::new(src, asc(), Arc::clone(&disk) as _, SortBudget::pages(3));
        let _ = collect(&mut sort).unwrap();
        let delta = disk.stats().snapshot().since(&before);
        assert!(
            delta.writes > 30,
            "run + merge writes expected, got {}",
            delta.writes
        );
        assert!(delta.reads > 30);
    }
}
