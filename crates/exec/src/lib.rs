#![warn(missing_docs)]

//! Volcano-style physical operators over fixed-width record streams.
//!
//! Every operator implements [`Operator`]: `open` / `next` / `close`, with
//! `next` lending a `&[u8]` record valid until the following call — no
//! per-record allocation anywhere on the hot path. Operators compose into
//! left-deep pipelines: `HeapScan → Filter → ExternalSort → (skyline) →
//! Project → Limit`.
//!
//! The crate hosts the paper's substrate operators:
//!
//! * [`sort::ExternalSort`] — run-generation + k-way-merge external sort
//!   under a page budget, the *presort* of Sort-Filter-Skyline. The paper
//!   gives the sort ~1000 buffer pages (§5) and treats sort and filter as
//!   separately scheduled operations; so do we.
//! * [`group_max::GroupMax`] — the `GROUP BY a₁..a_{k−1}, MAX(a_k)`
//!   pre-pass of the *dimensional reduction* optimization (paper Fig. 8).
//! * [`filter::Filter`], [`project::Project`], [`limit::Limit`],
//!   [`op::HeapScan`], [`op::MemSource`] — plumbing every engine needs.

pub mod backpressure;
pub mod batch;
pub mod cancel;
pub mod error;
pub mod filter;
pub mod group_max;
pub mod limit;
pub mod op;
pub mod project;
pub mod queue;
pub mod sort;
mod sync_util;

pub use backpressure::{Backpressure, TryAcquire};
pub use batch::{BatchEncode, BatchHeapScan, BatchSource, KeyBatch, KeyExtract, NarrowLayout};
pub use cancel::CancelToken;
pub use error::ExecError;
pub use filter::Filter;
pub use group_max::GroupMax;
pub use limit::Limit;
pub use op::{
    collect, BoxedOperator, ChainScan, HeapRangeScan, HeapScan, IndexScan, MemSource, Operator,
    StridedHeapScan,
};
pub use project::Project;
pub use queue::{PushTimeout, TryPop, WorkQueue};
pub use sort::{ExternalSort, RecordComparator, SortBudget};
