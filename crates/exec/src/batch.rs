//! Column-major key batches: the vectorized substrate of the pipeline.
//!
//! The row path re-assembles dominance keys into full-width records
//! between every stage. The batch path instead carries a [`KeyBatch`] —
//! one `Vec<f64>` per dominance dimension plus a row-id column — and
//! defers touching the full payload until emission (late
//! materialization). Filtering between stages is expressed by a
//! *selection vector* of logical row indices over the physical columns,
//! so discarding rows never moves key data; only [`KeyBatch::compact`]
//! gathers.
//!
//! Between blocking stages a batch flattens into fixed-width *narrow
//! entries* (`d` little-endian f64 keys followed by a u64 row id,
//! [`NarrowLayout`]) so the existing external sort, spill files, and
//! Volcano seams compose unchanged; [`BatchEncode`] is that bridge. The
//! narrow entry IS the batch row in row-major clothing — decoding one
//! back into columns is a copy, never a re-derivation, so keys computed
//! once at the scan are never re-extracted downstream.

use crate::cancel::CancelToken;
use crate::error::ExecError;
use crate::op::Operator;
use skyline_storage::{HeapFile, SharedScanner};
use std::sync::Arc;

/// Default number of rows per batch. Large enough to amortize per-batch
/// bookkeeping (cancel polls, virtual dispatch), small enough that a
/// 10-dimension batch (88 B/row) stays comfortably inside L2.
pub const BATCH_ROWS: usize = 1024;

/// A column-major batch of dominance keys plus a row-id column, with an
/// optional selection vector defining the live logical rows.
///
/// Physical storage is append-only ([`KeyBatch::push`]); all filtering
/// composes through the selection vector ([`KeyBatch::select`],
/// [`KeyBatch::filter`], [`KeyBatch::slice`]) without touching key data.
/// Logical indices (`0..len()`) are what every accessor takes; the
/// selection indirection is internal.
#[derive(Debug, Clone)]
pub struct KeyBatch {
    d: usize,
    cols: Vec<Vec<f64>>,
    row_ids: Vec<u64>,
    sel: Option<Vec<u32>>,
}

impl KeyBatch {
    /// An empty batch of `d` key columns.
    ///
    /// # Panics
    /// Panics when `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "a key batch needs at least one dimension");
        KeyBatch {
            d,
            cols: vec![Vec::new(); d],
            row_ids: Vec::new(),
            sel: None,
        }
    }

    /// Number of key columns.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Logical row count (after selection).
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.row_ids.len(),
        }
    }

    /// True when no logical rows are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical row count (ignoring selection).
    pub fn physical_len(&self) -> usize {
        self.row_ids.len()
    }

    /// The current selection vector, if any — physical indices in
    /// logical order.
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Modeled size of the live rows in bytes: `len · 8(d+1)`.
    pub fn bytes(&self) -> u64 {
        (self.len() * 8 * (self.d + 1)) as u64
    }

    /// Drop all rows and the selection; keeps `d` and column capacity.
    pub fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.row_ids.clear();
        self.sel = None;
    }

    /// [`KeyBatch::clear`], additionally re-shaping to `d` columns —
    /// lets one allocation serve sources of different widths.
    ///
    /// # Panics
    /// Panics when `d == 0`.
    pub fn reset(&mut self, d: usize) {
        assert!(d > 0, "a key batch needs at least one dimension");
        self.clear();
        if d != self.d {
            self.cols.resize(d, Vec::new());
            self.cols.truncate(d);
            self.d = d;
        }
    }

    /// Append one physical row.
    ///
    /// # Panics
    /// Panics when a selection is active (compact first — appending under
    /// a selection would silently hide the new row) or `key.len() != d`.
    pub fn push(&mut self, key: &[f64], row_id: u64) {
        assert!(self.sel.is_none(), "push under a selection; compact first");
        assert_eq!(key.len(), self.d, "key width mismatch");
        for (c, v) in self.cols.iter_mut().zip(key) {
            c.push(*v);
        }
        self.row_ids.push(row_id);
    }

    /// Key value of logical row `i` in dimension `j`.
    pub fn value(&self, j: usize, i: usize) -> f64 {
        self.cols[j][self.physical(i)]
    }

    /// Row id of logical row `i`.
    pub fn row_id_at(&self, i: usize) -> u64 {
        self.row_ids[self.physical(i)]
    }

    /// Copy logical row `i`'s key into `out` (cleared first).
    pub fn key_at(&self, i: usize, out: &mut Vec<f64>) {
        let p = self.physical(i);
        out.clear();
        for c in &self.cols {
            out.push(c[p]);
        }
    }

    /// Physical storage of dimension `j`. Indices in this slice are
    /// *physical*; honor the selection via [`KeyBatch::value`] unless the
    /// batch was just compacted.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.cols[j]
    }

    /// Restrict the view to the logical rows in `idx`, in that order.
    /// Composes with any existing selection; rows may repeat.
    ///
    /// # Panics
    /// Panics when an index is out of logical range.
    pub fn select(&mut self, idx: &[u32]) {
        let len = self.len();
        let composed: Vec<u32> = match &self.sel {
            Some(sel) => idx
                .iter()
                .map(|&i| {
                    assert!((i as usize) < len, "selection index out of range");
                    sel[i as usize]
                })
                .collect(),
            None => {
                for &i in idx {
                    assert!((i as usize) < len, "selection index out of range");
                }
                idx.to_vec()
            }
        };
        self.sel = Some(composed);
    }

    /// Keep only logical rows where `keep(batch, i)` holds, preserving
    /// order. Pure selection-vector surgery; key data does not move.
    pub fn filter<F>(&mut self, mut keep: F)
    where
        F: FnMut(&KeyBatch, usize) -> bool,
    {
        let idx: Vec<u32> = (0..self.len())
            .filter(|&i| keep(self, i))
            .map(|i| i as u32)
            .collect();
        self.select(&idx);
    }

    /// Restrict the view to logical rows `offset..offset + len`.
    ///
    /// # Panics
    /// Panics when the range exceeds the logical length.
    pub fn slice(&mut self, offset: usize, len: usize) {
        assert!(
            offset.checked_add(len).is_some_and(|hi| hi <= self.len()),
            "slice out of range"
        );
        let idx: Vec<u32> = (offset..offset + len).map(|i| i as u32).collect();
        self.select(&idx);
    }

    /// Materialize the selection: gather the live rows into fresh
    /// physical storage and drop the selection vector. The one place in
    /// the batch algebra where key data moves.
    pub fn compact(&mut self) {
        let Some(sel) = self.sel.take() else {
            return;
        };
        let mut cols = Vec::with_capacity(self.d);
        for c in &self.cols {
            cols.push(sel.iter().map(|&p| c[p as usize]).collect());
        }
        self.row_ids = sel.iter().map(|&p| self.row_ids[p as usize]).collect();
        self.cols = cols;
    }

    fn physical(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }
}

/// Extracts a row's dominance key (already oriented so smaller-is-better
/// or whatever convention the caller fixed) from a full-width record.
/// The core crate implements this from its schema + preference spec; the
/// exec crate stays schema-agnostic.
pub trait KeyExtract: Send + Sync {
    /// Number of key dimensions produced.
    fn dims(&self) -> usize;

    /// Append exactly [`KeyExtract::dims`] values to `out` (caller
    /// clears).
    fn extract(&self, record: &[u8], out: &mut Vec<f64>);
}

/// A producer of [`KeyBatch`]es — the batch path's analogue of
/// [`Operator`]. `open` once, then `next_batch` until it returns
/// `Ok(false)`, then `close`.
pub trait BatchSource {
    /// Prepare the stream.
    ///
    /// # Errors
    /// Whatever the underlying storage raises.
    fn open(&mut self) -> Result<(), ExecError>;

    /// Fill `out` (re-shaped by the callee) with the next batch. Returns
    /// `Ok(true)` when at least one row was produced, `Ok(false)` at end
    /// of stream.
    ///
    /// # Errors
    /// Storage errors, or [`ExecError::Cancelled`] at a batch boundary.
    fn next_batch(&mut self, out: &mut KeyBatch) -> Result<bool, ExecError>;

    /// Release resources. Idempotent.
    fn close(&mut self);

    /// Number of key dimensions per row.
    fn dims(&self) -> usize;
}

/// Batched heap scan: reads full-width records page by page, extracts
/// dominance keys once, and emits them as [`KeyBatch`]es with the record
/// position as row id. The full payload is *not* carried — downstream
/// stages work on keys and row ids until materialization.
///
/// Cancellation polls fire at batch boundaries (not per row): one atomic
/// load per [`BATCH_ROWS`] rows.
pub struct BatchHeapScan {
    heap: Arc<HeapFile>,
    extract: Arc<dyn KeyExtract>,
    batch_rows: usize,
    cancel: Option<CancelToken>,
    scan: Option<SharedScanner>,
    fetched: u64,
    key: Vec<f64>,
}

impl BatchHeapScan {
    /// Scan `heap`, extracting keys with `extract`, `batch_rows` rows at
    /// a time.
    ///
    /// # Panics
    /// Panics when `batch_rows == 0`.
    pub fn new(heap: Arc<HeapFile>, extract: Arc<dyn KeyExtract>, batch_rows: usize) -> Self {
        assert!(batch_rows > 0, "batch_rows must be positive");
        BatchHeapScan {
            heap,
            extract,
            batch_rows,
            cancel: None,
            scan: None,
            fetched: 0,
            key: Vec::new(),
        }
    }

    /// Attach a cancellation token, polled once per batch boundary.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

impl BatchSource for BatchHeapScan {
    fn open(&mut self) -> Result<(), ExecError> {
        self.scan = Some(SharedScanner::new(Arc::clone(&self.heap)));
        self.fetched = 0;
        Ok(())
    }

    fn next_batch(&mut self, out: &mut KeyBatch) -> Result<bool, ExecError> {
        let scan = self
            .scan
            .as_mut()
            .ok_or(ExecError::Protocol("BatchHeapScan::next_batch before open"))?;
        if let Some(c) = &self.cancel {
            c.check(self.fetched)?;
        }
        out.reset(self.extract.dims());
        while out.physical_len() < self.batch_rows {
            let row_id = scan.position();
            match scan.next_record()? {
                Some(rec) => {
                    self.key.clear();
                    self.extract.extract(rec, &mut self.key);
                    out.push(&self.key, row_id);
                }
                None => break,
            }
        }
        self.fetched += out.physical_len() as u64;
        Ok(!out.is_empty())
    }

    fn close(&mut self) {
        self.scan = None;
    }

    fn dims(&self) -> usize {
        self.extract.dims()
    }
}

/// Fixed-width serialization of one batch row: `d` little-endian f64
/// key lanes followed by a little-endian u64 row id — `8(d+1)` bytes.
/// This is what flows through the external sort and spill files on the
/// batch path instead of full records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NarrowLayout {
    d: usize,
}

impl NarrowLayout {
    /// Layout for `d` key dimensions.
    ///
    /// # Panics
    /// Panics when `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "a narrow entry needs at least one dimension");
        NarrowLayout { d }
    }

    /// Number of key dimensions.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Entry size in bytes: `8(d+1)`.
    pub fn entry_size(&self) -> usize {
        8 * (self.d + 1)
    }

    /// Serialize `key` + `row_id` into `out` (cleared first).
    ///
    /// # Panics
    /// Panics when `key.len() != dims()`.
    pub fn encode_into(&self, key: &[f64], row_id: u64, out: &mut Vec<u8>) {
        assert_eq!(key.len(), self.d, "key width mismatch");
        out.clear();
        for v in key {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&row_id.to_le_bytes());
    }

    /// Key value in dimension `j` of a serialized entry.
    pub fn key_dim(&self, entry: &[u8], j: usize) -> f64 {
        debug_assert_eq!(entry.len(), self.entry_size(), "entry size mismatch");
        let mut lane = [0u8; 8];
        lane.copy_from_slice(&entry[8 * j..8 * (j + 1)]);
        f64::from_le_bytes(lane)
    }

    /// Copy an entry's key into `out` (cleared first).
    pub fn key_into(&self, entry: &[u8], out: &mut Vec<f64>) {
        out.clear();
        for j in 0..self.d {
            out.push(self.key_dim(entry, j));
        }
    }

    /// Row id of a serialized entry.
    pub fn row_id(&self, entry: &[u8]) -> u64 {
        debug_assert_eq!(entry.len(), self.entry_size(), "entry size mismatch");
        let mut lane = [0u8; 8];
        lane.copy_from_slice(&entry[8 * self.d..8 * (self.d + 1)]);
        u64::from_le_bytes(lane)
    }
}

/// Adapter lending a [`BatchSource`]'s rows as narrow entries through the
/// [`Operator`] seam — how a batch stream enters the external sort (and
/// any other row-protocol consumer) without re-deriving keys. Counts the
/// batches it drained for the caller's metrics ([`BatchEncode::batches`];
/// the exec crate carries no counters of its own).
pub struct BatchEncode {
    source: Box<dyn BatchSource>,
    narrow: NarrowLayout,
    batch: KeyBatch,
    pos: usize,
    key: Vec<f64>,
    buf: Vec<u8>,
    batches: u64,
    done: bool,
}

impl BatchEncode {
    /// Wrap `source`.
    pub fn new(source: Box<dyn BatchSource>) -> Self {
        let narrow = NarrowLayout::new(source.dims());
        let batch = KeyBatch::new(source.dims());
        BatchEncode {
            source,
            narrow,
            batch,
            pos: 0,
            key: Vec::new(),
            buf: Vec::new(),
            batches: 0,
            done: false,
        }
    }

    /// The narrow layout of the emitted entries.
    pub fn narrow(&self) -> NarrowLayout {
        self.narrow
    }

    /// Batches drained from the source so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }
}

impl Operator for BatchEncode {
    fn open(&mut self) -> Result<(), ExecError> {
        self.source.open()?;
        self.batch.reset(self.narrow.dims());
        self.pos = 0;
        self.batches = 0;
        self.done = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<&[u8]>, ExecError> {
        if self.done {
            return Ok(None);
        }
        while self.pos >= self.batch.len() {
            if !self.source.next_batch(&mut self.batch)? {
                self.done = true;
                return Ok(None);
            }
            self.batches += 1;
            self.pos = 0;
        }
        self.batch.key_at(self.pos, &mut self.key);
        let row_id = self.batch.row_id_at(self.pos);
        self.narrow.encode_into(&self.key, row_id, &mut self.buf);
        self.pos += 1;
        Ok(Some(&self.buf))
    }

    fn close(&mut self) {
        self.source.close();
    }

    fn record_size(&self) -> usize {
        self.narrow.entry_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use skyline_storage::MemDisk;

    fn sample_batch() -> KeyBatch {
        let mut b = KeyBatch::new(2);
        for i in 0..6u64 {
            b.push(&[i as f64, (10 - i) as f64], 100 + i);
        }
        b
    }

    #[test]
    fn push_and_read_back() {
        let b = sample_batch();
        assert_eq!(b.len(), 6);
        assert_eq!(b.physical_len(), 6);
        assert!(!b.is_empty());
        assert_eq!(b.value(0, 3), 3.0);
        assert_eq!(b.value(1, 3), 7.0);
        assert_eq!(b.row_id_at(3), 103);
        let mut key = Vec::new();
        b.key_at(5, &mut key);
        assert_eq!(key, vec![5.0, 5.0]);
        assert_eq!(b.bytes(), 6 * 24);
    }

    #[test]
    fn select_composes_and_compact_materializes() {
        let mut b = sample_batch();
        b.select(&[5, 3, 1]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.row_id_at(0), 105);
        // second select indexes the *logical* view
        b.select(&[2, 0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row_id_at(0), 101);
        assert_eq!(b.row_id_at(1), 105);
        b.compact();
        assert!(b.selection().is_none());
        assert_eq!(b.physical_len(), 2);
        assert_eq!(b.value(0, 1), 5.0);
        // push works again after compact
        b.push(&[9.0, 9.0], 999);
        assert_eq!(b.row_id_at(2), 999);
    }

    #[test]
    fn filter_and_slice_are_selections() {
        let mut b = sample_batch();
        b.filter(|b, i| b.value(0, i) >= 2.0);
        assert_eq!(b.len(), 4);
        assert_eq!(b.row_id_at(0), 102);
        b.slice(1, 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row_id_at(0), 103);
        assert_eq!(b.row_id_at(1), 104);
        assert_eq!(b.physical_len(), 6, "no data moved");
    }

    #[test]
    #[should_panic(expected = "push under a selection")]
    fn push_under_selection_panics() {
        let mut b = sample_batch();
        b.select(&[0]);
        b.push(&[0.0, 0.0], 7);
    }

    #[test]
    #[should_panic(expected = "selection index out of range")]
    fn select_checks_logical_range() {
        let mut b = sample_batch();
        b.select(&[0, 1]);
        b.select(&[2]);
    }

    #[test]
    fn narrow_layout_round_trip() {
        let n = NarrowLayout::new(3);
        assert_eq!(n.entry_size(), 32);
        let mut buf = Vec::new();
        n.encode_into(&[1.5, -0.25, f64::MAX], 0xDEAD_BEEF, &mut buf);
        assert_eq!(buf.len(), 32);
        assert_eq!(n.key_dim(&buf, 1), -0.25);
        assert_eq!(n.row_id(&buf), 0xDEAD_BEEF);
        let mut key = Vec::new();
        n.key_into(&buf, &mut key);
        assert_eq!(key, vec![1.5, -0.25, f64::MAX]);
    }

    /// Records are two LE f64s; the key is both, second negated — enough
    /// to see extraction happen exactly once.
    struct PairKeys;

    impl KeyExtract for PairKeys {
        fn dims(&self) -> usize {
            2
        }

        fn extract(&self, record: &[u8], out: &mut Vec<f64>) {
            let a = f64::from_le_bytes(record[..8].try_into().expect("lane 0"));
            let b = f64::from_le_bytes(record[8..16].try_into().expect("lane 1"));
            out.push(a);
            out.push(-b);
        }
    }

    fn pair_heap(n: u64) -> Arc<HeapFile> {
        let disk = MemDisk::shared();
        let mut h = HeapFile::create(disk, 16).unwrap();
        let recs: Vec<[u8; 16]> = (0..n)
            .map(|i| {
                let mut rec = [0u8; 16];
                rec[..8].copy_from_slice(&(i as f64).to_le_bytes());
                rec[8..].copy_from_slice(&(i as f64 + 0.5).to_le_bytes());
                rec
            })
            .collect();
        h.append_all(recs.iter().map(|r| r.as_slice())).unwrap();
        Arc::new(h)
    }

    #[test]
    fn batch_heap_scan_covers_file_with_row_ids() {
        let heap = pair_heap(10);
        let mut scan = BatchHeapScan::new(heap, Arc::new(PairKeys), 4);
        scan.open().unwrap();
        let mut batch = KeyBatch::new(2);
        let mut rows = Vec::new();
        while scan.next_batch(&mut batch).unwrap() {
            for i in 0..batch.len() {
                rows.push((batch.row_id_at(i), batch.value(0, i), batch.value(1, i)));
            }
        }
        scan.close();
        assert_eq!(rows.len(), 10);
        for (i, (rid, a, b)) in rows.iter().enumerate() {
            assert_eq!(*rid, i as u64, "row id is the scan position");
            assert_eq!(*a, i as f64);
            assert_eq!(*b, -(i as f64 + 0.5));
        }
    }

    #[test]
    fn batch_scan_polls_cancel_at_batch_boundary() {
        let token = CancelToken::new();
        token.cancel();
        let mut scan = BatchHeapScan::new(pair_heap(10), Arc::new(PairKeys), 4).with_cancel(token);
        scan.open().unwrap();
        let mut batch = KeyBatch::new(2);
        assert!(matches!(
            scan.next_batch(&mut batch),
            Err(ExecError::Cancelled {
                records_processed: 0
            })
        ));
    }

    #[test]
    fn batch_encode_lends_narrow_entries() {
        let heap = pair_heap(10);
        let mut enc = BatchEncode::new(Box::new(BatchHeapScan::new(heap, Arc::new(PairKeys), 4)));
        assert_eq!(enc.record_size(), 24);
        let out = collect(&mut enc).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(enc.batches(), 3, "10 rows at 4/batch");
        let n = enc.narrow();
        for (i, e) in out.iter().enumerate() {
            assert_eq!(n.row_id(e), i as u64);
            assert_eq!(n.key_dim(e, 0), i as f64);
            assert_eq!(n.key_dim(e, 1), -(i as f64 + 0.5));
        }
    }

    #[test]
    fn next_before_open_is_protocol_error() {
        let mut scan = BatchHeapScan::new(pair_heap(1), Arc::new(PairKeys), 4);
        let mut batch = KeyBatch::new(2);
        assert!(matches!(
            scan.next_batch(&mut batch),
            Err(ExecError::Protocol(_))
        ));
    }
}
