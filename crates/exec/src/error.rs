//! Execution errors.

use skyline_storage::buffer::BufferError;
use skyline_storage::StorageError;
use std::fmt;

/// Errors raised while executing an operator pipeline.
#[derive(Debug)]
pub enum ExecError {
    /// A buffer-pool reservation failed (operator budget unavailable).
    Buffer(BufferError),
    /// A page transfer failed in the storage layer.
    Storage(StorageError),
    /// The query was cancelled (flag raised or deadline passed). Carries
    /// how many records the operator had processed when it noticed.
    Cancelled {
        /// Records the operator had consumed from its input when the
        /// cancellation was observed.
        records_processed: u64,
    },
    /// An operator was misused (e.g. `next` before `open`).
    Protocol(&'static str),
    /// Configuration problem detected at open time.
    Config(String),
    /// A parallel worker thread panicked. Carries the panic payload when
    /// it was a string.
    Worker {
        /// The panic message, if it could be extracted from the payload.
        message: Option<String>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Buffer(e) => write!(f, "buffer error: {e}"),
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Cancelled { records_processed } => {
                write!(f, "query cancelled after {records_processed} records")
            }
            ExecError::Protocol(msg) => write!(f, "operator protocol violation: {msg}"),
            ExecError::Config(msg) => write!(f, "operator configuration error: {msg}"),
            ExecError::Worker { message: Some(m) } => write!(f, "worker thread panicked: {m}"),
            ExecError::Worker { message: None } => write!(f, "worker thread panicked"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Buffer(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BufferError> for ExecError {
    fn from(e: BufferError) -> Self {
        ExecError::Buffer(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_storage::{ErrorKind, IoOp};

    #[test]
    fn display_messages() {
        let e = ExecError::Protocol("next before open");
        assert!(e.to_string().contains("next before open"));
        let e = ExecError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        let e: ExecError = BufferError::Exhausted {
            requested: 5,
            available: 1,
        }
        .into();
        assert!(e.to_string().contains("requested 5"));
    }

    #[test]
    fn storage_and_cancelled_display() {
        let e: ExecError =
            StorageError::new(IoOp::Read, 3, ErrorKind::Transient, "injected").into();
        assert!(e.to_string().contains("storage error"));
        assert!(e.to_string().contains("file 3"));
        let e = ExecError::Cancelled {
            records_processed: 42,
        };
        assert!(e.to_string().contains("cancelled after 42"));
    }

    #[test]
    fn worker_display() {
        let e = ExecError::Worker {
            message: Some("boom".into()),
        };
        assert!(e.to_string().contains("panicked: boom"));
        let e = ExecError::Worker { message: None };
        assert!(e.to_string().contains("worker thread panicked"));
    }
}
