//! Execution errors.

use skyline_storage::buffer::BufferError;
use std::fmt;

/// Errors raised while executing an operator pipeline.
#[derive(Debug)]
pub enum ExecError {
    /// A buffer-pool reservation failed (operator budget unavailable).
    Buffer(BufferError),
    /// An operator was misused (e.g. `next` before `open`).
    Protocol(&'static str),
    /// Configuration problem detected at open time.
    Config(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Buffer(e) => write!(f, "buffer error: {e}"),
            ExecError::Protocol(msg) => write!(f, "operator protocol violation: {msg}"),
            ExecError::Config(msg) => write!(f, "operator configuration error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Buffer(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BufferError> for ExecError {
    fn from(e: BufferError) -> Self {
        ExecError::Buffer(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ExecError::Protocol("next before open");
        assert!(e.to_string().contains("next before open"));
        let e = ExecError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        let e: ExecError = BufferError::Exhausted {
            requested: 5,
            available: 1,
        }
        .into();
        assert!(e.to_string().contains("requested 5"));
    }
}
