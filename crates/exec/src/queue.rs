//! Bounded multi-producer/multi-consumer work queue.
//!
//! The parallel external sort hands filled run arenas from the (single)
//! child-reading thread to its sort-and-write workers through this queue,
//! and the parallel intermediate merge passes distribute run groups the
//! same way. One mutex guards the whole state, so every operation is a
//! single atomic step — which is exactly what lets the
//! `skyline_testkit::interleave` model test (`tests/queue_model.rs`)
//! explore the full linearization space of producer/consumer/closer
//! threads.
//!
//! Semantics:
//! * a bounded queue ([`WorkQueue::bounded`]) blocks producers at
//!   `capacity` items — the backpressure that keeps run formation's
//!   memory at `threads + 1` arenas;
//! * [`WorkQueue::close`] wakes everyone: subsequent pushes fail, pops
//!   drain the remaining items and then return `None`;
//! * items come out in global FIFO order (single lock ⇒ single order).
//!
//! No disk I/O ever happens under the queue's lock: items are moved out
//! before the guard drops, so the `lock-across-io` analysis stays clean.

use crate::sync_util::{lock, wait, wait_timeout};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a [`WorkQueue::push_deadline`] failed; both arms hand the item
/// back so the producer keeps ownership either way.
#[derive(Debug, PartialEq, Eq)]
pub enum PushTimeout<T> {
    /// The queue was (or became, while waiting) closed.
    Closed(T),
    /// The deadline passed while the queue was still full.
    TimedOut(T),
}

/// Result of [`WorkQueue::try_pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPop<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue is open but currently empty.
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    pushed: u64,
    popped: u64,
}

/// A bounded MPMC FIFO with explicit close.
pub struct WorkQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// A queue admitting at most `capacity` queued items (≥ 1).
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-capacity rendezvous queue
    /// cannot make progress under this blocking protocol.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "work queue needs capacity >= 1");
        WorkQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                pushed: 0,
                popped: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `item`, blocking while the queue is full. Returns the item
    /// back as `Err` when the queue is (or becomes) closed.
    ///
    /// Close semantics for in-flight producers: closing is a single
    /// linearizable step under the queue's one mutex, so a `push` racing
    /// a `close` either enqueues *before* the close (the item stays
    /// poppable — consumers drain everything enqueued pre-close) or
    /// observes the closed flag and hands the item back. A producer
    /// parked on a full queue is woken by `close` and returns its item;
    /// no item is ever silently dropped and none is ever accepted after
    /// the close point. The `queue_model.rs` interleaving tests
    /// enumerate exactly these races.
    ///
    /// # Errors
    /// `Err(item)` when the queue was closed before the item could be
    /// enqueued — the caller keeps ownership.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = lock(&self.state);
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                st.pushed += 1;
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = wait(&self.not_full, st);
        }
    }

    /// Enqueue `item`, waiting while the queue is full but never past
    /// `deadline`. This is the result-streaming shape: a worker pushing
    /// batches to a slow client backpressures until the client's queue
    /// frees a slot, yet a wedged client cannot pin the worker forever —
    /// the query deadline bounds the wait and the worker converts the
    /// timeout into a typed cancellation.
    ///
    /// # Errors
    /// [`PushTimeout::Closed`] when the queue was closed first (same
    /// linearization contract as [`WorkQueue::push`]),
    /// [`PushTimeout::TimedOut`] when `deadline` passed while full; the
    /// caller keeps ownership of the item in both arms.
    pub fn push_deadline(&self, item: T, deadline: Instant) -> Result<(), PushTimeout<T>> {
        let mut st = lock(&self.state);
        loop {
            if st.closed {
                return Err(PushTimeout::Closed(item));
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                st.pushed += 1;
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushTimeout::TimedOut(item));
            }
            st = wait_timeout(&self.not_full, st, deadline - now).0;
        }
    }

    /// Non-blocking push: fails with the item when the queue is full or
    /// closed.
    ///
    /// # Errors
    /// `Err(item)` when the queue is closed or at capacity.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut st = lock(&self.state);
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        st.pushed += 1;
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the next item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = lock(&self.state);
        loop {
            if let Some(item) = st.items.pop_front() {
                st.popped += 1;
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = wait(&self.not_empty, st);
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> TryPop<T> {
        let mut st = lock(&self.state);
        if let Some(item) = st.items.pop_front() {
            st.popped += 1;
            drop(st);
            self.not_full.notify_one();
            return TryPop::Item(item);
        }
        if st.closed {
            TryPop::Closed
        } else {
            TryPop::Empty
        }
    }

    /// Close the queue: producers fail from now on, consumers drain what
    /// is left. Idempotent.
    ///
    /// The close point is a linearization point under the queue mutex:
    /// every push that enqueued before it stays visible to consumers,
    /// every push at or after it returns its item to the producer
    /// (`Err(item)` from [`WorkQueue::push`], [`PushTimeout::Closed`]
    /// from [`WorkQueue::push_deadline`]), and producers parked on a
    /// full queue wake with the same refusal — close never strands a
    /// blocked thread and never drops an accepted item.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`WorkQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total items ever enqueued (model-test conservation counter).
    pub fn pushed(&self) -> u64 {
        lock(&self.state).pushed
    }

    /// Total items ever dequeued (model-test conservation counter).
    pub fn popped(&self) -> u64 {
        lock(&self.state).popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = WorkQueue::bounded(4);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.close();
        assert_eq!(q.pop(), Some(2), "close still drains queued items");
        assert_eq!(q.pop(), None);
        assert_eq!((q.pushed(), q.popped()), (3, 3));
    }

    #[test]
    fn try_ops_report_full_empty_closed() {
        let q = WorkQueue::bounded(1);
        assert_eq!(q.try_pop(), TryPop::Empty);
        q.try_push(7).unwrap();
        assert_eq!(q.try_push(8), Err(8), "full");
        assert_eq!(q.try_pop(), TryPop::Item(7));
        q.close();
        assert_eq!(q.try_push(9), Err(9), "closed");
        assert_eq!(q.try_pop(), TryPop::Closed);
    }

    #[test]
    fn push_after_close_returns_item() {
        let q = WorkQueue::bounded(2);
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(1), Err(1));
    }

    #[test]
    fn push_deadline_enqueues_times_out_and_refuses() {
        let q = WorkQueue::bounded(1);
        let soon = || Instant::now() + std::time::Duration::from_millis(5);
        assert_eq!(q.push_deadline(1, soon()), Ok(()));
        assert_eq!(
            q.push_deadline(2, soon()),
            Err(PushTimeout::TimedOut(2)),
            "full queue past the deadline returns the item"
        );
        q.close();
        assert_eq!(
            q.push_deadline(3, Instant::now() + std::time::Duration::from_secs(3600)),
            Err(PushTimeout::Closed(3)),
            "closed wins over a far deadline"
        );
        assert_eq!(q.pop(), Some(1), "the accepted item still drains");
    }

    #[test]
    fn push_deadline_wakes_on_pop_before_deadline() {
        let q = Arc::new(WorkQueue::bounded(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            q2.push_deadline(1, Instant::now() + std::time::Duration::from_secs(30))
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(
            h.join().unwrap(),
            Ok(()),
            "pop must wake the timed producer"
        );
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn push_deadline_wakes_on_close() {
        let q = Arc::new(WorkQueue::bounded(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            q2.push_deadline(1, Instant::now() + std::time::Duration::from_secs(30))
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PushTimeout::Closed(1)));
    }

    #[test]
    fn blocked_producer_wakes_on_pop_and_on_close() {
        let q = Arc::new(WorkQueue::bounded(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(1));
        // consumer frees a slot: the blocked producer completes
        assert_eq!(q.pop(), Some(0));
        assert_eq!(h.join().unwrap(), Ok(()));
        assert_eq!(q.pop(), Some(1));
        // now block another producer and close under it
        q.push(2).unwrap();
        let q3 = Arc::clone(&q);
        let h = std::thread::spawn(move || q3.push(3));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(h.join().unwrap(), Err(3), "close must unblock producers");
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(WorkQueue::<u8>::bounded(2));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn mpmc_conserves_items() {
        let q = Arc::new(WorkQueue::bounded(3));
        let total = 200u64;
        std::thread::scope(|s| {
            for p in 0..2u64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..total / 2 {
                        q.push(p * 1000 + i).unwrap();
                    }
                });
            }
            let collected: Vec<std::thread::ScopedJoinHandle<'_, u64>> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut n = 0;
                        while q.pop().is_some() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            // producers are scoped: wait for them, then close
            while q.pushed() < total {
                std::thread::yield_now();
            }
            q.close();
            let got: u64 = collected.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(got, total);
        });
        assert_eq!(q.popped(), total);
        assert!(q.is_empty());
    }
}
